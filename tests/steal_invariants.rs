//! Work-stealing invariants (DESIGN.md "Adaptive re-routing"): under
//! randomized steal timing every block is consumed exactly once (no loss, no
//! duplication), the staging charges attached to queued handles balance to
//! zero, and pipelined execution with stealing produces byte-identical rows
//! to the stage-at-a-time executor on a skewed (hidden-straggler) server.

use hetexchange::common::{ColumnData, DataType, EngineConfig, ExecutionMode, StealPolicy};
use hetexchange::core_ops::queue::BlockQueue;
use hetexchange::core_ops::RelNode;
use hetexchange::engine::Proteus;
use hetexchange::jit::{AggSpec, Expr};
use hetexchange::storage::TableBuilder;
use hetexchange::topology::ServerTopology;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use hetexchange::common::{Block, BlockHandle, BlockId, BlockMeta, MemoryNodeId};

/// A staging-token stand-in counting its releases (the real token is the
/// executor's queue-slot + arena-lease bundle; the queue sees `dyn Any`).
struct ReleaseCounter(Arc<AtomicUsize>);
impl Drop for ReleaseCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn staged_handle(id: usize, released: &Arc<AtomicUsize>) -> BlockHandle {
    let block = Block::new(vec![ColumnData::Int64(vec![id as i64])], 1).unwrap();
    let mut handle =
        BlockHandle::new(block, BlockMeta::new(BlockId::new(id), MemoryNodeId::new(0)));
    handle.attach_staging(Arc::new(ReleaseCounter(Arc::clone(released))));
    handle
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once delivery under randomized steal timing: a producer, a
    /// popping consumer and a stealing sibling race over one queue; every
    /// block id ends up consumed by exactly one of them, and every staging
    /// charge is released.
    #[test]
    fn prop_pop_and_steal_consume_each_block_exactly_once(
        total in 1usize..400,
        producer_stall_every in 1usize..8,
        steal_min_depth in 1usize..4,
    ) {
        let released = Arc::new(AtomicUsize::new(0));
        let q = BlockQueue::new(1);
        let stop = Arc::new(AtomicBool::new(false));

        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut ids = Vec::new();
                while let Some(h) = q.pop() {
                    ids.push(h.meta().id.index());
                }
                ids
            })
        };
        let thief = {
            let q = q.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ids = Vec::new();
                loop {
                    if q.len() >= steal_min_depth {
                        if let Some(h) = q.steal() {
                            ids.push(h.meta().id.index());
                            continue;
                        }
                    }
                    if stop.load(Ordering::SeqCst) && q.is_empty() {
                        break;
                    }
                    std::thread::yield_now();
                }
                ids
            })
        };

        for id in 0..total {
            q.push(staged_handle(id, &released)).unwrap();
            if id % producer_stall_every == 0 {
                std::thread::yield_now();
            }
        }
        q.producer_done().unwrap();
        let mut seen = consumer.join().unwrap();
        stop.store(true, Ordering::SeqCst);
        seen.extend(thief.join().unwrap());

        seen.sort_unstable();
        prop_assert_eq!(seen, (0..total).collect::<Vec<_>>());
        // Leases balance to zero: every attached charge was released.
        prop_assert_eq!(released.load(Ordering::SeqCst), total);
    }
}

/// Engine under test: fact ⋈ dim → SUM/COUNT on a paper server with one GPU
/// marked as a hidden straggler.
fn skewed_engine(fact_rows: usize, dim_rows: usize, slowdown: f64) -> Proteus {
    let topology = ServerTopology::paper_server();
    let slow_gpu = topology.gpus()[1];
    let skewed = topology.with_device_slowdown(slow_gpu, slowdown).unwrap();
    let engine = Proteus::new(skewed);
    let nodes = engine.topology().cpu_memory_nodes();
    let fact = TableBuilder::new("fact")
        .column(
            "key",
            DataType::Int32,
            ColumnData::Int32((0..fact_rows as i32).map(|i| i % dim_rows.max(1) as i32).collect()),
        )
        .column("value", DataType::Int64, ColumnData::Int64((0..fact_rows as i64).collect()))
        .build(&nodes, 1024)
        .unwrap();
    let dim = TableBuilder::new("dim")
        .column("k", DataType::Int32, ColumnData::Int32((0..dim_rows as i32).collect()))
        .column(
            "attr",
            DataType::Int32,
            ColumnData::Int32((0..dim_rows as i32).map(|i| i % 7).collect()),
        )
        .build(&nodes, 1024)
        .unwrap();
    engine.register_table(fact);
    engine.register_table(dim);
    engine
}

fn join_plan() -> RelNode {
    let dim = RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(3));
    RelNode::scan("fact", &["key", "value"])
        .hash_join(dim, 0, 0, &[1])
        .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
}

/// PR-3's "near-equilibrium" safety claim, sharpened by the cost model's
/// link-congestion term: on a *healthy* server with congestion pricing
/// enabled (the all-on default), enabling stealing must take **zero steals**
/// and leave the **simulated time unchanged** relative to
/// `StealPolicy::Disabled`. The exact-equality half runs on an ungated
/// single-stage plan, where simulated time is fully deterministic (gated
/// plans read the gate estimate at wall-clock-dependent routing instants, so
/// their simulated times carry schedule noise in *both* policies — rows and
/// steal counts stay exact there; see the gated half below).
#[test]
fn healthy_server_with_congestion_pricing_steals_nothing_and_keeps_sim_time() {
    let engine = skewed_engine(60_000, 15_000, 1.0); // slowdown 1.0 = healthy
    let scan_plan = || {
        RelNode::scan("fact", &["key", "value"])
            .filter(Expr::col(0).lt_lit(5_000))
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
    };
    for (label, mut config) in
        [("cpu_only", EngineConfig::cpu_only(6)), ("hybrid", EngineConfig::hybrid(6, 2))]
    {
        config.block_capacity = 512;
        config.scale_weight = 10_000.0;
        // Ungoverned staging: the arena-occupancy penalty reads live
        // occupancy (wall-clock-dependent), which would perturb routing
        // identically in both runs only on average — determinism needs it
        // off, and it is orthogonal to the steal path under test.
        config.staging_bytes = None;
        assert!(config.cost_model.link_congestion_term, "congestion pricing must be on");
        let stealing = engine.session().execute(&scan_plan(), &config).unwrap();
        let bound = engine
            .session()
            .execute(&scan_plan(), &config.clone().with_steal_policy(StealPolicy::Disabled))
            .unwrap();
        assert_eq!(stealing.rows, bound.rows, "{label}: rows must match");
        assert_eq!(
            stealing.stats.total_blocks_stolen(),
            0,
            "{label}: a healthy server must take zero steals"
        );
        assert_eq!(
            stealing.sim_time, bound.sim_time,
            "{label}: zero steals must leave the simulated time unchanged"
        );
    }
}

/// The gated half of the healthy-server safety claim: on the join plan
/// (whose simulated time carries gate-estimate schedule noise in both
/// policies), stealing with congestion pricing enabled still takes zero
/// steals and produces byte-identical rows — and toggling the congestion
/// term off changes neither on a healthy server (the straggler gate already
/// refuses healthy victims; the congestion term is its second line).
#[test]
fn healthy_server_join_takes_zero_steals_with_and_without_congestion_pricing() {
    let engine = skewed_engine(40_000, 10_000, 1.0);
    let mut config = EngineConfig::hybrid(6, 2);
    config.block_capacity = 512;
    config.scale_weight = 10_000.0;
    let with_congestion = engine.session().execute(&join_plan(), &config).unwrap();
    let without = engine
        .session()
        .execute(
            &join_plan(),
            &config.clone().with_cost_model(config.cost_model.with_link_congestion_term(false)),
        )
        .unwrap();
    let baseline = engine
        .session()
        .execute(&join_plan(), &config.with_execution_mode(ExecutionMode::StageAtATime))
        .unwrap();
    assert_eq!(with_congestion.stats.total_blocks_stolen(), 0);
    assert_eq!(without.stats.total_blocks_stolen(), 0);
    assert_eq!(with_congestion.rows, baseline.rows);
    assert_eq!(without.rows, baseline.rows);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pipelined-with-stealing row output equals stage-at-a-time output on a
    /// hidden-straggler server, across device mixes and slowdowns, with
    /// staging peaks still within the budget.
    #[test]
    fn prop_stealing_rows_equal_stage_at_a_time(
        cpus in 2usize..6,
        gpus in 1usize..3,
        slowdown in 2u64..12,
        fact_rows in 20_000usize..60_000,
    ) {
        let dim_rows = fact_rows / 4;
        let engine = skewed_engine(fact_rows, dim_rows, slowdown as f64);
        let mut config = EngineConfig::hybrid(cpus, gpus)
            .with_steal_policy(StealPolicy::TailMostLoaded);
        config.block_capacity = 512;
        config.scale_weight = 10_000.0;
        let budget = config.min_staging_bytes() * 3;
        config.staging_bytes = Some(budget);

        let stealing = engine.session().execute(&join_plan(), &config).unwrap();
        let saat = engine
            .session().execute(
                &join_plan(),
                &config.clone().with_execution_mode(ExecutionMode::StageAtATime),
            )
            .unwrap();

        prop_assert_eq!(stealing.rows.clone(), saat.rows);
        prop_assert!(saat.stats.blocks_stolen.iter().all(|&s| s == 0));
        for (node, peak) in &stealing.stats.staging_peaks {
            prop_assert!(
                peak <= &budget,
                "node {} peaked at {} > budget {} (steal re-charge must stay governed)",
                node, peak, budget
            );
        }
    }
}
