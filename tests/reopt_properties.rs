//! Properties of the feedback-driven plan reoptimizer (DESIGN.md §11).
//!
//! The engine re-verifies every reoptimized plan before dispatch (Deny
//! semantics unchanged), so a searched placement that failed static
//! analysis would turn a feedback rewrite into a runtime refusal. These
//! properties pin that this cannot happen: across random topologies, base
//! configurations and plan shapes, every candidate the search can emit —
//! and in particular the placement `reoptimize` actually chooses under
//! randomized synthetic feedback — validates, parallelizes, compiles, and
//! passes `hetex_analysis::analyze` with **zero error-severity
//! diagnostics**.
//!
//! Seeding matches the differential suite: the vendored proptest derives a
//! deterministic per-function seed from the property's name, and the case
//! budget is `HETEX_DIFF_CASES` scenarios (default 48).

use hetexchange::analysis::analyze;
use hetexchange::common::config::ExecutionTarget;
use hetexchange::common::{EngineConfig, HetError, ReoptConfig};
use hetexchange::core_ops::reopt::{candidates, reoptimize};
use hetexchange::core_ops::{compile, parallelize, CostModel, PlanFeedback, RelNode};
use hetexchange::jit::{AggSpec, Expr};
use hetexchange::topology::{ServerTopology, TopologyBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// Generated-case budget: `HETEX_DIFF_CASES` scenarios (default 48), the
/// same knob the differential suite uses.
fn case_budget() -> u32 {
    std::env::var("HETEX_DIFF_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

fn random_topology(
    sockets: usize,
    cores_per_socket: usize,
    gpus: usize,
    pcie_gbps: f64,
) -> Result<Arc<ServerTopology>, HetError> {
    let mut builder = TopologyBuilder::new();
    for _ in 0..sockets {
        builder.add_socket(cores_per_socket);
    }
    for gpu in 0..gpus {
        builder.add_gpu(gpu % sockets);
    }
    builder.pcie_bandwidth_gbps(pcie_gbps);
    Ok(Arc::new(builder.build()?))
}

/// A random valid base placement for `gpus` available GPUs.
fn random_base(target_pick: usize, cpu_dop: usize, gpus: usize) -> EngineConfig {
    match (target_pick % 3, gpus) {
        (_, 0) | (0, _) => EngineConfig::cpu_only(cpu_dop),
        (1, _) => EngineConfig::gpu_only(gpus.min(2)),
        _ => EngineConfig::hybrid(cpu_dop, gpus.min(2)),
    }
}

/// The differential suite's three plan shapes: filtered scan+reduce, hash
/// join+reduce, join+group-by.
fn random_plan(plan_pick: usize, filter_lit: i64) -> RelNode {
    match plan_pick % 3 {
        0 => RelNode::scan("fact", &["key", "value"])
            .filter(Expr::col(0).lt_lit(filter_lit * 100))
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"]),
        1 => {
            let dim = RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(filter_lit));
            RelNode::scan("fact", &["key", "value"])
                .hash_join(dim, 0, 0, &[1])
                .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
        }
        _ => {
            let dim = RelNode::scan("dim", &["k", "attr"]);
            RelNode::scan("fact", &["key", "value"]).hash_join(dim, 0, 0, &[1]).group_by(
                &[2],
                vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
                &["s", "c"],
            )
        }
    }
}

/// Parallelize + compile + statically verify one emitted configuration;
/// returns an error message when any step fails or analysis reports an
/// error-severity diagnostic.
fn verify_emitted(
    plan: &RelNode,
    config: &EngineConfig,
    topology: &Arc<ServerTopology>,
    label: &str,
) -> Result<(), String> {
    config.validate().map_err(|e| format!("{label}: emitted config failed validate: {e}"))?;
    let het =
        parallelize(plan, config).map_err(|e| format!("{label}: failed to parallelize: {e}"))?;
    let graph =
        compile(&het, config, topology).map_err(|e| format!("{label}: failed to compile: {e}"))?;
    let report = analyze(&graph, config, topology);
    if let Some(diag) = report.errors().next() {
        return Err(format!("{label}: error-severity diagnostic {diag}"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(case_budget()))]

    /// Every candidate in the reoptimizer's search space — every plan it
    /// *can* emit — passes the static verifier with zero error-severity
    /// diagnostics when applied to the submitted configuration.
    #[test]
    fn prop_every_search_candidate_passes_the_static_verifier(
        sockets in 1usize..4,
        cores_per_socket in 2usize..5,
        gpus in 0usize..4,
        pcie_gbps_x10 in 40u64..160,
        target_pick in 0usize..3,
        cpu_dop_raw in 1usize..9,
        plan_pick in 0usize..3,
        filter_lit in 1i64..7,
    ) {
        let topology = random_topology(
            sockets, cores_per_socket, gpus, pcie_gbps_x10 as f64 / 10.0,
        ).unwrap();
        let cpu_dop = cpu_dop_raw.min(sockets * cores_per_socket);
        let mut base = random_base(target_pick, cpu_dop, gpus)
            .with_reopt(ReoptConfig::enabled());
        base.block_capacity = 256;
        prop_assert!(base.validate().is_ok());
        let plan = random_plan(plan_pick, filter_lit);

        let space = candidates(&base, &topology);
        prop_assert!(!space.is_empty(), "the search space always contains the incumbent");
        for candidate in &space {
            let emitted = candidate.apply(&base);
            if let Err(msg) = verify_emitted(&plan, &emitted, &topology, &candidate.label()) {
                prop_assert!(false, "{msg}");
            }
        }
    }

    /// The placement `reoptimize` chooses under randomized feedback — the
    /// plan that would actually be dispatched — verifies clean too, and is
    /// always drawn from the declared search space.
    #[test]
    fn prop_reoptimized_plan_passes_the_static_verifier(
        sockets in 1usize..4,
        cores_per_socket in 2usize..5,
        gpus in 0usize..4,
        pcie_gbps_x10 in 40u64..160,
        target_pick in 0usize..3,
        cpu_dop_raw in 1usize..9,
        plan_pick in 0usize..3,
        filter_lit in 1i64..7,
        sim_ms in 1u64..20_000,
        slow_pick in 0usize..64,
        slowdown_x10 in 10u64..160,
        acquisitions in 0u64..10_000,
        mib_transferred in 0u64..4_096,
    ) {
        let topology = random_topology(
            sockets, cores_per_socket, gpus, pcie_gbps_x10 as f64 / 10.0,
        ).unwrap();
        let cpu_dop = cpu_dop_raw.min(sockets * cores_per_socket);
        let mut base = random_base(target_pick, cpu_dop, gpus)
            .with_reopt(ReoptConfig::enabled());
        base.block_capacity = 256;
        prop_assert!(base.validate().is_ok());
        let plan = random_plan(plan_pick, filter_lit);

        let devices = topology.devices().len();
        let feedback = PlanFeedback {
            fingerprint: 0,
            target: base.target,
            cpu_dop: base.cpu_dop,
            gpu_dop: base.gpu_dop,
            sim_time_ns: sim_ms as f64 * 1e6,
            observed_slowdowns: (0..devices)
                .map(|i| if i == slow_pick % devices { slowdown_x10 as f64 / 10.0 } else { 1.0 })
                .collect(),
            stages: Vec::new(),
            remote_control_acquisitions: acquisitions,
            bytes_transferred: mib_transferred as f64 * 1024.0 * 1024.0,
            runs: 1,
        };
        let cost = CostModel::from_config(&base);
        if let Some(decision) = reoptimize(&base, &feedback, &topology, &cost) {
            let space = candidates(&base, &topology);
            prop_assert!(
                space.contains(&decision.chosen),
                "chosen placement {} is outside the declared search space",
                decision.chosen.label()
            );
            let emitted = decision.chosen.apply(&base);
            if let Err(msg) = verify_emitted(&plan, &emitted, &topology, &decision.chosen.label()) {
                prop_assert!(false, "{msg}");
            }
        }
        // GPU-only placements exist in the space only when the topology has
        // GPUs; with none, reoptimize must still never emit one.
        if gpus == 0 {
            for candidate in candidates(&base, &topology) {
                prop_assert!(candidate.target == ExecutionTarget::CpuOnly);
            }
        }
    }
}
