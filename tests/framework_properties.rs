//! Cross-crate property and behaviour tests of the HetExchange framework
//! itself: plan rewriting invariants, scaling behaviour of the simulated
//! server, and failure injection.

use hetexchange::common::{ColumnData, DataType, EngineConfig};
use hetexchange::core_ops::traits::{check_relational_requirements, derive_traits};
use hetexchange::core_ops::{parallelize, RelNode};
use hetexchange::engine::Proteus;
use hetexchange::jit::{AggSpec, Expr};
use hetexchange::storage::TableBuilder;
use proptest::prelude::*;

fn engine_with_fact(rows: usize) -> Proteus {
    let engine = Proteus::on_paper_server();
    let nodes = engine.topology().cpu_memory_nodes();
    let table = TableBuilder::new("fact")
        .column("k", DataType::Int32, ColumnData::Int32((0..rows as i32).map(|i| i % 97).collect()))
        .column("v", DataType::Int64, ColumnData::Int64((0..rows as i64).collect()))
        .build(&nodes, (rows / 8).max(1024))
        .unwrap();
    engine.register_table(table);
    engine
}

fn sum_plan(threshold: i64) -> RelNode {
    RelNode::scan("fact", &["k", "v"])
        .filter(Expr::col(0).gt_lit(threshold))
        .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["s", "c"])
}

#[test]
fn parallelized_plans_always_satisfy_the_trait_contract() {
    // For every device mix, relational operators must receive local, unpacked
    // input, and the plan's output must be CPU-side and sequential (the final
    // gather).
    let dim = RelNode::scan("dim", &["k", "tag"]).filter(Expr::col(1).lt_lit(5));
    let plan = RelNode::scan("fact", &["k", "v"]).hash_join(dim, 0, 0, &[1]).group_by(
        &[2],
        vec![AggSpec::sum(Expr::col(1))],
        &["tag", "s"],
    );
    for config in [
        EngineConfig::cpu_only(4),
        EngineConfig::cpu_only(24),
        EngineConfig::gpu_only(1),
        EngineConfig::gpu_only(2),
        EngineConfig::hybrid(1, 1),
        EngineConfig::hybrid(24, 2),
    ] {
        let het = parallelize(&plan, &config).unwrap();
        check_relational_requirements(&het).unwrap();
        let traits = derive_traits(&het);
        assert!(traits.local);
        assert_eq!(traits.dop, 1, "the gather stage is sequential");
    }
}

#[test]
fn simulated_time_scales_with_cores_and_saturates_at_dram() {
    let engine = engine_with_fact(400_000);
    let mut config = EngineConfig::cpu_only(1);
    config.scale_weight = 10_000.0; // model a ~48 GB fact table
    let base = engine.session().execute(&sum_plan(10), &config).unwrap().sim_time;

    let mut times = Vec::new();
    for cores in [2usize, 8, 16, 24] {
        let mut cfg = EngineConfig::cpu_only(cores);
        cfg.scale_weight = 10_000.0;
        times.push(engine.session().execute(&sum_plan(10), &cfg).unwrap().sim_time);
    }
    // More cores never hurt, 8 cores give a solid speed-up, and 24 cores are
    // not dramatically better than 16 (socket DRAM saturation).
    assert!(times.windows(2).all(|w| w[1] <= w[0]));
    assert!(base.as_nanos() as f64 / times[1].as_nanos() as f64 > 4.0);
    let ratio_16_to_24 = times[2].as_nanos() as f64 / times[3].as_nanos() as f64;
    assert!(ratio_16_to_24 < 1.35, "DRAM saturation should cap scaling, got {ratio_16_to_24}");
}

#[test]
fn hybrid_is_not_slower_than_either_single_device_configuration() {
    let engine = engine_with_fact(400_000);
    let weight = 20_000.0;
    let run = |mut cfg: EngineConfig| {
        cfg.scale_weight = weight;
        engine.session().execute(&sum_plan(40), &cfg).unwrap()
    };
    let cpu = run(EngineConfig::cpu_only(24));
    let gpu = run(EngineConfig::gpu_only(2));
    let hybrid = run(EngineConfig::hybrid(24, 2));
    assert_eq!(cpu.rows, gpu.rows);
    assert_eq!(cpu.rows, hybrid.rows);
    let slack = 1.05;
    assert!(hybrid.sim_time.as_secs_f64() <= cpu.sim_time.as_secs_f64() * slack);
    assert!(hybrid.sim_time.as_secs_f64() <= gpu.sim_time.as_secs_f64() * slack);
}

#[test]
fn missing_tables_and_invalid_configs_fail_cleanly() {
    let engine = Proteus::on_paper_server();
    let err = engine.session().execute(&sum_plan(0), &EngineConfig::cpu_only(4)).unwrap_err();
    assert_eq!(err.category(), "catalog");

    let engine = engine_with_fact(1_000);
    assert!(engine.session().execute(&sum_plan(0), &EngineConfig::cpu_only(0)).is_err());
    let mut bad = EngineConfig::cpu_only(2);
    bad.block_capacity = 0;
    assert!(engine.session().execute(&sum_plan(0), &bad).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The engine's answer equals a straightforward scalar evaluation for
    /// arbitrary filter thresholds and device mixes.
    #[test]
    fn prop_engine_matches_scalar_sum(threshold in -10i64..110, cpus in 1usize..6, gpus in 0usize..3) {
        let rows = 30_000usize;
        let engine = engine_with_fact(rows);
        let expected_sum: i64 = (0..rows as i64).filter(|i| i % 97 > threshold).sum();
        let expected_cnt: i64 = (0..rows as i64).filter(|i| i % 97 > threshold).count() as i64;
        let config = if gpus == 0 {
            EngineConfig::cpu_only(cpus)
        } else {
            EngineConfig::hybrid(cpus, gpus)
        };
        let outcome = engine.session().execute(&sum_plan(threshold), &config).unwrap();
        prop_assert_eq!(outcome.rows, vec![vec![expected_sum, expected_cnt]]);
    }
}
