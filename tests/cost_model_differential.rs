//! Differential testing of the unified cost model (DESIGN.md §5).
//!
//! Every CostModel term — demand-weighted staging quotas, the cross-node
//! control-plane charge, the critical-path gate estimate, the
//! link-congestion steal term — only moves block handles between
//! *equivalent* consumers of the same stage: none of them may ever change a
//! query's result. This harness generates random server topologies (1–4
//! sockets, 0–4 GPUs, random per-device slowdowns and PCIe link widths) and
//! random small plans, then executes each plan pipelined under **every
//! toggle configuration** (all-off, each term alone, all-on) and asserts the
//! rows are byte-identical to the stage-at-a-time executor — the bit-stable
//! legacy baseline that routes with every refinement off.
//!
//! PR 5 extends the sweep with the **calibration toggle group**
//! (`CalibrationConfig`): observed-slowdown feedback routing and the
//! measured topology constants each run isolated (on top of the all-off
//! cost model) and combined in the all-on configuration. Neither input may
//! change rows either — feedback only re-ranks equivalent consumers, and
//! measured constants only re-price the same projections. The all-off
//! configuration (every cost-model term *and* every calibration input off)
//! remains byte-identical to the PR 4 baseline sweep: it runs exactly the
//! pre-calibration code paths (integer projections, declared constants).
//!
//! PR 7 adds the **kernel-mode axis**: the same randomized scenario space
//! must yield byte-identical rows whether the CPU pipelines execute the
//! vectorized (chunked selection-vector) lowering or the legacy
//! tuple-at-a-time loop, under both the all-off and the all-on toggle
//! configurations — plus a standalone property pinning the selection-vector
//! refinement primitive (ordered-subset, monotone shrinking, in-bounds).
//!
//! PR 10 adds the **re-optimization axis**: `ReoptConfig::disabled()` takes
//! exactly the pre-reopt code path, an enabled run with a cold feedback
//! cache applies no rewrite and matches the disabled run's rows and plan
//! shape, and a warm-cache run may substitute a searched placement but must
//! preserve the rows byte-for-byte.
//!
//! Seeding: the vendored proptest derives a deterministic per-function seed
//! from the property's name, so every run (local and CI) explores the same
//! fixed case sequence and failures reproduce exactly. The case budget is
//! `HETEX_DIFF_CASES` generated scenarios (default 48); each scenario runs
//! nine pipelined toggle configurations against one stage-at-a-time
//! baseline, i.e. 48 × 9 = 432 differential toggle-cases per default run
//! (the acceptance bar is 256+), sized to keep the suite well under three
//! minutes.

use hetexchange::common::{
    CalibrationConfig, ColumnData, CostModelConfig, DataType, EngineConfig, ExecutionMode,
    HetError, KernelMode,
};
use hetexchange::core_ops::cost::{SlowdownObserver, SLOWDOWN_EWMA_ALPHA};
use hetexchange::core_ops::RelNode;
use hetexchange::engine::Proteus;
use hetexchange::jit::{AggSpec, Expr};
use hetexchange::storage::TableBuilder;
use hetexchange::topology::{DeviceId, ServerTopology, TopologyBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// Generated-case budget: `HETEX_DIFF_CASES` scenarios (default 48). CI pins
/// the default; the knob exists so a local soak can raise it.
fn case_budget() -> u32 {
    std::env::var("HETEX_DIFF_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

/// Every toggle configuration the differential sweep runs: the PR 3
/// baseline, each cost-model term isolated, each calibration input
/// isolated, and the all-on default (every term and every input).
fn toggle_configs() -> Vec<(&'static str, CostModelConfig, CalibrationConfig)> {
    let off = CostModelConfig::disabled();
    let calib_off = CalibrationConfig::disabled();
    vec![
        ("all_off", off, calib_off),
        ("demand_quotas", off.with_demand_weighted_quotas(true), calib_off),
        ("control_plane", off.with_control_plane_term(true), calib_off),
        ("gate_critical_path", off.with_gate_critical_path(true), calib_off),
        ("link_congestion", off.with_link_congestion_term(true), calib_off),
        ("slowdown_feedback", off, calib_off.with_slowdown_feedback(true)),
        ("measured_constants", off, calib_off.with_measured_constants(true)),
        // The measured control-plane constant only matters where the term
        // pricing it is on — exercise the interaction explicitly.
        (
            "control_plane_measured",
            off.with_control_plane_term(true),
            calib_off.with_measured_constants(true),
        ),
        ("all_on", CostModelConfig::default(), CalibrationConfig::default()),
    ]
}

/// A random heterogeneous server: `sockets` sockets of `cores_per_socket`
/// cores, `gpus` GPUs spread round-robin across sockets, a randomized PCIe
/// width, and one randomly chosen device marked as a hidden straggler.
fn random_topology(
    sockets: usize,
    cores_per_socket: usize,
    gpus: usize,
    pcie_gbps: f64,
    slow_pick: usize,
    slowdown: f64,
) -> Result<Arc<ServerTopology>, HetError> {
    let mut builder = TopologyBuilder::new();
    for _ in 0..sockets {
        builder.add_socket(cores_per_socket);
    }
    for gpu in 0..gpus {
        builder.add_gpu(gpu % sockets);
    }
    builder.pcie_bandwidth_gbps(pcie_gbps);
    let topology = Arc::new(builder.build()?);
    if slowdown > 1.0 {
        let device = DeviceId::new(slow_pick % topology.devices().len());
        topology.with_device_slowdown(device, slowdown)
    } else {
        Ok(topology)
    }
}

/// An engine with a fact table (`key`, `value`) and a quarter-sized
/// dimension (`k`, `attr`) loaded on the topology's CPU nodes.
fn engine_with_tables(topology: Arc<ServerTopology>, fact_rows: usize) -> Proteus {
    let dim_rows = (fact_rows / 4).max(1);
    let engine = Proteus::new(topology);
    let nodes = engine.topology().cpu_memory_nodes();
    let fact = TableBuilder::new("fact")
        .column(
            "key",
            DataType::Int32,
            ColumnData::Int32((0..fact_rows as i32).map(|i| i % dim_rows as i32).collect()),
        )
        .column("value", DataType::Int64, ColumnData::Int64((0..fact_rows as i64).collect()))
        .build(&nodes, 256)
        .unwrap();
    let dim = TableBuilder::new("dim")
        .column("k", DataType::Int32, ColumnData::Int32((0..dim_rows as i32).collect()))
        .column(
            "attr",
            DataType::Int32,
            ColumnData::Int32((0..dim_rows as i32).map(|i| i % 7).collect()),
        )
        .build(&nodes, 256)
        .unwrap();
    engine.register_table(fact);
    engine.register_table(dim);
    engine
}

/// One of three plan shapes: a filtered scan+reduce (ungated single
/// pipeline), a hash join+reduce (gated probe — the critical-path and
/// congestion terms engage), or a join+group-by (multi-row, key-sorted
/// output so row comparison is order-stable).
fn random_plan(plan_pick: usize, filter_lit: i64) -> RelNode {
    match plan_pick % 3 {
        0 => RelNode::scan("fact", &["key", "value"])
            .filter(Expr::col(0).lt_lit(filter_lit * 100))
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"]),
        1 => {
            let dim = RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(filter_lit));
            RelNode::scan("fact", &["key", "value"])
                .hash_join(dim, 0, 0, &[1])
                .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
        }
        _ => {
            let dim = RelNode::scan("dim", &["k", "attr"]);
            RelNode::scan("fact", &["key", "value"]).hash_join(dim, 0, 0, &[1]).group_by(
                &[2],
                vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
                &["s", "c"],
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(case_budget()))]

    /// The test-archetype centerpiece: across random topologies and plans,
    /// pipelined execution under every cost-model toggle configuration
    /// produces byte-identical rows to the stage-at-a-time baseline.
    #[test]
    fn prop_every_toggle_configuration_matches_stage_at_a_time(
        sockets in 1usize..5,
        cores_per_socket in 2usize..5,
        gpus in 0usize..5,
        pcie_gbps_x10 in 40u64..160,
        slow_pick in 0usize..64,
        slowdown_x10 in 10u64..80,
        fact_rows in 600usize..3_000,
        plan_pick in 0usize..3,
        filter_lit in 1i64..7,
        cpu_dop_raw in 1usize..9,
    ) {
        let topology = random_topology(
            sockets,
            cores_per_socket,
            gpus,
            pcie_gbps_x10 as f64 / 10.0,
            slow_pick,
            slowdown_x10 as f64 / 10.0,
        ).unwrap();
        let engine = engine_with_tables(Arc::clone(&topology), fact_rows);
        let plan = random_plan(plan_pick, filter_lit);

        let cpu_dop = cpu_dop_raw.min(sockets * cores_per_socket);
        let gpu_dop = gpus.min(2);
        let mut config = if gpu_dop == 0 {
            EngineConfig::cpu_only(cpu_dop)
        } else {
            EngineConfig::hybrid(cpu_dop, gpu_dop)
        };
        config.block_capacity = 256;
        // A deliberately tight (but valid) budget so quota admission, leases
        // and the demand re-split genuinely engage.
        config.staging_bytes = Some(config.min_staging_bytes() * 2);

        let baseline = engine
            .session().execute(&plan, &config.clone().with_execution_mode(ExecutionMode::StageAtATime))
            .unwrap();

        for (label, toggles, calibration) in toggle_configs() {
            let outcome = engine
                .session().execute(
                    &plan,
                    &config.clone().with_cost_model(toggles).with_calibration(calibration),
                )
                .unwrap();
            prop_assert_eq!(
                &outcome.rows, &baseline.rows,
                "toggle config `{}` changed the rows on sockets={} cores={} gpus={} \
                 pcie={} slow=({}, {}) fact_rows={} plan={} dop=({}, {})",
                label, sockets, cores_per_socket, gpus, pcie_gbps_x10, slow_pick,
                slowdown_x10, fact_rows, plan_pick, cpu_dop, gpu_dop
            );
            // Governed runs must also stay within the staging budget in
            // every toggle configuration (the demand re-split may never
            // oversubscribe the arena).
            for (node, peak) in &outcome.stats.staging_peaks {
                prop_assert!(
                    *peak <= config.staging_bytes.unwrap(),
                    "toggle config `{}`: node {} peaked at {} > budget {}",
                    label, node, peak, config.staging_bytes.unwrap()
                );
            }
        }
    }

    /// The kernel-mode axis (PR 7): across the same randomized topology /
    /// plan / config space, the vectorized CPU lowering and the legacy
    /// tuple-at-a-time lowering must produce byte-identical rows — under
    /// the all-off toggle configuration (the PR 3 estimation baseline) and
    /// the all-on default (where the `vectorized_cost` term also reshapes
    /// the routing estimates). The stage-at-a-time run under
    /// `TupleAtATime` is the bit-stable legacy anchor all four pipelined
    /// combinations are compared against.
    #[test]
    fn prop_kernel_modes_produce_identical_rows(
        sockets in 1usize..4,
        cores_per_socket in 2usize..5,
        gpus in 0usize..4,
        pcie_gbps_x10 in 40u64..160,
        slow_pick in 0usize..64,
        slowdown_x10 in 10u64..80,
        fact_rows in 600usize..3_000,
        plan_pick in 0usize..3,
        filter_lit in 1i64..7,
        cpu_dop_raw in 1usize..9,
    ) {
        let topology = random_topology(
            sockets,
            cores_per_socket,
            gpus,
            pcie_gbps_x10 as f64 / 10.0,
            slow_pick,
            slowdown_x10 as f64 / 10.0,
        ).unwrap();
        let engine = engine_with_tables(Arc::clone(&topology), fact_rows);
        let plan = random_plan(plan_pick, filter_lit);

        let cpu_dop = cpu_dop_raw.min(sockets * cores_per_socket);
        let gpu_dop = gpus.min(2);
        let mut config = if gpu_dop == 0 {
            EngineConfig::cpu_only(cpu_dop)
        } else {
            EngineConfig::hybrid(cpu_dop, gpu_dop)
        };
        config.block_capacity = 256;
        config.staging_bytes = Some(config.min_staging_bytes() * 2);

        let baseline = engine
            .session().execute(
                &plan,
                &config
                    .clone()
                    .with_execution_mode(ExecutionMode::StageAtATime)
                    .with_kernel_mode(KernelMode::TupleAtATime),
            )
            .unwrap();

        for (toggle_label, toggles, calibration) in [
            ("all_off", CostModelConfig::disabled(), CalibrationConfig::disabled()),
            ("all_on", CostModelConfig::default(), CalibrationConfig::default()),
        ] {
            for mode in [KernelMode::Vectorized, KernelMode::TupleAtATime] {
                let outcome = engine
                    .session().execute(
                        &plan,
                        &config
                            .clone()
                            .with_cost_model(toggles)
                            .with_calibration(calibration)
                            .with_kernel_mode(mode),
                    )
                    .unwrap();
                prop_assert_eq!(
                    &outcome.rows, &baseline.rows,
                    "kernel mode {:?} under `{}` changed the rows on sockets={} cores={} \
                     gpus={} pcie={} slow=({}, {}) fact_rows={} plan={} dop=({}, {})",
                    mode, toggle_label, sockets, cores_per_socket, gpus, pcie_gbps_x10,
                    slow_pick, slowdown_x10, fact_rows, plan_pick, cpu_dop, gpu_dop
                );
            }
        }
    }

    /// Selection-vector refinement invariants (the vectorized kernel's one
    /// nontrivial primitive): refining a selection by a flag vector keeps
    /// exactly the flagged lanes, **in order** — the surviving selection is
    /// the order-preserving subset of the input, it never grows, and no
    /// index outside the input selection can appear. Row-order equivalence
    /// of the whole vectorized lowering rests on this.
    #[test]
    fn prop_selection_refinement_is_an_ordered_subset(
        base in proptest::collection::vec(0u32..10_000, 0..600),
        flag_seed in proptest::collection::vec(0u32..2, 0..600),
    ) {
        // A selection is a strictly increasing index list (as produced by
        // the identity selection and preserved by every refinement).
        let mut sel: Vec<u32> = base.clone();
        sel.sort_unstable();
        sel.dedup();
        let flags: Vec<i64> = sel
            .iter()
            .enumerate()
            .map(|(j, _)| flag_seed.get(j % flag_seed.len().max(1)).copied().unwrap_or(0) as i64)
            .collect();
        let before = sel.clone();
        hetexchange::jit::refine_selection(&mut sel, &flags);

        // Monotone shrinking: never more lanes than before.
        prop_assert!(sel.len() <= before.len());
        // Exactly the flagged lanes survive, in their original order.
        let expected: Vec<u32> = before
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f != 0)
            .map(|(&idx, _)| idx)
            .collect();
        prop_assert_eq!(&sel, &expected);
        // No index outside the input selection appears (subset property),
        // and the output stays strictly increasing (order-preserving over a
        // strictly increasing input).
        prop_assert!(sel.iter().all(|idx| before.binary_search(idx).is_ok()));
        prop_assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    /// Calibration-loop soundness: the `SlowdownObserver` EWMA is monotone
    /// in the injected `exec_slowdown` — a device hidden-slowed by a larger
    /// factor can never be *observed* as less slow, whatever the nominal
    /// per-block costs and however many blocks were folded in. (The routing
    /// multiplier inherits the monotonicity, so feedback can never rank a
    /// worse straggler as the better consumer on identical backlogs.)
    #[test]
    fn prop_slowdown_observer_ewma_is_monotone_in_injected_slowdown(
        nominal_ns in 1u64..2_000_000,
        blocks in 1usize..48,
        slowdowns_x10 in proptest::collection::vec(5u64..120, 2..8),
    ) {
        let mut sorted = slowdowns_x10.clone();
        sorted.sort_unstable();
        let mut previous: Option<(u64, f64)> = None;
        for &sx10 in &sorted {
            let slowdown = sx10 as f64 / 10.0;
            // One observer per injected factor, fed the same block stream:
            // every block is charged `nominal × slowdown`, exactly how the
            // executor's charge path applies `DeviceProfile::exec_slowdown`.
            let observer = SlowdownObserver::new(1);
            for _ in 0..blocks {
                observer.record(0, (nominal_ns as f64 * slowdown) as u64, nominal_ns);
            }
            let ewma = observer.slowdown(0);
            // Identical samples keep the EWMA at the (floored) sample…
            let sample = ((nominal_ns as f64 * slowdown) as u64 as f64
                / nominal_ns as f64).max(1.0);
            prop_assert!(
                (ewma - sample).abs() < 1e-9 * sample.max(1.0),
                "uniform stream must converge to its sample: {ewma} vs {sample}"
            );
            // …and a larger injected slowdown never observes smaller.
            if let Some((prev_sx10, prev_ewma)) = previous {
                prop_assert!(
                    ewma >= prev_ewma,
                    "slowdown {sx10}/10 observed {ewma} < {prev_ewma} at {prev_sx10}/10"
                );
            }
            previous = Some((sx10, ewma));
        }
        // A mixed stream stays between the extremes: fold the smallest and
        // largest factors alternately and check the EWMA lands within the
        // bracket scaled by the smoothing factor's reach.
        let low = sorted[0] as f64 / 10.0;
        let high = sorted[sorted.len() - 1] as f64 / 10.0;
        let observer = SlowdownObserver::new(1);
        for i in 0..blocks * 2 {
            let s = if i % 2 == 0 { high } else { low };
            observer.record(0, (nominal_ns as f64 * s) as u64, nominal_ns);
        }
        let mixed = observer.slowdown(0);
        // Every folded sample is within [low, high] after integer truncation
        // of the charge and the ≥1.0 floor, so the EWMA must stay within the
        // same bracket — with any smoothing factor in (0, 1], which pins
        // SLOWDOWN_EWMA_ALPHA's range.
        prop_assert!((0.0..=1.0).contains(&SLOWDOWN_EWMA_ALPHA));
        let ratio = |s: f64| ((nominal_ns as f64 * s) as u64 as f64 / nominal_ns as f64).max(1.0);
        let (low_f, high_f) = (ratio(low), ratio(high));
        prop_assert!(
            mixed + 1e-9 >= low_f && mixed <= high_f + 1e-9,
            "mixed EWMA {mixed} escaped the sample bracket [{low_f}, {high_f}]"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(case_budget()))]

    /// The serving toggle (PR 9) is inert on the single-query path:
    /// attaching an enabled `ServeConfig` to a config changes nothing about
    /// a direct `execute` — byte-identical rows and the same compiled plan
    /// shape as the default serve-off run.
    #[test]
    fn prop_serving_toggle_is_inert_on_single_queries(
        sockets in 1usize..4,
        cores_per_socket in 2usize..5,
        gpus in 0usize..4,
        pcie_gbps_x10 in 40u64..160,
        fact_rows in 600usize..3_000,
        plan_pick in 0usize..3,
        filter_lit in 1i64..7,
        cpu_dop_raw in 1usize..9,
    ) {
        use hetexchange::common::{ServeConfig, StealPolicy};
        let topology = random_topology(
            sockets, cores_per_socket, gpus, pcie_gbps_x10 as f64 / 10.0, 0, 1.0,
        ).unwrap();
        let engine = engine_with_tables(Arc::clone(&topology), fact_rows);
        let plan = random_plan(plan_pick, filter_lit);
        let cpu_dop = cpu_dop_raw.min(sockets * cores_per_socket);
        let gpu_dop = gpus.min(2);
        let mut config = if gpu_dop == 0 {
            EngineConfig::cpu_only(cpu_dop)
        } else {
            EngineConfig::hybrid(cpu_dop, gpu_dop)
        };
        config.block_capacity = 256;
        config.steal_policy = StealPolicy::Disabled;

        let off = engine.session().execute(&plan, &config).unwrap();
        let on = engine
            .session().execute(&plan, &config.clone().with_serve(ServeConfig::serving()))
            .unwrap();
        // Simulated instants can vary with wall-clock worker interleaving
        // even between two identical runs on gated random-topology plans
        // (queue-admission waits are charged in arrival order), so — like
        // every other property in this sweep — the bit-identity bar is the
        // rows and the plan shape. The paper-server serving suite pins
        // sim-time equality where execution is fully deterministic.
        prop_assert_eq!(&on.rows, &off.rows, "serving toggle changed the rows");
        prop_assert_eq!(on.stats.stages, off.stats.stages, "serving toggle changed the plan");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(case_budget()))]

    /// The re-optimization toggle (PR 10) is inert until it has feedback,
    /// and result-preserving once it does. On one engine: the
    /// `ReoptConfig::disabled()` run takes exactly the pre-reopt code path;
    /// the first `ReoptConfig::enabled()` run finds a cold feedback cache,
    /// must apply no rewrite, and must match the disabled run's rows and
    /// compiled plan shape; the second enabled run may substitute a searched
    /// placement but must still return byte-identical rows.
    #[test]
    fn prop_reopt_is_cold_inert_and_rewrites_preserve_rows(
        sockets in 1usize..4,
        cores_per_socket in 2usize..5,
        gpus in 0usize..4,
        pcie_gbps_x10 in 40u64..160,
        fact_rows in 600usize..3_000,
        plan_pick in 0usize..3,
        filter_lit in 1i64..7,
        cpu_dop_raw in 1usize..9,
    ) {
        use hetexchange::common::{ReoptConfig, StealPolicy};
        let topology = random_topology(
            sockets, cores_per_socket, gpus, pcie_gbps_x10 as f64 / 10.0, 0, 1.0,
        ).unwrap();
        let engine = engine_with_tables(Arc::clone(&topology), fact_rows);
        let plan = random_plan(plan_pick, filter_lit);
        let cpu_dop = cpu_dop_raw.min(sockets * cores_per_socket);
        let gpu_dop = gpus.min(2);
        let mut config = if gpu_dop == 0 {
            EngineConfig::cpu_only(cpu_dop)
        } else {
            EngineConfig::hybrid(cpu_dop, gpu_dop)
        };
        config.block_capacity = 256;
        config.steal_policy = StealPolicy::Disabled;

        // Disabled runs record no feedback, so the enabled run that follows
        // still sees a cold cache for this plan fingerprint.
        let off = engine.session().execute(&plan, &config).unwrap();
        prop_assert!(off.stats.reopt_applied.is_none());

        let enabled = config.clone().with_reopt(ReoptConfig::enabled());
        let cold = engine.session().execute(&plan, &enabled).unwrap();
        prop_assert!(
            cold.stats.reopt_applied.is_none(),
            "a cold feedback cache must never rewrite: {:?}",
            cold.stats.reopt_applied
        );
        prop_assert_eq!(&cold.rows, &off.rows, "cold-cache reopt changed the rows");
        prop_assert_eq!(cold.stats.stages, off.stats.stages, "cold-cache reopt changed the plan");

        // Warm cache: the search may now substitute a placement, but the
        // result must stay byte-identical (a rewrite only re-degrees the
        // same plan).
        let warm = engine.session().execute(&plan, &enabled).unwrap();
        prop_assert_eq!(&warm.rows, &off.rows, "a feedback-driven rewrite changed the rows");
    }
}
