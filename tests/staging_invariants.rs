//! Staging-memory governance invariants (DESIGN.md "Staging memory
//! governance"): peak leased bytes per node never exceed the configured
//! arena budget across randomized pipelined plans, and a deliberately tiny
//! budget slows a query down instead of deadlocking it.

use hetexchange::common::config::DEFAULT_STAGING_BYTES;
use hetexchange::common::{ColumnData, DataType, EngineConfig};
use hetexchange::core_ops::RelNode;
use hetexchange::engine::Proteus;
use hetexchange::jit::{AggSpec, Expr};
use hetexchange::storage::TableBuilder;
use proptest::prelude::*;

/// Engine with a fact table joined against a dimension — the two-stage-chain
/// shape (scan → build gate → probe → reduce) that exercises gates, device
/// crossings and every staging path at once.
fn join_engine(fact_rows: usize, dim_rows: usize, segment_rows: usize) -> Proteus {
    let engine = Proteus::on_paper_server();
    let nodes = engine.topology().cpu_memory_nodes();
    let fact = TableBuilder::new("fact")
        .column(
            "key",
            DataType::Int32,
            ColumnData::Int32((0..fact_rows as i32).map(|i| i % dim_rows.max(1) as i32).collect()),
        )
        .column("value", DataType::Int64, ColumnData::Int64((0..fact_rows as i64).collect()))
        .build(&nodes, segment_rows)
        .unwrap();
    let dim = TableBuilder::new("dim")
        .column("k", DataType::Int32, ColumnData::Int32((0..dim_rows as i32).collect()))
        .column(
            "attr",
            DataType::Int32,
            ColumnData::Int32((0..dim_rows as i32).map(|i| i % 7).collect()),
        )
        .build(&nodes, segment_rows)
        .unwrap();
    engine.register_table(fact);
    engine.register_table(dim);
    engine
}

fn join_plan() -> RelNode {
    // SELECT SUM(value), COUNT(*) FROM fact JOIN dim ON key = k WHERE attr < 3
    let dim = RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(3));
    RelNode::scan("fact", &["key", "value"])
        .hash_join(dim, 0, 0, &[1])
        .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
}

fn expected(fact_rows: usize, dim_rows: usize) -> (i64, i64) {
    let mut sum = 0i64;
    let mut cnt = 0i64;
    for i in 0..fact_rows as i64 {
        if (i % dim_rows as i64) % 7 < 3 {
            sum += i;
            cnt += 1;
        }
    }
    (sum, cnt)
}

#[test]
fn tiny_budget_completes_slowly_instead_of_deadlocking() {
    // The smallest budget validation admits: one estimated max-size block per
    // active consumer. Per-queue quotas collapse to roughly one block, so the
    // whole pipeline advances in near-lockstep — slow, but alive.
    let fact_rows = 30_000;
    let dim_rows = 10_000;
    let engine = join_engine(fact_rows, dim_rows, 512);
    let mut config = EngineConfig::hybrid(2, 1);
    config.block_capacity = 256;
    let tiny = config.min_staging_bytes();
    assert!(tiny < DEFAULT_STAGING_BYTES / 100, "budget must be genuinely tiny: {tiny}");
    config.staging_bytes = Some(tiny);
    let outcome = engine.session().execute(&join_plan(), &config).unwrap();
    let (sum, cnt) = expected(fact_rows, dim_rows);
    assert_eq!(outcome.rows, vec![vec![sum, cnt]]);
    for (node, peak) in &outcome.stats.staging_peaks {
        assert!(*peak <= tiny, "node {node} peaked at {peak} > tiny budget {tiny}");
    }
    assert!(
        outcome.stats.staging_peaks.iter().any(|(_, p)| *p > 0),
        "blocks must have been lease-backed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Peak leased bytes per node never exceed the configured arena capacity,
    /// and governance never changes results, across random pipelined plans
    /// (device mixes, block sizes, and budget tightness).
    #[test]
    fn prop_peak_leased_bytes_never_exceed_the_budget(
        cpus in 1usize..5,
        gpus in 0usize..3,
        capacity_sel in 0usize..3,
        budget_mult in 1u64..5,
        fact_rows in 10_000usize..40_000,
    ) {
        let dim_rows = fact_rows / 3;
        let engine = join_engine(fact_rows, dim_rows, 1024);
        let mut config = if gpus == 0 {
            EngineConfig::cpu_only(cpus)
        } else {
            EngineConfig::hybrid(cpus, gpus)
        };
        config.block_capacity = [256, 1024, 4096][capacity_sel];
        let budget = config.min_staging_bytes() * budget_mult;
        config.staging_bytes = Some(budget);
        let outcome = engine.session().execute(&join_plan(), &config).unwrap();

        let (sum, cnt) = expected(fact_rows, dim_rows);
        prop_assert_eq!(outcome.rows.clone(), vec![vec![sum, cnt]]);
        prop_assert!(!outcome.stats.staging_peaks.is_empty());
        for (node, peak) in &outcome.stats.staging_peaks {
            prop_assert!(
                peak <= &budget,
                "node {} peaked at {} > budget {}", node, peak, budget
            );
        }
    }
}
