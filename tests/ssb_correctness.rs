//! Cross-crate integration tests: every engine configuration and both baseline
//! systems must produce exactly the same answers as the naive reference
//! executor on the full SSB query set, across data placements.

use hetexchange::baselines::{DbmsC, DbmsG};
use hetexchange::common::config::DataPlacement;
use hetexchange::common::EngineConfig;
use hetexchange::engine::{reference_execute, Proteus};
use hetexchange::ssb::{all_queries, SsbGenerator};
use hetexchange::storage::Catalog;
use std::sync::Arc;

fn generator() -> SsbGenerator {
    SsbGenerator { scale_factor: 0.002, seed: 1234, segment_rows: 2_048, fact_rows: None }
}

#[test]
fn all_ssb_queries_match_reference_on_cpu_gpu_and_hybrid() {
    let engine = Proteus::on_paper_server();
    let dataset =
        generator().generate(&engine.topology().cpu_memory_nodes()).expect("generate SSB");
    dataset.register_into(engine.catalog());
    let reference_catalog = Catalog::new();
    dataset.register_into(&reference_catalog);

    let configs =
        [EngineConfig::cpu_only(6), EngineConfig::gpu_only(2), EngineConfig::hybrid(6, 2)];
    for query in all_queries(&dataset).expect("queries") {
        let expected = reference_execute(&query.plan, &reference_catalog)
            .unwrap_or_else(|e| panic!("reference failed for {}: {e}", query.name));
        for config in &configs {
            let outcome = engine
                .session()
                .execute(&query.plan, config)
                .unwrap_or_else(|e| panic!("{} failed on {:?}: {e}", query.name, config.target));
            assert_eq!(
                outcome.rows, expected,
                "{} on {:?} disagrees with the reference executor",
                query.name, config.target
            );
        }
    }
}

#[test]
fn gpu_resident_placement_produces_identical_results() {
    let engine = Proteus::on_paper_server();
    let gpu_nodes = engine.topology().gpu_memory_nodes();
    let cpu_nodes = engine.topology().cpu_memory_nodes();
    let gpu_dataset = generator().generate(&gpu_nodes).expect("gpu placement");
    let cpu_dataset = generator().generate(&cpu_nodes).expect("cpu placement");
    gpu_dataset.register_into(engine.catalog());
    let reference_catalog = Catalog::new();
    cpu_dataset.register_into(&reference_catalog);

    for name in ["Q1.1", "Q2.1", "Q3.2", "Q4.1"] {
        let query = hetexchange::ssb::query_by_name(&gpu_dataset, name).unwrap();
        let expected = reference_execute(&query.plan, &reference_catalog).unwrap();
        let outcome = engine
            .session()
            .execute(&query.plan, &EngineConfig::gpu_only(2))
            .unwrap_or_else(|e| panic!("{name} failed on GPU-resident data: {e}"));
        assert_eq!(outcome.rows, expected, "{name} differs with GPU-resident data");
    }
}

#[test]
fn baselines_match_reference_and_report_paper_failures() {
    let topology = hetexchange::topology::ServerTopology::paper_server();
    let dataset = generator().generate(&topology.cpu_memory_nodes()).expect("generate SSB");
    let catalog = Catalog::new();
    dataset.register_into(&catalog);
    let weights = EngineConfig::default();

    let dbms_c = DbmsC::new(Arc::clone(&topology), 24);
    let dbms_g_streaming = DbmsG::new(Arc::clone(&topology), 2, DataPlacement::CpuResident);
    let dbms_g_resident = DbmsG::new(topology, 2, DataPlacement::GpuResident);

    for query in all_queries(&dataset).expect("queries") {
        let expected = reference_execute(&query.plan, &catalog).unwrap();
        let c = dbms_c.execute(&query.plan, &catalog, &weights).expect("DBMS C runs everything");
        assert_eq!(c.rows, expected, "DBMS C wrong on {}", query.name);

        let g = dbms_g_streaming.execute(&query.plan, &catalog, &weights);
        match query.name.as_str() {
            // §6: DBMS G cannot run Q2.2 at all, and fails Q4.3 over
            // non-GPU-resident data.
            "Q2.2" => assert!(g.is_err(), "DBMS G must fail Q2.2"),
            "Q4.3" => assert!(g.is_err(), "DBMS G must fail Q4.3 when streaming"),
            _ => {
                assert_eq!(
                    g.unwrap_or_else(|e| panic!("DBMS G failed {}: {e}", query.name)).rows,
                    expected,
                    "DBMS G wrong on {}",
                    query.name
                );
            }
        }

        // With GPU-resident data only the string inequality remains impossible.
        let g = dbms_g_resident.execute(&query.plan, &catalog, &weights);
        if query.name == "Q2.2" {
            assert!(g.is_err());
        } else {
            assert_eq!(g.unwrap().rows, expected);
        }
    }
}

#[test]
fn sequential_and_parallel_executions_agree_without_hetexchange() {
    let engine = Proteus::on_paper_server();
    let dataset =
        generator().generate(&engine.topology().cpu_memory_nodes()).expect("generate SSB");
    dataset.register_into(engine.catalog());
    let query = hetexchange::ssb::query_by_name(&dataset, "Q2.1").unwrap();

    // Model a non-trivial working set; otherwise the ~10 ms router
    // initialization overhead dominates (the Figure 8 effect) and the
    // comparison below would be meaningless.
    let mut sequential = EngineConfig::cpu_only(1);
    sequential.hetexchange_enabled = false;
    sequential.scale_weight = 10_000.0;
    let mut parallel = EngineConfig::hybrid(8, 2);
    parallel.scale_weight = 10_000.0;
    let seq = engine.session().execute(&query.plan, &sequential).unwrap();
    let par = engine.session().execute(&query.plan, &parallel).unwrap();
    assert_eq!(seq.rows, par.rows);
    assert!(
        par.sim_time < seq.sim_time,
        "parallel execution must be faster in simulated time ({} vs {})",
        par.sim_time,
        seq.sim_time
    );
}
