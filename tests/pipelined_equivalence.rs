//! Cross-mode equivalence: the pipelined executor and the legacy
//! stage-at-a-time executor must produce byte-identical result rows on every
//! workload and device mix — scheduling is a performance decision, never a
//! correctness one.

use hetexchange::bench::pipeline_ab::join_reduce_engine;
use hetexchange::bench::workload::SsbWorkload;
use hetexchange::common::{EngineConfig, ExecutionMode};

fn device_mixes() -> Vec<EngineConfig> {
    vec![EngineConfig::cpu_only(4), EngineConfig::gpu_only(2), EngineConfig::hybrid(8, 2)]
}

#[test]
fn join_reduce_rows_identical_across_modes_and_device_mixes() {
    let (engine, plan) = join_reduce_engine(200_000).unwrap();
    for base in device_mixes() {
        let pipelined = engine
            .session()
            .execute(&plan, &base.clone().with_execution_mode(ExecutionMode::Pipelined))
            .unwrap();
        let stage_at_a_time = engine
            .session()
            .execute(&plan, &base.clone().with_execution_mode(ExecutionMode::StageAtATime))
            .unwrap();
        assert!(!pipelined.rows.is_empty());
        assert_eq!(
            pipelined.rows, stage_at_a_time.rows,
            "rows diverged between modes under {:?}",
            base.target
        );
    }
}

#[test]
fn ssb_queries_rows_identical_across_modes_and_device_mixes() {
    let workload = SsbWorkload::build(0.002, 1000.0, false).unwrap();
    for name in ["Q1.1", "Q3.1"] {
        let query = workload.queries.iter().find(|q| q.name == name).expect("query exists");
        for base in device_mixes() {
            let config = workload.config(base.clone());
            let pipelined = workload
                .engine_cpu_data
                .session()
                .execute(&query.plan, &config.clone().with_execution_mode(ExecutionMode::Pipelined))
                .unwrap();
            let stage_at_a_time = workload
                .engine_cpu_data
                .session()
                .execute(
                    &query.plan,
                    &config.clone().with_execution_mode(ExecutionMode::StageAtATime),
                )
                .unwrap();
            assert!(!pipelined.rows.is_empty(), "{name} returned no rows");
            assert_eq!(
                pipelined.rows, stage_at_a_time.rows,
                "{name} rows diverged between modes under {:?}",
                base.target
            );
        }
    }
}
