//! # hetexchange
//!
//! Facade crate for the HetExchange reproduction. It re-exports every crate of
//! the workspace under a single name so that examples and downstream users can
//! depend on just `hetexchange`:
//!
//! ```rust
//! use hetexchange::prelude::*;
//! ```
//!
//! The workspace reproduces *HetExchange: Encapsulating heterogeneous CPU-GPU
//! parallelism in JIT compiled engines* (PVLDB 12(5), 2019). See `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the reproduced figures.

pub use hetex_analysis as analysis;
pub use hetex_baselines as baselines;
pub use hetex_bench as bench;
pub use hetex_common as common;
pub use hetex_core as core_ops;
pub use hetex_engine as engine;
pub use hetex_gpu_sim as gpu_sim;
pub use hetex_jit as jit;
pub use hetex_ssb as ssb;
pub use hetex_storage as storage;
pub use hetex_topology as topology;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use hetex_common::config::{DataPlacement, ExecutionTarget};
    pub use hetex_common::{
        Block, BlockHandle, DataType, EngineConfig, HetError, Result, Schema, Value,
    };
}
