//! Minimal stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides the subset the SSB generator uses: a seedable deterministic
//! generator (`rngs::StdRng` + `SeedableRng::seed_from_u64`) and
//! `Rng::random_range` over half-open and inclusive integer ranges. The
//! engine only needs determinism-per-seed, not cryptographic or statistical
//! quality, so `StdRng` here is SplitMix64 feeding a xoshiro256** core.

use std::ops::{Range, RangeInclusive};

/// Types that can construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value API.
pub trait Rng {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut |bound| self.below(bound))
    }

    /// A uniform value in `[0, bound)` without modulo bias (rejection
    /// sampling on the top bits).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample using `below(bound) -> [0, bound)`.
    fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + below(span) as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic, seedable generator (xoshiro256** seeded by SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i32 = rng.random_range(-5..7);
            assert!((-5..7).contains(&v));
            let w: u32 = rng.random_range(1..=5);
            assert!((1..=5).contains(&w));
            let x: usize = rng.random_range(0..3);
            assert!(x < 3);
            let y: i64 = rng.random_range(90_000..=100_000);
            assert!((90_000..=100_000).contains(&y));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
