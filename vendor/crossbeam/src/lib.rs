//! Minimal stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with the subset of the API this workspace
//! uses: multi-producer **multi-consumer** channels (`Sender` and `Receiver`
//! are both `Clone`), unbounded and bounded variants, blocking `send`/`recv`,
//! and disconnect semantics — `recv` fails once every `Sender` is dropped and
//! the buffer is drained, `send` fails once every `Receiver` is dropped.
//! Implemented with a `Mutex<VecDeque>` + two `Condvar`s; throughput is more
//! than sufficient for block-granularity handoff.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Consumers wait here for data (or disconnect).
        not_empty: Condvar,
        /// Bounded-channel producers wait here for space (or disconnect).
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed full until the timeout elapsed.
        Timeout(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// An unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded mpmc channel: `send` blocks while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.lock();
            if let Some(cap) = self.shared.capacity {
                while inner.queue.len() >= cap {
                    if inner.receivers == 0 {
                        return Err(SendError(value));
                    }
                    inner =
                        self.shared.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
                }
            }
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Send, giving up after `timeout` if a bounded channel stays full.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: std::time::Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.lock();
            if let Some(cap) = self.shared.capacity {
                while inner.queue.len() >= cap {
                    if inner.receivers == 0 {
                        return Err(SendTimeoutError::Disconnected(value));
                    }
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(value));
                    }
                    let (guard, result) = self
                        .shared
                        .not_full
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    inner = guard;
                    if result.timed_out() && inner.queue.len() >= cap {
                        return Err(SendTimeoutError::Timeout(value));
                    }
                }
            }
            if inner.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Send without blocking: fails on a full bounded channel.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.lock();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// True when no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next message, blocking until one arrives. Fails when the
        /// channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock();
            match inner.queue.pop_front() {
                Some(value) => {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    Ok(value)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// True when no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake blocked consumers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                // Wake blocked producers so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").field("len", &self.len()).finish()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").field("len", &self.len()).finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_last_sender_drops() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn blocked_receiver_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        let waiter = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = {
            let tx = tx.clone();
            thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a slot frees up
                3
            })
        };
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.len(), 2, "third send must be blocked");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), 3);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpmc_clone_receivers_share_the_stream() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = thread::spawn(move || std::iter::from_fn(|| rx.recv().ok()).count());
        let b = thread::spawn(move || std::iter::from_fn(|| rx2.recv().ok()).count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }
}
