//! Minimal stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides the subset of the `parking_lot` API the workspace uses — `Mutex`
//! and `RwLock` with non-poisoning, `Result`-free guards — implemented on top
//! of the std primitives. Lock poisoning is deliberately swallowed
//! (`parking_lot` has no poisoning either): a panicking thread must not
//! deadlock or poison unrelated workers, which the pipelined executor relies
//! on for its close-on-panic queue semantics.

use std::fmt;
use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (like `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { guard: self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard { guard: p.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "stub must not poison like std does");
    }
}
