//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the API this workspace's benches use:
//! `Criterion::benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BatchSize` and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warm-up plus a fixed
//! number of timed iterations and prints mean wall time (and throughput when
//! declared); there is no statistical analysis or HTML report.

use std::time::{Duration, Instant};

/// How measured iterations are batched (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup cost.
    SmallInput,
    /// Large per-iteration setup cost.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Units of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, 10, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.throughput, self.sample_size, f);
        self
    }

    /// Finish the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F>(label: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    // Warm-up pass (also primes lazy state).
    f(&mut bencher);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        total += bencher.elapsed;
        iters += bencher.iters;
    }
    let mean = if iters > 0 { total / iters as u32 } else { Duration::ZERO };
    match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {label:<50} {mean:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64() / 1e9;
            println!("bench {label:<50} {mean:>12.2?}/iter  {rate:>10.2} GB/s");
        }
        _ => println!("bench {label:<50} {mean:>12.2?}/iter"),
    }
}

/// Passed to every benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called once per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.iters = 1;
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters = 1;
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4)).sample_size(2);
        let mut runs = 0;
        group.bench_function("count", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus samples must run the closure");
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        b.iter_batched(|| vec![1, 2, 3], |v| v.into_iter().sum::<i32>(), BatchSize::SmallInput);
        assert_eq!(b.iters, 1);
    }
}
