//! Minimal stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), integer-range and
//! `collection::vec` strategies, and `prop_assert!`/`prop_assert_eq!`.
//! Cases are generated from a deterministic per-function seed, so failures
//! reproduce; shrinking is not implemented (a failing case prints its inputs
//! via the assertion message instead).

use std::ops::Range;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert a condition inside a property (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }` becomes
/// a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Per-function deterministic seed so failures reproduce.
                let fn_seed: u64 = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                    });
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::new(fn_seed.wrapping_add(case));
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i64..10), &mut rng);
            assert!((-5..10).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::TestRng::new(9);
        let strat = crate::collection::vec(0i64..100, 2..7);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..=6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn macro_round_trip(x in 0i64..100, v in crate::collection::vec(0i32..10, 0..5)) {
            prop_assert!(x >= 0);
            prop_assert_eq!(v.len() < 5, true);
        }
    }
}
