//! Quickstart: run the paper's running example on CPUs, GPUs and both.
//!
//! The query is the one Figures 1-3 use throughout:
//! `SELECT SUM(b) FROM t WHERE a > 42`.
//!
//! Run with: `cargo run --release --example quickstart`

use hetexchange::common::{ColumnData, DataType, EngineConfig};
use hetexchange::core_ops::RelNode;
use hetexchange::engine::Proteus;
use hetexchange::jit::{AggSpec, Expr};
use hetexchange::storage::TableBuilder;

fn main() -> hetexchange::common::Result<()> {
    // 1. An engine on the paper's server: 2 sockets x 12 cores + 2 GPUs.
    let engine = Proteus::on_paper_server();

    // 2. Load a small table, interleaved over the two sockets' DRAM.
    let rows = 2_000_000usize;
    let nodes = engine.topology().cpu_memory_nodes();
    let table = TableBuilder::new("t")
        .column(
            "a",
            DataType::Int32,
            ColumnData::Int32((0..rows as i32).map(|i| i % 100).collect()),
        )
        .column("b", DataType::Int64, ColumnData::Int64((0..rows as i64).map(|i| i * 3).collect()))
        .build(&nodes, rows / 8)?;
    engine.register_table(table);

    // 3. The sequential physical plan (Figure 1a / 2a).
    let plan = RelNode::scan("t", &["a", "b"])
        .filter(Expr::col(0).gt_lit(42))
        .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum_b"]);

    // 4. Show the heterogeneity-aware plan HetExchange produces for a hybrid
    //    configuration (Figure 1e / 2b).
    let hybrid = EngineConfig::hybrid(24, 2);
    println!("-- heterogeneity-aware plan (hybrid, 24 CPU cores + 2 GPUs) --");
    println!("{}", engine.explain(&plan, &hybrid)?);

    // 5. Execute on CPU-only, GPU-only and hybrid configurations. The result
    //    is identical; the modeled execution time differs.
    for config in [EngineConfig::cpu_only(24), EngineConfig::gpu_only(2), hybrid] {
        let outcome = engine.session().execute(&plan, &config)?;
        println!(
            "{:<14} -> SUM(b) = {:>16}   simulated time {:>8.3} ms   ({} stages, {:.1} MB moved)",
            config.target.label(),
            outcome.rows[0][0],
            outcome.sim_time.as_millis_f64(),
            outcome.stats.stages,
            outcome.stats.bytes_transferred / 1e6,
        );
    }
    Ok(())
}
