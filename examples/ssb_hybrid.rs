//! Run Star Schema Benchmark queries on every Proteus configuration and on
//! the two baseline systems, over the same generated dataset — a miniature of
//! the paper's Figure 5 experiment.
//!
//! Run with: `cargo run --release --example ssb_hybrid [physical_sf]`

use hetexchange::bench::systems::{run_query, System};
use hetexchange::bench::workload::SsbWorkload;

fn main() -> hetexchange::common::Result<()> {
    let physical_sf: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.01);
    println!("generating SSB at physical SF {physical_sf}, modeling SF1000 (CPU-resident)…");
    let workload = SsbWorkload::build(physical_sf, 1000.0, false)?;

    let queries = ["Q1.1", "Q2.1", "Q3.1", "Q4.1", "Q4.3"];
    println!(
        "{:<8}{:>16}{:>16}{:>18}{:>16}{:>12}",
        "query", "DBMS C", "Proteus CPUs", "Proteus Hybrid", "Proteus GPUs", "DBMS G"
    );
    for name in queries {
        let query = workload.query(name).expect("known query").clone();
        let mut cells = Vec::new();
        for system in System::figure5_lineup() {
            let row = run_query(&workload, system, &query, false);
            cells.push(match row.seconds {
                Some(s) => format!("{s:.3}s"),
                None => "FAIL".to_string(),
            });
        }
        println!(
            "{:<8}{:>16}{:>16}{:>18}{:>16}{:>12}",
            name, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
    println!("\n(Hybrid should win every row; DBMS G fails Q4.3 — see EXPERIMENTS.md.)");
    Ok(())
}
