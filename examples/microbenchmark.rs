//! The §6.4 microbenchmarks: a bandwidth-bound sum and a random-access-bound
//! join, swept over device mixes — a miniature of Figure 7.
//!
//! Run with: `cargo run --release --example microbenchmark`

use hetexchange::bench::micro::{MicroQuery, MicroWorkload, PAPER_PROBE_BYTES};
use hetexchange::common::EngineConfig;

fn main() -> hetexchange::common::Result<()> {
    let workload = MicroWorkload::build(200_000)?;
    println!(
        "probe side: {} physical rows modeling {:.0} GB; build side: {} rows (~7.7 MB)\n",
        workload.probe_rows,
        PAPER_PROBE_BYTES / 1e9,
        workload.build_rows
    );

    for query in [MicroQuery::Sum, MicroQuery::Join] {
        println!("-- {} query --", query.label());
        let mut base = EngineConfig::cpu_only(1);
        base.hetexchange_enabled = false;
        let baseline = workload.run(query, base, PAPER_PROBE_BYTES)?;
        println!("  1 CPU core, no HetExchange : {baseline:>8.3} s (baseline)");
        for (label, config) in [
            ("1 CPU core", EngineConfig::cpu_only(1)),
            ("16 CPU cores", EngineConfig::cpu_only(16)),
            ("24 CPU cores", EngineConfig::cpu_only(24)),
            ("2 GPUs", EngineConfig::gpu_only(2)),
            ("24 cores + 2 GPUs", EngineConfig::hybrid(24, 2)),
        ] {
            let seconds = workload.run(query, config, PAPER_PROBE_BYTES)?;
            println!("  {label:<27}: {seconds:>8.3} s   speed-up {:>6.1}x", baseline / seconds);
        }
        println!();
    }
    println!("The sum query is CPU-friendly (PCIe-bound on GPUs); the join is GPU-friendly.");
    Ok(())
}
