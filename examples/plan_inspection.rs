//! Inspect how HetExchange rewrites a plan and how the device providers
//! specialize the same pipeline blueprint (Figures 1-3 and Table 1).
//!
//! Run with: `cargo run --release --example plan_inspection`

use hetexchange::common::{EngineConfig, MemoryNodeId, PipelineId};
use hetexchange::core_ops::traits::{check_relational_requirements, derive_traits};
use hetexchange::core_ops::{parallelize, RelNode};
use hetexchange::gpu_sim::device::standalone_gpu;
use hetexchange::jit::{
    AggSpec, CompiledPipeline, CpuProvider, DeviceProvider, Expr, GpuProvider, StateSlot, Step,
    TerminalStep,
};
use hetexchange::topology::DeviceKind;
use std::sync::Arc;

fn main() -> hetexchange::common::Result<()> {
    // The running example: an aggregation over a filtered join.
    let dates =
        RelNode::scan("date", &["d_datekey", "d_year"]).filter(Expr::col(1).eq(Expr::lit(1993)));
    let plan = RelNode::scan("lineorder", &["lo_orderdate", "lo_discount", "lo_revenue"])
        .filter(Expr::col(1).between(1, 3))
        .hash_join(dates, 0, 0, &[1])
        .reduce(vec![AggSpec::sum(Expr::col(2))], &["revenue"]);

    println!("== sequential physical plan (Figure 1a) ==\n{}", plan.explain());

    for (label, config) in [
        ("CPU-only, 24 cores", EngineConfig::cpu_only(24)),
        ("GPU-only, 2 GPUs", EngineConfig::gpu_only(2)),
        ("hybrid, 24 cores + 2 GPUs", EngineConfig::hybrid(24, 2)),
    ] {
        let het = parallelize(&plan, &config)?;
        check_relational_requirements(&het)?;
        let traits = derive_traits(&het);
        println!("== heterogeneity-aware plan: {label} ==");
        println!("{}", het.explain());
        println!(
            "output traits: device={}, dop={}, local={}, packed={}  ({} HetExchange operators)\n",
            traits.device,
            traits.dop,
            traits.local,
            traits.packed,
            het.hetexchange_operator_count()
        );
    }

    // Table 1 / Figure 3: one pipeline blueprint, two device specializations.
    let pipeline = CompiledPipeline::new(
        PipelineId::new(9),
        DeviceKind::Gpu,
        2,
        vec![Step::Filter { predicate: Expr::col(0).gt_lit(42) }],
        TerminalStep::Reduce { aggs: vec![AggSpec::sum(Expr::col(1))], slot: StateSlot(0) },
    )?;
    let cpu = CpuProvider::new(MemoryNodeId::new(0));
    let gpu = GpuProvider::new(Arc::new(standalone_gpu()));
    println!("== CPU provider specialization ==\n{}", cpu.convert_to_machine_code(&pipeline));
    println!("== GPU provider specialization ==\n{}", gpu.convert_to_machine_code(&pipeline));
    Ok(())
}
