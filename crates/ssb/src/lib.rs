//! # hetex-ssb
//!
//! The Star Schema Benchmark (O'Neil et al., TPCTC 2009), which the paper uses
//! for its entire evaluation (§6): a `lineorder` fact table joined with the
//! `date`, `customer`, `supplier` and `part` dimensions, queried by thirteen
//! queries in four groups.
//!
//! * [`gen`] — a deterministic, seedable data generator producing
//!   dictionary-encoded columnar tables at a configurable *physical* scale
//!   factor. The benchmark harness models the paper's nominal scale factors
//!   (SF100, SF1000) by generating a smaller physical dataset and setting the
//!   engine's `scale_weight` to `nominal / physical` (see `DESIGN.md` §2);
//!   SSB's filter selectivities are scale-invariant, so the modeled work
//!   scales faithfully.
//! * [`queries`] — the thirteen SSB queries expressed as [`RelNode`] plans
//!   over the generated schema, with string literals encoded through the
//!   generated dictionaries (Q2.2's string range becomes a code range thanks
//!   to order-preserving dictionary encoding).
//!
//! [`RelNode`]: hetex_core::RelNode

pub mod gen;
pub mod queries;

pub use gen::{SsbDataset, SsbGenerator};
pub use queries::{all_queries, query_by_name, query_group, SsbQuery};
