//! The thirteen SSB queries as relational plans.
//!
//! Every query is expressed as a [`RelNode`] plan over the generated schema:
//! the `lineorder` fact scan is the probe spine, each referenced dimension is
//! a filtered build side, and the root is a reduce (query flight 1) or a
//! group-by (flights 2–4). String literals are encoded through the dataset's
//! order-preserving dictionaries, so `p_brand1 BETWEEN 'MFGR#2221' AND
//! 'MFGR#2228'` (Q2.2) becomes a range predicate over dictionary codes.
//!
//! One deviation from the original SQL: Q3.4's `d_yearmonth = 'Dec1997'`
//! filter is expressed as `d_yearmonthnum = 199712`, which selects exactly the
//! same dates (documented in EXPERIMENTS.md).

use crate::gen::SsbDataset;
use hetex_common::{HetError, Result};
use hetex_core::RelNode;
use hetex_jit::{AggSpec, Expr};
use hetex_storage::StoredTable;

/// One SSB query: its name, query group/flight, plan, and the fact-table
/// columns it touches (used to size the working set for throughput numbers).
#[derive(Debug, Clone)]
pub struct SsbQuery {
    /// Paper-style name, e.g. `"Q2.1"`.
    pub name: String,
    /// Query flight (1–4).
    pub group: usize,
    /// The sequential physical plan.
    pub plan: RelNode,
    /// Lineorder columns read by the query.
    pub lineorder_columns: Vec<&'static str>,
}

/// Query flight of a query name ("Q3.2" → 3).
pub fn query_group(name: &str) -> usize {
    name.trim_start_matches('Q').split('.').next().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn dict_code(table: &StoredTable, column: &str, value: &str) -> Result<i64> {
    let dict = table
        .dictionary(column)
        .ok_or_else(|| HetError::Schema(format!("column {column} has no dictionary")))?;
    dict.encode(value)
        .map(|c| c as i64)
        .ok_or_else(|| HetError::Schema(format!("value `{value}` not in dictionary of {column}")))
}

fn dict_range(table: &StoredTable, column: &str, lo: &str, hi: &str) -> Result<(i64, i64)> {
    let dict = table
        .dictionary(column)
        .ok_or_else(|| HetError::Schema(format!("column {column} has no dictionary")))?;
    Ok((dict.lower_bound(lo) as i64, dict.upper_bound(hi) as i64))
}

/// All thirteen queries, in paper order.
pub fn all_queries(data: &SsbDataset) -> Result<Vec<SsbQuery>> {
    Ok(vec![
        q1_1(data)?,
        q1_2(data)?,
        q1_3(data)?,
        q2_1(data)?,
        q2_2(data)?,
        q2_3(data)?,
        q3_1(data)?,
        q3_2(data)?,
        q3_3(data)?,
        q3_4(data)?,
        q4_1(data)?,
        q4_2(data)?,
        q4_3(data)?,
    ])
}

/// Look up a query by its paper name.
pub fn query_by_name(data: &SsbDataset, name: &str) -> Result<SsbQuery> {
    all_queries(data)?
        .into_iter()
        .find(|q| q.name == name)
        .ok_or_else(|| HetError::Config(format!("unknown SSB query `{name}`")))
}

// ---------------------------------------------------------------- flight 1

/// Q1.x share the same shape: one join with `date`, predicates on discount,
/// quantity and a date attribute, revenue = SUM(extendedprice * discount).
fn flight1(
    data: &SsbDataset,
    name: &str,
    date_filter: Expr,
    discount_lo: i64,
    discount_hi: i64,
    quantity_pred: Expr,
) -> Result<SsbQuery> {
    let _ = data;
    // date projection: [d_datekey, d_year, d_yearmonthnum, d_weeknuminyear]
    let dates =
        RelNode::scan("date", &["d_datekey", "d_year", "d_yearmonthnum", "d_weeknuminyear"])
            .filter(date_filter);
    // lineorder projection: [lo_orderdate, lo_discount, lo_quantity, lo_extendedprice]
    let plan = RelNode::scan(
        "lineorder",
        &["lo_orderdate", "lo_discount", "lo_quantity", "lo_extendedprice"],
    )
    .filter(Expr::col(1).between(discount_lo, discount_hi).and(quantity_pred))
    .hash_join(dates, 0, 0, &[])
    .reduce(vec![AggSpec::sum(Expr::col(3).mul(Expr::col(1)))], &["revenue"]);
    Ok(SsbQuery {
        name: name.to_string(),
        group: 1,
        plan,
        lineorder_columns: vec!["lo_orderdate", "lo_discount", "lo_quantity", "lo_extendedprice"],
    })
}

fn q1_1(data: &SsbDataset) -> Result<SsbQuery> {
    flight1(data, "Q1.1", Expr::col(1).eq(Expr::lit(1993)), 1, 3, Expr::col(2).lt_lit(25))
}

fn q1_2(data: &SsbDataset) -> Result<SsbQuery> {
    flight1(data, "Q1.2", Expr::col(2).eq(Expr::lit(199_401)), 4, 6, Expr::col(2).between(26, 35))
}

fn q1_3(data: &SsbDataset) -> Result<SsbQuery> {
    flight1(
        data,
        "Q1.3",
        Expr::col(3).eq(Expr::lit(6)).and(Expr::col(1).eq(Expr::lit(1994))),
        5,
        7,
        Expr::col(2).between(26, 35),
    )
}

// ---------------------------------------------------------------- flight 2

/// Q2.x: joins with part (filtered), supplier (region filter) and date;
/// group by (d_year, p_brand1); SUM(lo_revenue).
fn flight2(data: &SsbDataset, name: &str, part_filter: Expr, s_region: &str) -> Result<SsbQuery> {
    let part = RelNode::scan("part", &["p_partkey", "p_category", "p_brand1"]).filter(part_filter);
    let supplier = RelNode::scan("supplier", &["s_suppkey", "s_region"])
        .filter(Expr::col(1).eq(Expr::lit(dict_code(&data.supplier, "s_region", s_region)?)));
    let dates = RelNode::scan("date", &["d_datekey", "d_year"]);
    // lineorder projection: [lo_orderdate, lo_partkey, lo_suppkey, lo_revenue]
    let plan =
        RelNode::scan("lineorder", &["lo_orderdate", "lo_partkey", "lo_suppkey", "lo_revenue"])
            .hash_join(part, 1, 0, &[2]) // + p_brand1 @4
            .hash_join(supplier, 2, 0, &[]) // width 5
            .hash_join(dates, 0, 0, &[1]) // + d_year @5
            .group_by(
                &[5, 4],
                vec![AggSpec::sum(Expr::col(3))],
                &["d_year", "p_brand1", "revenue"],
            );
    Ok(SsbQuery {
        name: name.to_string(),
        group: 2,
        plan,
        lineorder_columns: vec!["lo_orderdate", "lo_partkey", "lo_suppkey", "lo_revenue"],
    })
}

fn q2_1(data: &SsbDataset) -> Result<SsbQuery> {
    let category = dict_code(&data.part, "p_category", "MFGR#12")?;
    flight2(data, "Q2.1", Expr::col(1).eq(Expr::lit(category)), "AMERICA")
}

fn q2_2(data: &SsbDataset) -> Result<SsbQuery> {
    // The string inequality that DBMS G cannot execute (§6.1): a range over
    // p_brand1, which order-preserving dictionary codes turn into a BETWEEN.
    let (lo, hi) = dict_range(&data.part, "p_brand1", "MFGR#2221", "MFGR#2228")?;
    flight2(data, "Q2.2", Expr::col(2).between(lo, hi), "ASIA")
}

fn q2_3(data: &SsbDataset) -> Result<SsbQuery> {
    let brand = dict_code(&data.part, "p_brand1", "MFGR#2221")?;
    flight2(data, "Q2.3", Expr::col(2).eq(Expr::lit(brand)), "EUROPE")
}

// ---------------------------------------------------------------- flight 3

/// Q3.x: joins with customer, supplier and date; group by a geographic
/// attribute pair plus d_year; SUM(lo_revenue).
fn flight3(
    data: &SsbDataset,
    name: &str,
    customer_filter: Expr,
    supplier_filter: Expr,
    date_filter: Option<Expr>,
    geo_payload: &str,
) -> Result<SsbQuery> {
    let _ = data;
    let customer = RelNode::scan("customer", &["c_custkey", "c_city", "c_nation", "c_region"])
        .filter(customer_filter);
    let supplier = RelNode::scan("supplier", &["s_suppkey", "s_city", "s_nation", "s_region"])
        .filter(supplier_filter);
    let mut dates = RelNode::scan("date", &["d_datekey", "d_year", "d_yearmonthnum"]);
    if let Some(f) = date_filter {
        dates = dates.filter(f);
    }
    // Payload column index within the dimension projections: city = 1, nation = 2.
    let geo_idx = match geo_payload {
        "city" => 1,
        _ => 2,
    };
    // lineorder projection: [lo_orderdate, lo_custkey, lo_suppkey, lo_revenue]
    let plan =
        RelNode::scan("lineorder", &["lo_orderdate", "lo_custkey", "lo_suppkey", "lo_revenue"])
            .hash_join(customer, 1, 0, &[geo_idx]) // + c_geo @4
            .hash_join(supplier, 2, 0, &[geo_idx]) // + s_geo @5
            .hash_join(dates, 0, 0, &[1]) // + d_year @6
            .group_by(
                &[4, 5, 6],
                vec![AggSpec::sum(Expr::col(3))],
                &["c_geo", "s_geo", "d_year", "revenue"],
            );
    Ok(SsbQuery {
        name: name.to_string(),
        group: 3,
        plan,
        lineorder_columns: vec!["lo_orderdate", "lo_custkey", "lo_suppkey", "lo_revenue"],
    })
}

fn q3_1(data: &SsbDataset) -> Result<SsbQuery> {
    let asia_c = dict_code(&data.customer, "c_region", "ASIA")?;
    let asia_s = dict_code(&data.supplier, "s_region", "ASIA")?;
    flight3(
        data,
        "Q3.1",
        Expr::col(3).eq(Expr::lit(asia_c)),
        Expr::col(3).eq(Expr::lit(asia_s)),
        Some(Expr::col(1).between(1992, 1997)),
        "nation",
    )
}

fn q3_2(data: &SsbDataset) -> Result<SsbQuery> {
    let us_c = dict_code(&data.customer, "c_nation", "UNITED STATES")?;
    let us_s = dict_code(&data.supplier, "s_nation", "UNITED STATES")?;
    flight3(
        data,
        "Q3.2",
        Expr::col(2).eq(Expr::lit(us_c)),
        Expr::col(2).eq(Expr::lit(us_s)),
        Some(Expr::col(1).between(1992, 1997)),
        "city",
    )
}

fn q3_3(data: &SsbDataset) -> Result<SsbQuery> {
    let c1 = dict_code(&data.customer, "c_city", "UNITED KI1")?;
    let c5 = dict_code(&data.customer, "c_city", "UNITED KI5")?;
    let s1 = dict_code(&data.supplier, "s_city", "UNITED KI1")?;
    let s5 = dict_code(&data.supplier, "s_city", "UNITED KI5")?;
    flight3(
        data,
        "Q3.3",
        Expr::col(1).in_list(vec![c1, c5]),
        Expr::col(1).in_list(vec![s1, s5]),
        Some(Expr::col(1).between(1992, 1997)),
        "city",
    )
}

fn q3_4(data: &SsbDataset) -> Result<SsbQuery> {
    let c1 = dict_code(&data.customer, "c_city", "UNITED KI1")?;
    let c5 = dict_code(&data.customer, "c_city", "UNITED KI5")?;
    let s1 = dict_code(&data.supplier, "s_city", "UNITED KI1")?;
    let s5 = dict_code(&data.supplier, "s_city", "UNITED KI5")?;
    flight3(
        data,
        "Q3.4",
        Expr::col(1).in_list(vec![c1, c5]),
        Expr::col(1).in_list(vec![s1, s5]),
        Some(Expr::col(2).eq(Expr::lit(199_712))),
        "city",
    )
}

// ---------------------------------------------------------------- flight 4

/// Q4.x: four joins (customer, supplier, part, date); profit =
/// SUM(lo_revenue - lo_supplycost).
#[allow(clippy::too_many_arguments)]
fn flight4(
    data: &SsbDataset,
    name: &str,
    customer_filter: Expr,
    supplier_filter: Expr,
    part_filter: Option<Expr>,
    date_filter: Option<Expr>,
    customer_payload: &[usize],
    supplier_payload: &[usize],
    part_payload: &[usize],
    group_keys: &[usize],
    group_names: &[&str],
) -> Result<SsbQuery> {
    let _ = data;
    let customer = RelNode::scan("customer", &["c_custkey", "c_city", "c_nation", "c_region"])
        .filter(customer_filter);
    let supplier = RelNode::scan("supplier", &["s_suppkey", "s_city", "s_nation", "s_region"])
        .filter(supplier_filter);
    let mut part = RelNode::scan("part", &["p_partkey", "p_mfgr", "p_category", "p_brand1"]);
    if let Some(f) = part_filter {
        part = part.filter(f);
    }
    let mut dates = RelNode::scan("date", &["d_datekey", "d_year"]);
    if let Some(f) = date_filter {
        dates = dates.filter(f);
    }
    // lineorder projection (width 6):
    // [lo_orderdate, lo_custkey, lo_suppkey, lo_partkey, lo_revenue, lo_supplycost]
    let plan = RelNode::scan(
        "lineorder",
        &["lo_orderdate", "lo_custkey", "lo_suppkey", "lo_partkey", "lo_revenue", "lo_supplycost"],
    )
    .hash_join(customer, 1, 0, customer_payload)
    .hash_join(supplier, 2, 0, supplier_payload)
    .hash_join(part, 3, 0, part_payload)
    .hash_join(dates, 0, 0, &[1])
    .group_by(group_keys, vec![AggSpec::sum(Expr::col(4).sub(Expr::col(5)))], group_names);
    Ok(SsbQuery {
        name: name.to_string(),
        group: 4,
        plan,
        lineorder_columns: vec![
            "lo_orderdate",
            "lo_custkey",
            "lo_suppkey",
            "lo_partkey",
            "lo_revenue",
            "lo_supplycost",
        ],
    })
}

fn q4_1(data: &SsbDataset) -> Result<SsbQuery> {
    let america_c = dict_code(&data.customer, "c_region", "AMERICA")?;
    let america_s = dict_code(&data.supplier, "s_region", "AMERICA")?;
    let m1 = dict_code(&data.part, "p_mfgr", "MFGR#1")?;
    let m2 = dict_code(&data.part, "p_mfgr", "MFGR#2")?;
    // widths: 6 -> +c_nation@6 -> +0 -> +0 -> +d_year@7
    flight4(
        data,
        "Q4.1",
        Expr::col(3).eq(Expr::lit(america_c)),
        Expr::col(3).eq(Expr::lit(america_s)),
        Some(Expr::col(1).in_list(vec![m1, m2])),
        None,
        &[2],
        &[],
        &[],
        &[7, 6],
        &["d_year", "c_nation", "profit"],
    )
}

fn q4_2(data: &SsbDataset) -> Result<SsbQuery> {
    let america_c = dict_code(&data.customer, "c_region", "AMERICA")?;
    let america_s = dict_code(&data.supplier, "s_region", "AMERICA")?;
    let m1 = dict_code(&data.part, "p_mfgr", "MFGR#1")?;
    let m2 = dict_code(&data.part, "p_mfgr", "MFGR#2")?;
    // widths: 6 -> +0 -> +s_nation@6 -> +p_category@7 -> +d_year@8
    flight4(
        data,
        "Q4.2",
        Expr::col(3).eq(Expr::lit(america_c)),
        Expr::col(3).eq(Expr::lit(america_s)),
        Some(Expr::col(1).in_list(vec![m1, m2])),
        Some(Expr::col(1).in_list(vec![1997, 1998])),
        &[],
        &[2],
        &[2],
        &[8, 6, 7],
        &["d_year", "s_nation", "p_category", "profit"],
    )
}

fn q4_3(data: &SsbDataset) -> Result<SsbQuery> {
    let america_c = dict_code(&data.customer, "c_region", "AMERICA")?;
    let us_s = dict_code(&data.supplier, "s_nation", "UNITED STATES")?;
    let cat = dict_code(&data.part, "p_category", "MFGR#14")?;
    // widths: 6 -> +0 -> +s_city@6 -> +p_brand1@7 -> +d_year@8
    flight4(
        data,
        "Q4.3",
        Expr::col(3).eq(Expr::lit(america_c)),
        Expr::col(2).eq(Expr::lit(us_s)),
        Some(Expr::col(2).eq(Expr::lit(cat))),
        Some(Expr::col(1).in_list(vec![1997, 1998])),
        &[],
        &[1],
        &[3],
        &[8, 6, 7],
        &["d_year", "s_city", "p_brand1", "profit"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SsbGenerator;
    use hetex_common::MemoryNodeId;
    use hetex_engine::reference_execute;
    use hetex_storage::Catalog;

    fn dataset() -> SsbDataset {
        SsbGenerator { scale_factor: 0.002, seed: 11, segment_rows: 4096, fact_rows: None }
            .generate(&[MemoryNodeId::new(0), MemoryNodeId::new(1)])
            .unwrap()
    }

    #[test]
    fn thirteen_queries_in_four_groups() {
        let data = dataset();
        let queries = all_queries(&data).unwrap();
        assert_eq!(queries.len(), 13);
        let names: Vec<&str> = queries.iter().map(|q| q.name.as_str()).collect();
        assert_eq!(names[0], "Q1.1");
        assert_eq!(names[12], "Q4.3");
        for q in &queries {
            assert_eq!(q.group, query_group(&q.name));
            assert!(!q.lineorder_columns.is_empty());
        }
        assert_eq!(queries.iter().filter(|q| q.group == 1).count(), 3);
        assert_eq!(queries.iter().filter(|q| q.group == 2).count(), 3);
        assert_eq!(queries.iter().filter(|q| q.group == 3).count(), 4);
        assert_eq!(queries.iter().filter(|q| q.group == 4).count(), 3);
        assert!(query_by_name(&data, "Q2.2").is_ok());
        assert!(query_by_name(&data, "Q9.9").is_err());
    }

    #[test]
    fn plans_evaluate_against_the_reference_executor() {
        let data = dataset();
        let catalog = Catalog::new();
        data.register_into(&catalog);
        for q in all_queries(&data).unwrap() {
            let rows = reference_execute(&q.plan, &catalog)
                .unwrap_or_else(|e| panic!("{} failed: {e}", q.name));
            match q.group {
                1 => assert_eq!(rows.len(), 1, "{} returns one aggregate row", q.name),
                _ => {
                    // Group-by queries may legitimately return empty results at
                    // tiny scale, but the common flights should find matches.
                    if q.name == "Q2.1" || q.name == "Q3.1" || q.name == "Q4.1" {
                        assert!(!rows.is_empty(), "{} should produce groups", q.name);
                    }
                }
            }
        }
    }

    #[test]
    fn q1_1_matches_a_handwritten_evaluation() {
        let data = dataset();
        let catalog = Catalog::new();
        data.register_into(&catalog);
        let q = query_by_name(&data, "Q1.1").unwrap();
        let rows = reference_execute(&q.plan, &catalog).unwrap();

        // Recompute directly from the raw columns.
        let orderdate = data.lineorder.column("lo_orderdate").unwrap();
        let discount = data.lineorder.column("lo_discount").unwrap();
        let quantity = data.lineorder.column("lo_quantity").unwrap();
        let price = data.lineorder.column("lo_extendedprice").unwrap();
        let mut expected = 0i64;
        for i in 0..data.lineorder.rows() {
            let d = discount.get_i64(i).unwrap();
            let q_ = quantity.get_i64(i).unwrap();
            let date = orderdate.get_i64(i).unwrap();
            let year = date / 10_000;
            if year == 1993 && (1..=3).contains(&d) && q_ < 25 {
                expected += price.get_i64(i).unwrap() * d;
            }
        }
        assert_eq!(rows[0][0], expected);
    }

    #[test]
    fn q2_2_brand_range_selects_eight_brands() {
        let data = dataset();
        let (lo, hi) = dict_range(&data.part, "p_brand1", "MFGR#2221", "MFGR#2228").unwrap();
        assert_eq!(hi - lo + 1, 8);
    }

    #[test]
    fn group_by_outputs_are_sorted_and_keyed_correctly() {
        let data = dataset();
        let catalog = Catalog::new();
        data.register_into(&catalog);
        let q = query_by_name(&data, "Q2.1").unwrap();
        let rows = reference_execute(&q.plan, &catalog).unwrap();
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
        // Keys are (d_year, p_brand1): years in range, brands within MFGR#12.
        for row in &rows {
            assert!((1992..=1998).contains(&row[0]));
        }
    }
}
