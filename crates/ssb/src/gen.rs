//! The SSB data generator.
//!
//! Produces the five SSB tables as dictionary-encoded columnar
//! [`StoredTable`]s. The generator is deterministic for a given seed, and the
//! physical size is decoupled from the *nominal* scale factor the benchmark
//! harness models (see the crate docs): `SsbGenerator::scale_factor` controls
//! the physical row counts, and the engine's `scale_weight` knob scales the
//! modeled bytes up to the nominal SF100 / SF1000 datasets of the paper.

use hetex_common::{ColumnData, DataType, DictionaryBuilder, MemoryNodeId, Result};
use hetex_storage::{Catalog, StoredTable, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The 25 TPC-H / SSB nations and the region each belongs to.
pub const NATIONS: [(&str, &str); 25] = [
    ("ALGERIA", "AFRICA"),
    ("ARGENTINA", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"),
    ("EGYPT", "MIDDLE EAST"),
    ("ETHIOPIA", "AFRICA"),
    ("FRANCE", "EUROPE"),
    ("GERMANY", "EUROPE"),
    ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"),
    ("IRAN", "MIDDLE EAST"),
    ("IRAQ", "MIDDLE EAST"),
    ("JAPAN", "ASIA"),
    ("JORDAN", "MIDDLE EAST"),
    ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"),
    ("MOZAMBIQUE", "AFRICA"),
    ("PERU", "AMERICA"),
    ("CHINA", "ASIA"),
    ("ROMANIA", "EUROPE"),
    ("SAUDI ARABIA", "MIDDLE EAST"),
    ("VIETNAM", "ASIA"),
    ("RUSSIA", "EUROPE"),
    ("UNITED KINGDOM", "EUROPE"),
    ("UNITED STATES", "AMERICA"),
];

/// The five SSB regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// SSB city name: the nation name truncated/padded to 9 characters plus a
/// digit 0-9 (e.g. `UNITED KI1`).
pub fn city_name(nation: usize, digit: usize) -> String {
    let name = NATIONS[nation].0;
    let mut prefix: String = name.chars().take(9).collect();
    while prefix.len() < 9 {
        prefix.push(' ');
    }
    format!("{prefix}{digit}")
}

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct SsbGenerator {
    /// Physical scale factor (SF1 ≈ 6 M lineorder rows).
    pub scale_factor: f64,
    /// Override the lineorder row count directly (used by the
    /// microbenchmarks, which size inputs in bytes rather than SF).
    pub fact_rows: Option<usize>,
    /// RNG seed; the same seed always generates the same dataset.
    pub seed: u64,
    /// Rows per storage segment (segments are placed round-robin over the
    /// placement nodes).
    pub segment_rows: usize,
}

impl Default for SsbGenerator {
    fn default() -> Self {
        Self { scale_factor: 0.01, fact_rows: None, seed: 42, segment_rows: 1 << 20 }
    }
}

/// The generated dataset: the five tables plus the dictionaries needed to
/// encode query literals.
#[derive(Debug)]
pub struct SsbDataset {
    /// The `lineorder` fact table.
    pub lineorder: Arc<StoredTable>,
    /// The `date` dimension.
    pub date: Arc<StoredTable>,
    /// The `customer` dimension.
    pub customer: Arc<StoredTable>,
    /// The `supplier` dimension.
    pub supplier: Arc<StoredTable>,
    /// The `part` dimension.
    pub part: Arc<StoredTable>,
}

impl SsbDataset {
    /// Register every table into a catalog. Tables are shared, not copied, so
    /// several engines under comparison can use the same dataset.
    pub fn register_into(&self, catalog: &Catalog) {
        catalog.register_arc(Arc::clone(&self.lineorder));
        catalog.register_arc(Arc::clone(&self.date));
        catalog.register_arc(Arc::clone(&self.customer));
        catalog.register_arc(Arc::clone(&self.supplier));
        catalog.register_arc(Arc::clone(&self.part));
    }

    /// Total physical bytes of the listed `lineorder` columns plus every
    /// dimension column a query touches — the "working set" used for
    /// throughput numbers.
    pub fn working_set_bytes(&self, lineorder_columns: &[&str]) -> Result<usize> {
        self.lineorder.projected_bytes(lineorder_columns)
    }

    /// Number of fact rows.
    pub fn fact_rows(&self) -> usize {
        self.lineorder.rows()
    }
}

impl SsbGenerator {
    /// A generator at the given physical scale factor.
    pub fn new(scale_factor: f64) -> Self {
        Self { scale_factor, ..Self::default() }
    }

    /// Override the number of lineorder rows.
    pub fn with_fact_rows(mut self, rows: usize) -> Self {
        self.fact_rows = Some(rows);
        self
    }

    /// Physical row counts derived from the scale factor.
    pub fn row_counts(&self) -> (usize, usize, usize, usize, usize) {
        let sf = self.scale_factor.max(1e-4);
        let fact = self.fact_rows.unwrap_or(((6_000_000.0 * sf) as usize).max(1_000));
        let customer = ((30_000.0 * sf) as usize).max(100);
        let supplier = ((2_000.0 * sf) as usize).max(40);
        let part = if sf >= 1.0 {
            (200_000.0 * (1.0 + sf.log2())) as usize
        } else {
            ((200_000.0 * sf) as usize).max(200)
        };
        (fact, 2_557, customer, supplier, part)
    }

    /// Generate the dataset, placing segments round-robin over `placement`.
    pub fn generate(&self, placement: &[MemoryNodeId]) -> Result<SsbDataset> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (fact_rows, date_rows, customer_rows, supplier_rows, part_rows) = self.row_counts();

        let date = self.gen_date(placement)?;
        let customer = self.gen_customer(customer_rows, placement, &mut rng)?;
        let supplier = self.gen_supplier(supplier_rows, placement, &mut rng)?;
        let part = self.gen_part(part_rows, placement, &mut rng)?;
        let lineorder = self.gen_lineorder(
            fact_rows,
            date_rows,
            customer_rows,
            supplier_rows,
            part_rows,
            placement,
            &mut rng,
        )?;

        Ok(SsbDataset {
            lineorder: Arc::new(lineorder),
            date: Arc::new(date),
            customer: Arc::new(customer),
            supplier: Arc::new(supplier),
            part: Arc::new(part),
        })
    }

    fn gen_date(&self, placement: &[MemoryNodeId]) -> Result<StoredTable> {
        let mut datekey = Vec::new();
        let mut year = Vec::new();
        let mut yearmonthnum = Vec::new();
        let mut weeknuminyear = Vec::new();
        for y in 1992..=1998 {
            let leap = y % 4 == 0;
            let months = [31, if leap { 29 } else { 28 }, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
            let mut day_of_year = 0;
            for (m, &days) in months.iter().enumerate() {
                for d in 1..=days {
                    day_of_year += 1;
                    datekey.push(y * 10_000 + (m as i32 + 1) * 100 + d);
                    year.push(y);
                    yearmonthnum.push(y * 100 + m as i32 + 1);
                    weeknuminyear.push((day_of_year - 1) / 7 + 1);
                }
            }
        }
        TableBuilder::new("date")
            .column("d_datekey", DataType::Int32, ColumnData::Int32(datekey))
            .column("d_year", DataType::Int32, ColumnData::Int32(year))
            .column("d_yearmonthnum", DataType::Int32, ColumnData::Int32(yearmonthnum))
            .column("d_weeknuminyear", DataType::Int32, ColumnData::Int32(weeknuminyear))
            .build(placement, self.segment_rows)
    }

    fn gen_customer(
        &self,
        rows: usize,
        placement: &[MemoryNodeId],
        rng: &mut StdRng,
    ) -> Result<StoredTable> {
        let (nation_dict, region_dict, city_dict) = geo_dictionaries();
        let mut custkey = Vec::with_capacity(rows);
        let mut city = Vec::with_capacity(rows);
        let mut nation = Vec::with_capacity(rows);
        let mut region = Vec::with_capacity(rows);
        for i in 0..rows {
            let n = rng.random_range(0..NATIONS.len());
            let digit = rng.random_range(0..10);
            custkey.push(i as i32 + 1);
            nation.push(nation_dict.encode(NATIONS[n].0).unwrap());
            region.push(region_dict.encode(NATIONS[n].1).unwrap());
            city.push(city_dict.encode(&city_name(n, digit)).unwrap());
        }
        TableBuilder::new("customer")
            .column("c_custkey", DataType::Int32, ColumnData::Int32(custkey))
            .dict_column("c_city", city, Arc::new(city_dict))
            .dict_column("c_nation", nation, Arc::new(nation_dict))
            .dict_column("c_region", region, Arc::new(region_dict))
            .build(placement, self.segment_rows)
    }

    fn gen_supplier(
        &self,
        rows: usize,
        placement: &[MemoryNodeId],
        rng: &mut StdRng,
    ) -> Result<StoredTable> {
        let (nation_dict, region_dict, city_dict) = geo_dictionaries();
        let mut suppkey = Vec::with_capacity(rows);
        let mut city = Vec::with_capacity(rows);
        let mut nation = Vec::with_capacity(rows);
        let mut region = Vec::with_capacity(rows);
        for i in 0..rows {
            let n = rng.random_range(0..NATIONS.len());
            let digit = rng.random_range(0..10);
            suppkey.push(i as i32 + 1);
            nation.push(nation_dict.encode(NATIONS[n].0).unwrap());
            region.push(region_dict.encode(NATIONS[n].1).unwrap());
            city.push(city_dict.encode(&city_name(n, digit)).unwrap());
        }
        TableBuilder::new("supplier")
            .column("s_suppkey", DataType::Int32, ColumnData::Int32(suppkey))
            .dict_column("s_city", city, Arc::new(city_dict))
            .dict_column("s_nation", nation, Arc::new(nation_dict))
            .dict_column("s_region", region, Arc::new(region_dict))
            .build(placement, self.segment_rows)
    }

    fn gen_part(
        &self,
        rows: usize,
        placement: &[MemoryNodeId],
        rng: &mut StdRng,
    ) -> Result<StoredTable> {
        let (mfgr_dict, category_dict, brand_dict) = part_dictionaries();
        let mut partkey = Vec::with_capacity(rows);
        let mut mfgr = Vec::with_capacity(rows);
        let mut category = Vec::with_capacity(rows);
        let mut brand = Vec::with_capacity(rows);
        for i in 0..rows {
            let m = rng.random_range(1..=5u32);
            let c = rng.random_range(1..=5u32);
            let b = rng.random_range(1..=40u32);
            partkey.push(i as i32 + 1);
            mfgr.push(mfgr_dict.encode(&format!("MFGR#{m}")).unwrap());
            category.push(category_dict.encode(&format!("MFGR#{m}{c}")).unwrap());
            brand.push(brand_dict.encode(&format!("MFGR#{m}{c}{b}")).unwrap());
        }
        TableBuilder::new("part")
            .column("p_partkey", DataType::Int32, ColumnData::Int32(partkey))
            .dict_column("p_mfgr", mfgr, Arc::new(mfgr_dict))
            .dict_column("p_category", category, Arc::new(category_dict))
            .dict_column("p_brand1", brand, Arc::new(brand_dict))
            .build(placement, self.segment_rows)
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_lineorder(
        &self,
        rows: usize,
        date_rows: usize,
        customer_rows: usize,
        supplier_rows: usize,
        part_rows: usize,
        placement: &[MemoryNodeId],
        rng: &mut StdRng,
    ) -> Result<StoredTable> {
        // Order dates are drawn from the date dimension's keys.
        let mut date_keys = Vec::with_capacity(date_rows);
        for y in 1992..=1998i32 {
            let leap = y % 4 == 0;
            let months = [31, if leap { 29 } else { 28 }, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
            for (m, &days) in months.iter().enumerate() {
                for d in 1..=days {
                    date_keys.push(y * 10_000 + (m as i32 + 1) * 100 + d);
                }
            }
        }

        let mut orderdate = Vec::with_capacity(rows);
        let mut custkey = Vec::with_capacity(rows);
        let mut suppkey = Vec::with_capacity(rows);
        let mut partkey = Vec::with_capacity(rows);
        let mut quantity = Vec::with_capacity(rows);
        let mut discount = Vec::with_capacity(rows);
        let mut extendedprice = Vec::with_capacity(rows);
        let mut revenue = Vec::with_capacity(rows);
        let mut supplycost = Vec::with_capacity(rows);
        for _ in 0..rows {
            orderdate.push(date_keys[rng.random_range(0..date_keys.len())]);
            custkey.push(rng.random_range(1..=customer_rows as i32));
            suppkey.push(rng.random_range(1..=supplier_rows as i32));
            partkey.push(rng.random_range(1..=part_rows as i32));
            let q = rng.random_range(1..=50i32);
            quantity.push(q);
            discount.push(rng.random_range(0..=10i32));
            let price = rng.random_range(90_000..=100_000i64);
            extendedprice.push(price);
            revenue.push(price * q as i64 / 10);
            supplycost.push(price * 6 / 10);
        }
        TableBuilder::new("lineorder")
            .column("lo_orderdate", DataType::Int32, ColumnData::Int32(orderdate))
            .column("lo_custkey", DataType::Int32, ColumnData::Int32(custkey))
            .column("lo_suppkey", DataType::Int32, ColumnData::Int32(suppkey))
            .column("lo_partkey", DataType::Int32, ColumnData::Int32(partkey))
            .column("lo_quantity", DataType::Int32, ColumnData::Int32(quantity))
            .column("lo_discount", DataType::Int32, ColumnData::Int32(discount))
            .column("lo_extendedprice", DataType::Int64, ColumnData::Int64(extendedprice))
            .column("lo_revenue", DataType::Int64, ColumnData::Int64(revenue))
            .column("lo_supplycost", DataType::Int64, ColumnData::Int64(supplycost))
            .build(placement, self.segment_rows)
    }
}

/// Dictionaries shared by customer and supplier: nation, region, city.
fn geo_dictionaries() -> (DictionaryBuilder, DictionaryBuilder, DictionaryBuilder) {
    let nation = DictionaryBuilder::from_domain(NATIONS.iter().map(|(n, _)| *n));
    let region = DictionaryBuilder::from_domain(REGIONS);
    let mut cities = Vec::new();
    for n in 0..NATIONS.len() {
        for d in 0..10 {
            cities.push(city_name(n, d));
        }
    }
    let city = DictionaryBuilder::from_domain(cities);
    (nation, region, city)
}

/// Dictionaries for the part table: manufacturer, category, brand.
fn part_dictionaries() -> (DictionaryBuilder, DictionaryBuilder, DictionaryBuilder) {
    let mfgr = DictionaryBuilder::from_domain((1..=5).map(|m| format!("MFGR#{m}")));
    let category = DictionaryBuilder::from_domain(
        (1..=5).flat_map(|m| (1..=5).map(move |c| format!("MFGR#{m}{c}"))),
    );
    let brand =
        DictionaryBuilder::from_domain((1..=5).flat_map(|m| {
            (1..=5).flat_map(move |c| (1..=40).map(move |b| format!("MFGR#{m}{c}{b}")))
        }));
    (mfgr, category, brand)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> Vec<MemoryNodeId> {
        vec![MemoryNodeId::new(0), MemoryNodeId::new(1)]
    }

    fn tiny() -> SsbDataset {
        SsbGenerator { scale_factor: 0.001, seed: 7, segment_rows: 2048, fact_rows: None }
            .generate(&nodes())
            .unwrap()
    }

    #[test]
    fn row_counts_scale_with_sf() {
        let small = SsbGenerator::new(0.01).row_counts();
        let big = SsbGenerator::new(1.0).row_counts();
        assert_eq!(small.1, 2557);
        assert_eq!(big.0, 6_000_000);
        assert_eq!(big.2, 30_000);
        assert_eq!(big.3, 2_000);
        assert!(big.4 >= 200_000);
        assert!(small.0 < big.0);
        let overridden = SsbGenerator::new(1.0).with_fact_rows(1234).row_counts();
        assert_eq!(overridden.0, 1234);
    }

    #[test]
    fn date_dimension_covers_seven_years() {
        let data = tiny();
        assert_eq!(data.date.rows(), 2557);
        let years = data.date.column("d_year").unwrap();
        assert_eq!(years.get_i64(0), Some(1992));
        assert_eq!(years.get_i64(2556), Some(1998));
        let weeks = data.date.column("d_weeknuminyear").unwrap();
        for i in 0..data.date.rows() {
            let w = weeks.get_i64(i).unwrap();
            assert!((1..=53).contains(&w));
        }
    }

    #[test]
    fn foreign_keys_reference_dimensions() {
        let data = tiny();
        let custkeys = data.lineorder.column("lo_custkey").unwrap();
        let suppkeys = data.lineorder.column("lo_suppkey").unwrap();
        let partkeys = data.lineorder.column("lo_partkey").unwrap();
        let dates = data.lineorder.column("lo_orderdate").unwrap();
        for i in 0..data.lineorder.rows() {
            assert!(custkeys.get_i64(i).unwrap() <= data.customer.rows() as i64);
            assert!(suppkeys.get_i64(i).unwrap() <= data.supplier.rows() as i64);
            assert!(partkeys.get_i64(i).unwrap() <= data.part.rows() as i64);
            let d = dates.get_i64(i).unwrap();
            assert!((19920101..=19981231).contains(&d));
        }
    }

    #[test]
    fn dictionaries_are_order_preserving_for_brand_ranges() {
        let data = tiny();
        let brand_dict = data.part.dictionary("p_brand1").unwrap();
        let lo = brand_dict.encode("MFGR#2221").unwrap();
        let hi = brand_dict.encode("MFGR#2228").unwrap();
        assert!(lo < hi);
        // Exactly eight brands fall lexically in the Q2.2 range.
        let count = (lo..=hi).count();
        assert_eq!(count, 8);
        let region_dict = data.customer.dictionary("c_region").unwrap();
        assert!(region_dict.encode("ASIA").is_some());
        assert_eq!(region_dict.len(), 5);
        let city_dict = data.supplier.dictionary("s_city").unwrap();
        assert!(city_dict.encode("UNITED KI1").is_some());
        assert_eq!(city_dict.len(), 250);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SsbGenerator { scale_factor: 0.001, seed: 9, ..Default::default() }
            .generate(&nodes())
            .unwrap();
        let b = SsbGenerator { scale_factor: 0.001, seed: 9, ..Default::default() }
            .generate(&nodes())
            .unwrap();
        let ca = a.lineorder.column("lo_revenue").unwrap();
        let cb = b.lineorder.column("lo_revenue").unwrap();
        assert_eq!(ca.get_i64(100), cb.get_i64(100));
        let c = SsbGenerator { scale_factor: 0.001, seed: 10, ..Default::default() }
            .generate(&nodes())
            .unwrap();
        let cc = c.lineorder.column("lo_revenue").unwrap();
        assert_ne!(
            (0..50).map(|i| ca.get_i64(i)).collect::<Vec<_>>(),
            (0..50).map(|i| cc.get_i64(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn measures_are_in_documented_ranges() {
        let data = tiny();
        let quantity = data.lineorder.column("lo_quantity").unwrap();
        let discount = data.lineorder.column("lo_discount").unwrap();
        for i in 0..data.lineorder.rows() {
            assert!((1..=50).contains(&quantity.get_i64(i).unwrap()));
            assert!((0..=10).contains(&discount.get_i64(i).unwrap()));
        }
    }

    #[test]
    fn working_set_bytes_counts_projection() {
        let data = tiny();
        let bytes = data.working_set_bytes(&["lo_orderdate", "lo_revenue"]).unwrap();
        assert_eq!(bytes, data.fact_rows() * (4 + 8));
    }
}
