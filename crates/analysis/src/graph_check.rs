//! Stage-graph linting (`HX010`–`HX014`).
//!
//! The stage graph is the control plane of the pipelined executor: `feeds`
//! edges become block queues, `depends_on` edges become dependency gates.
//! These checks prove the graph is a DAG whose queues all have a producer
//! and a consumer, whose gates exactly mirror the hash-build dependencies
//! the probes actually have, and whose consumer instances name real,
//! non-excluded devices of the topology.

use crate::diagnostics::{AnalysisReport, Code};
use hetex_core::codegen::{StageGraph, StageSource};
use hetex_jit::{Step, TerminalStep};
use hetex_topology::ServerTopology;

/// Run every graph check.
pub fn check(graph: &StageGraph, topology: &ServerTopology, report: &mut AnalysisReport) {
    check_wiring(graph, report);
    check_cycles(graph, report);
    check_gates(graph, report);
    check_consumers(graph, topology, report);
    check_result_stage(graph, report);
}

/// `HX011`: sources resolve, `wiring.feeds` mirrors them, and no stage's
/// output is silently dropped.
fn check_wiring(graph: &StageGraph, report: &mut AnalysisReport) {
    let n = graph.stages.len();
    if graph.wiring.feeds.len() != n || graph.wiring.unlocks.len() != n {
        report.report(
            Code::HX011,
            None,
            format!(
                "wiring covers {} feeds / {} unlocks entries for {n} stages",
                graph.wiring.feeds.len(),
                graph.wiring.unlocks.len()
            ),
        );
        return;
    }
    for (idx, stage) in graph.stages.iter().enumerate() {
        if let StageSource::Stage(src) = stage.source {
            if src >= n {
                report.report(
                    Code::HX011,
                    Some(idx),
                    format!("consumes unknown stage {src} ({n} stages exist)"),
                );
            } else if graph.wiring.feeds[src] != Some(idx) {
                report.report(
                    Code::HX011,
                    Some(idx),
                    format!(
                        "consumes stage {src}, but wiring.feeds[{src}] = {:?} — the executor \
                         would wire the queue elsewhere",
                        graph.wiring.feeds[src]
                    ),
                );
            }
        }
    }
    for (src, &target) in graph.wiring.feeds.iter().enumerate() {
        if let Some(target) = target {
            let claimed =
                graph.stages.get(target).is_some_and(|s| s.source == StageSource::Stage(src));
            if !claimed {
                report.report(
                    Code::HX011,
                    Some(src),
                    format!(
                        "wiring.feeds[{src}] = Some({target}), but stage {target} does not \
                         consume stage {src}"
                    ),
                );
            }
        }
    }
    // A non-result sink nobody gates on produces blocks (or state) that no
    // one will ever read — dead weight at best, a wedged producer at worst.
    for (idx, stage) in graph.stages.iter().enumerate() {
        let feeds_someone = graph.wiring.feeds[idx].is_some();
        let gates_someone = graph.stages.iter().any(|s| s.depends_on.contains(&idx));
        if !stage.is_result && !feeds_someone && !gates_someone {
            report.report(
                Code::HX011,
                Some(idx),
                "orphan stage: not the result, feeds no queue and unlocks no gate",
            );
        }
    }
}

/// `HX010`: the graph (feeds + depends-on edges) must be acyclic.
fn check_cycles(graph: &StageGraph, report: &mut AnalysisReport) {
    let n = graph.stages.len();
    // Edges point from a stage to the stages that must wait for it.
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (idx, stage) in graph.stages.iter().enumerate() {
        if let StageSource::Stage(src) = stage.source {
            if src < n {
                successors[src].push(idx);
            }
        }
        for &dep in &stage.depends_on {
            if dep < n {
                successors[dep].push(idx);
            }
        }
    }
    // Iterative colored DFS.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < successors[node].len() {
                let succ = successors[node][*next];
                *next += 1;
                match color[succ] {
                    WHITE => {
                        color[succ] = GRAY;
                        stack.push((succ, 0));
                    }
                    GRAY => {
                        report.report(
                            Code::HX010,
                            Some(succ),
                            format!(
                                "stage-graph cycle: stage {node} reaches stage {succ} which is \
                                 an ancestor of stage {node}"
                            ),
                        );
                        return;
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
        }
    }
}

/// `HX012`: gates exactly mirror hash-build dependencies, and
/// `wiring.unlocks` is the inverse of `depends_on`.
fn check_gates(graph: &StageGraph, report: &mut AnalysisReport) {
    let n = graph.stages.len();
    // Which stage builds each hash-table slot.
    let build_stage_of_slot = |slot: usize| -> Option<usize> {
        graph.stages.iter().position(|s| {
            s.templates.values().any(|t| {
                matches!(t.terminal(), TerminalStep::HashJoinBuild { slot: s, .. }
                    if s.index() == slot)
            })
        })
    };
    for (idx, stage) in graph.stages.iter().enumerate() {
        for template in stage.templates.values() {
            for step in template.steps() {
                let Step::HashJoinProbe { slot, .. } = step else { continue };
                match build_stage_of_slot(slot.index()) {
                    Some(build) if stage.depends_on.contains(&build) => {}
                    Some(build) => report.report(
                        Code::HX012,
                        Some(idx),
                        format!(
                            "probes slot {} built by stage {build}, but the gate is missing \
                             from depends_on {:?} — the probe could run against a half-built \
                             table",
                            slot.index(),
                            stage.depends_on
                        ),
                    ),
                    None => report.report(
                        Code::HX012,
                        Some(idx),
                        format!("probes slot {} which no stage builds", slot.index()),
                    ),
                }
            }
        }
        for &dep in &stage.depends_on {
            if dep >= n {
                report.report(Code::HX012, Some(idx), format!("depends on unknown stage {dep}"));
                continue;
            }
            let builds_something = graph.stages[dep]
                .templates
                .values()
                .any(|t| matches!(t.terminal(), TerminalStep::HashJoinBuild { .. }));
            if !builds_something {
                report.report(
                    Code::HX012,
                    Some(idx),
                    format!("gates on stage {dep}, which builds no hash table"),
                );
            }
        }
    }
    if graph.wiring.unlocks.len() == n {
        for (idx, stage) in graph.stages.iter().enumerate() {
            for &dep in &stage.depends_on {
                if dep < n && !graph.wiring.unlocks[dep].contains(&idx) {
                    report.report(
                        Code::HX012,
                        Some(idx),
                        format!(
                            "depends on stage {dep}, but wiring.unlocks[{dep}] = {:?} does not \
                             open this stage's gate — the stage would wait forever",
                            graph.wiring.unlocks[dep]
                        ),
                    );
                }
            }
        }
        for (dep, unlocked) in graph.wiring.unlocks.iter().enumerate() {
            for &idx in unlocked {
                let gated = graph.stages.get(idx).is_some_and(|s| s.depends_on.contains(&dep));
                if !gated {
                    report.report(
                        Code::HX012,
                        Some(dep),
                        format!(
                            "wiring.unlocks[{dep}] opens stage {idx}, which does not depend \
                             on stage {dep}"
                        ),
                    );
                }
            }
        }
    }
}

/// `HX013`: every consumer instance names a real, non-excluded device of its
/// kind and has a matching pipeline template.
fn check_consumers(graph: &StageGraph, topology: &ServerTopology, report: &mut AnalysisReport) {
    for (idx, stage) in graph.stages.iter().enumerate() {
        if stage.consumers.is_empty() {
            report.report(Code::HX013, Some(idx), "stage has no consumer instances");
            continue;
        }
        for (slot_idx, consumer) in stage.consumers.iter().enumerate() {
            let Some(device) = consumer.affinity.for_kind(consumer.kind) else {
                report.report(
                    Code::HX013,
                    Some(idx),
                    format!(
                        "consumer {slot_idx} ({:?}) has no affinity for its own device kind",
                        consumer.kind
                    ),
                );
                continue;
            };
            match topology.device(device) {
                Err(_) => report.report(
                    Code::HX013,
                    Some(idx),
                    format!("consumer {slot_idx} is pinned to unknown device {device:?}"),
                ),
                Ok(profile) if profile.kind != consumer.kind => report.report(
                    Code::HX013,
                    Some(idx),
                    format!(
                        "consumer {slot_idx} is a {:?} instance pinned to {device:?}, \
                         a {:?} device",
                        consumer.kind, profile.kind
                    ),
                ),
                Ok(_) if topology.is_excluded(device) => report.report(
                    Code::HX013,
                    Some(idx),
                    format!(
                        "consumer {slot_idx} is pinned to {device:?}, which the topology \
                         has excluded"
                    ),
                ),
                Ok(_) => {}
            }
            if !stage.templates.contains_key(&consumer.kind) {
                report.report(
                    Code::HX013,
                    Some(idx),
                    format!(
                        "no {:?} pipeline template exists for consumer {slot_idx} — the \
                         executor would silently fall back to another device's template",
                        consumer.kind
                    ),
                );
            }
        }
    }
}

/// `HX014`: exactly one result stage, and it must be a sink.
fn check_result_stage(graph: &StageGraph, report: &mut AnalysisReport) {
    let results: Vec<usize> =
        graph.stages.iter().enumerate().filter_map(|(idx, s)| s.is_result.then_some(idx)).collect();
    match results.as_slice() {
        [] => report.report(Code::HX014, None, "plan has no result stage"),
        [result] => {
            let consumed =
                graph.stages.iter().position(|s| s.source == StageSource::Stage(*result));
            if let Some(consumer) = consumed {
                report.report(
                    Code::HX014,
                    Some(*result),
                    format!("result stage feeds stage {consumer}; the result must be a sink"),
                );
            }
        }
        many => report.report(
            Code::HX014,
            None,
            format!("plan has {} result stages: {many:?}", many.len()),
        ),
    }
}
