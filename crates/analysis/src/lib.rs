//! # hetex-analysis
//!
//! Static verification of compiled queries: prove a [`StageGraph`] will
//! execute — correct shapes, acyclic wiring, deadlock-free staging, a
//! satisfiable fault plan — *without running it*.
//!
//! HetExchange's premise is that the query plan is a program; this crate is
//! that program's type checker and linter. [`analyze`] runs four check
//! families over a compiled query and returns an [`AnalysisReport`] of
//! [`Diagnostic`]s with stable `HX0xx` codes (see [`Code`] for the catalog):
//!
//! * **IR type/schema checking** (`HX00x`, [`ir_check`]) — column widths
//!   propagate through every step chain, all device templates of a stage
//!   agree on one blueprint, state slots match their uses, plus expression
//!   lints (constant zero divisors, vectorized scratch depth, non-boolean
//!   filter predicates).
//! * **Stage-graph linting** (`HX01x`, [`graph_check`]) — acyclicity, queue
//!   wiring consistency, dependency gates mirroring hash-build dependencies,
//!   consumers naming real non-excluded devices.
//! * **Staging deadlock-freedom** (`HX02x`, [`staging_check`]) — the §4.2
//!   lease-ordering precondition proved per memory node against the actual
//!   consumer placement.
//! * **Config/fault-plan cross-validation** (`HX03x`, [`config_check`]) —
//!   fault plans name real devices and are recoverable under the configured
//!   fault-tolerance toggles.
//! * **Re-optimization linting** (`HX04x`, [`config_check::check_reopt`]) —
//!   an enabled `ReoptConfig` carries a sane gain threshold and a non-empty
//!   search space.
//!
//! The engine runs [`analyze`] before executing every query (governed by
//! `EngineConfig::analysis`); the `plan_lint` binary runs it over every
//! bench and SSB plan in CI; and the mutation suite in `tests/` proves each
//! lint actually fires.

pub mod config_check;
pub mod diagnostics;
pub mod graph_check;
pub mod ir_check;
pub mod staging_check;

pub use config_check::{check_fault_plan, check_reopt};
pub use diagnostics::{AnalysisReport, Code, Diagnostic, Severity};

use hetex_common::EngineConfig;
use hetex_core::codegen::StageGraph;
use hetex_topology::ServerTopology;

/// Statically verify a compiled query against its config and topology.
pub fn analyze(
    graph: &StageGraph,
    config: &EngineConfig,
    topology: &ServerTopology,
) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    ir_check::check(graph, &mut report);
    graph_check::check(graph, topology, &mut report);
    staging_check::check(graph, config, topology, &mut report);
    config_check::check(&config.fault, topology, &mut report);
    config_check::check_reopt(&config.reopt, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_core::{compile, parallelize, RelNode};
    use hetex_jit::{AggSpec, Expr};

    fn ssb_like_plan() -> RelNode {
        let dates = RelNode::scan("date", &["d_datekey", "d_year"])
            .filter(Expr::col(1).eq(Expr::lit(1993)));
        RelNode::scan("lineorder", &["lo_orderdate", "lo_discount", "lo_revenue"])
            .filter(Expr::col(1).between(1, 3))
            .hash_join(dates, 0, 0, &[1])
            .reduce(vec![AggSpec::sum(Expr::col(2))], &["revenue"])
    }

    #[test]
    fn compiled_plans_analyze_clean() {
        for config in
            [EngineConfig::hybrid(8, 2), EngineConfig::cpu_only(8), EngineConfig::gpu_only(2)]
        {
            let topology = ServerTopology::paper_server();
            let het = parallelize(&ssb_like_plan(), &config).unwrap();
            let graph = compile(&het, &config, &topology).unwrap();
            let report = analyze(&graph, &config, &topology);
            assert!(
                report.is_clean(),
                "expected a clean report for {:?}, got:\n{}",
                config.target,
                report.render()
            );
        }
    }
}
