//! Config / fault-plan cross-validation (`HX030`–`HX033`) and
//! re-optimization config linting (`HX040`–`HX041`).
//!
//! A fault plan is a schedule against *this* topology under *this* config:
//! a fault naming a device that does not exist silently never fires, and a
//! wedge injected while the watchdog is disabled is the documented-invalid
//! combination that turns a test scenario into an unbounded hang. These
//! checks also run standalone (via [`check_fault_plan`]) so fault-plan
//! authors can validate schedules before attaching them to a topology.

use crate::diagnostics::{AnalysisReport, Code};
use hetex_common::config::ReoptConfig;
use hetex_common::FaultConfig;
use hetex_topology::{DeviceFault, FaultPlan, ServerTopology};

/// Run the config checks against the topology's attached fault plan (no-op
/// when none is attached).
pub fn check(config: &FaultConfig, topology: &ServerTopology, report: &mut AnalysisReport) {
    if let Some(plan) = topology.fault_plan() {
        check_fault_plan(plan, topology, config, report);
    }
}

/// Lint a re-optimization configuration. A disabled config is always clean
/// (the feature is inert); an enabled one must carry a sane `min_gain`
/// (`HX040`, the same bound `EngineConfig::validate` enforces) and at least
/// one search axis — with both off the candidate space collapses to the
/// incumbent and the feature can never rewrite anything (`HX041`).
pub fn check_reopt(reopt: &ReoptConfig, report: &mut AnalysisReport) {
    if !reopt.enabled {
        return;
    }
    if !(reopt.min_gain.is_finite() && (0.0..1.0).contains(&reopt.min_gain)) {
        report.report(
            Code::HX040,
            None,
            format!("reopt min_gain must be a finite fraction in [0, 1), got {}", reopt.min_gain),
        );
    }
    if !reopt.search_target && !reopt.search_dop {
        report.report(
            Code::HX041,
            None,
            "re-optimization enabled with both search axes off: the plan space \
             is only the incumbent, so no rewrite can ever be emitted",
        );
    }
}

/// Validate one fault plan against a topology and the fault-tolerance
/// toggles that would be in effect when it fires.
pub fn check_fault_plan(
    plan: &FaultPlan,
    topology: &ServerTopology,
    config: &FaultConfig,
    report: &mut AnalysisReport,
) {
    for (device, fault) in plan.device_faults() {
        if topology.device(*device).is_err() {
            report.report(
                Code::HX030,
                None,
                format!("fault plan schedules {fault:?} on unknown device {device:?}"),
            );
            continue;
        }
        match fault {
            DeviceFault::Wedge { at } => {
                if !config.watchdog {
                    report.report(
                        Code::HX031,
                        None,
                        format!(
                            "wedge of {device:?} at {at:?} with the watchdog disabled: the \
                             wedged worker would never be detected and the query would hang"
                        ),
                    );
                }
            }
            DeviceFault::TransientWindow { from, until, probability, .. } => {
                if !(0.0..=1.0).contains(probability) {
                    report.report(
                        Code::HX030,
                        None,
                        format!(
                            "transient window on {device:?} has probability {probability}, \
                             outside [0, 1]"
                        ),
                    );
                } else if from >= until || *probability == 0.0 {
                    report.report(
                        Code::HX033,
                        None,
                        format!(
                            "transient window on {device:?} ([{from:?}, {until:?}), \
                             p={probability}) can never fire"
                        ),
                    );
                } else if !config.transient_retry && !config.quarantine {
                    report.report(
                        Code::HX032,
                        None,
                        format!(
                            "transient window on {device:?} with both transient retry and \
                             quarantine disabled: any injected failure aborts the query"
                        ),
                    );
                }
            }
            DeviceFault::PermanentAbort { .. } => {}
        }
    }
    for burst in plan.arena_bursts() {
        if topology.memory_node(burst.node).is_err() {
            report.report(
                Code::HX030,
                None,
                format!("arena burst targets unknown memory node {:?}", burst.node),
            );
        } else if burst.from >= burst.until || burst.bytes == 0 {
            report.report(
                Code::HX033,
                None,
                format!(
                    "arena burst on {:?} ([{:?}, {:?}), {} bytes) can never fire",
                    burst.node, burst.from, burst.until, burst.bytes
                ),
            );
        }
    }
}
