//! The diagnostic catalog: stable codes, severities and rendering.
//!
//! Every check in this crate reports through [`AnalysisReport`], attaching a
//! stable [`Code`] so tests (and downstream plan generators) can assert on
//! *which* lint fired rather than string-matching messages. Codes are never
//! reused or renumbered; retired checks leave a hole in the catalog.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable: the engine will run the plan, possibly
    /// with degraded performance or relying on defined-but-surprising
    /// semantics.
    Warning,
    /// The plan is structurally broken: executing it would panic, hang,
    /// deadlock or silently compute the wrong thing.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes, grouped by check family:
/// `HX00x` IR / schema, `HX01x` stage graph, `HX02x` staging memory,
/// `HX03x` config / fault plan, `HX04x` re-optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// Cross-stage schema mismatch: a stage's input width disagrees with
    /// what its source (base-table projection or producer stage) emits.
    HX001,
    /// Device templates of one stage disagree (steps, terminal, input width
    /// or a template registered under the wrong device kind).
    HX002,
    /// State-slot mismatch: a step references a missing slot, a slot of the
    /// wrong kind, or a slot whose arity/payload width disagrees.
    HX003,
    /// Division by a constant zero: defined to evaluate to 0, which is
    /// almost never what the plan author meant.
    HX004,
    /// Hash-pack partitioning is degenerate (zero partitions).
    HX005,
    /// Expression nesting requires an excessive number of concurrently live
    /// scratch columns under the vectorized lowering.
    HX006,
    /// A filter predicate is not boolean-shaped (top-level arithmetic or
    /// hash); non-zero-is-true semantics apply, which is rarely intended.
    HX007,
    /// The stage graph has a cycle through feeds/depends-on edges.
    HX010,
    /// Queue wiring is inconsistent: unknown producer stage, wiring that
    /// disagrees with stage sources, duplicate feeds, or an orphan stage
    /// whose output nothing consumes.
    HX011,
    /// Dependency gates disagree with hash-build dependencies: a probe's
    /// build stage is missing from `depends_on`, a gate references a stage
    /// that builds nothing, or `unlocks` is not the inverse of `depends_on`.
    HX012,
    /// Consumer instances are incompatible with the topology: missing
    /// affinity, unknown/excluded/wrong-kind device, no template for a
    /// consumer's device kind, or a stage with no consumers at all.
    HX013,
    /// Result-stage problems: no result stage, several, or a result stage
    /// that feeds another stage.
    HX014,
    /// Staging budget below the §4.2 lease-ordering deadlock-freedom floor:
    /// one estimated maximum-size block per device instance.
    HX020,
    /// Staging governance degraded: per-queue quota carve-outs on some node
    /// fall below one block (near-lockstep progress), or byte governance is
    /// disabled entirely (unbounded staging memory).
    HX021,
    /// The fault plan references a device or memory node that does not exist
    /// in the topology, or carries an out-of-range probability.
    HX030,
    /// Wedge injection with the watchdog disabled: the documented-invalid
    /// combination that turns a wedge into an unbounded hang.
    HX031,
    /// A transient-failure window with both transient retry and quarantine
    /// disabled: any injected failure aborts the query outright.
    HX032,
    /// A fault-plan entry that can never fire (empty time window, zero
    /// probability, zero-byte burst).
    HX033,
    /// Re-optimization configuration is invalid (non-finite or out-of-range
    /// `min_gain`): the engine would reject the config before planning.
    HX040,
    /// Re-optimization enabled with every search axis off: the plan space
    /// collapses to the incumbent, so the feature can never rewrite anything.
    HX041,
}

impl Code {
    /// The stable identifier rendered in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::HX001 => "HX001",
            Code::HX002 => "HX002",
            Code::HX003 => "HX003",
            Code::HX004 => "HX004",
            Code::HX005 => "HX005",
            Code::HX006 => "HX006",
            Code::HX007 => "HX007",
            Code::HX010 => "HX010",
            Code::HX011 => "HX011",
            Code::HX012 => "HX012",
            Code::HX013 => "HX013",
            Code::HX014 => "HX014",
            Code::HX020 => "HX020",
            Code::HX021 => "HX021",
            Code::HX030 => "HX030",
            Code::HX031 => "HX031",
            Code::HX032 => "HX032",
            Code::HX033 => "HX033",
            Code::HX040 => "HX040",
            Code::HX041 => "HX041",
        }
    }

    /// The severity this code reports at.
    pub fn severity(self) -> Severity {
        match self {
            Code::HX004
            | Code::HX006
            | Code::HX007
            | Code::HX021
            | Code::HX032
            | Code::HX033
            | Code::HX041 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line summary of what the check guards.
    pub fn summary(self) -> &'static str {
        match self {
            Code::HX001 => "cross-stage schema mismatch",
            Code::HX002 => "device templates disagree",
            Code::HX003 => "state-slot kind/arity mismatch",
            Code::HX004 => "division by constant zero",
            Code::HX005 => "degenerate hash-pack partitioning",
            Code::HX006 => "excessive vectorized scratch depth",
            Code::HX007 => "non-boolean filter predicate",
            Code::HX010 => "stage-graph cycle",
            Code::HX011 => "inconsistent queue wiring",
            Code::HX012 => "gates disagree with build dependencies",
            Code::HX013 => "consumers incompatible with topology",
            Code::HX014 => "result-stage problems",
            Code::HX020 => "staging budget below deadlock-freedom floor",
            Code::HX021 => "degraded staging governance",
            Code::HX030 => "fault plan names unknown device/node",
            Code::HX031 => "wedge injection without watchdog",
            Code::HX032 => "transient faults with recovery disabled",
            Code::HX033 => "fault-plan entry never fires",
            Code::HX040 => "invalid re-optimization config",
            Code::HX041 => "re-optimization with no search axis",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable catalog code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The stage the finding is anchored to, when there is one.
    pub stage: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if let Some(stage) = self.stage {
            write!(f, " stage {stage}:")?;
        } else {
            write!(f, ":")?;
        }
        write!(f, " {}", self.message)
    }
}

/// The collected findings of one analysis pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a finding against a stage.
    pub fn report(&mut self, code: Code, stage: Option<usize>, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: code.severity(),
            stage,
            message: message.into(),
        });
    }

    /// All findings, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// True when at least one error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when a finding with `code` exists.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Render every finding, one per line, errors first.
    pub fn render(&self) -> String {
        let mut ordered: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        ordered.sort_by_key(|d| std::cmp::Reverse(d.severity));
        ordered.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_follows_the_catalog() {
        assert_eq!(Code::HX001.severity(), Severity::Error);
        assert_eq!(Code::HX004.severity(), Severity::Warning);
        assert_eq!(Code::HX031.severity(), Severity::Error);
        assert_eq!(Code::HX033.severity(), Severity::Warning);
    }

    #[test]
    fn report_collects_and_renders() {
        let mut report = AnalysisReport::new();
        assert!(report.is_clean());
        report.report(Code::HX004, Some(1), "division by zero in predicate");
        report.report(Code::HX010, None, "cycle 0 -> 1 -> 0");
        assert!(!report.is_clean());
        assert!(report.has_errors());
        assert!(report.has_code(Code::HX010));
        assert!(!report.has_code(Code::HX001));
        assert_eq!(report.errors().count(), 1);
        assert_eq!(report.warnings().count(), 1);
        let rendered = report.render();
        // Errors sort first in the rendering.
        assert!(rendered.starts_with("error [HX010]"));
        assert!(rendered.contains("warning [HX004] stage 1:"));
    }
}
