//! Staging deadlock-freedom as a static proof (`HX020`–`HX021`).
//!
//! The pipelined executor backs every queued block with a byte lease from the
//! destination memory node's staging arena, split into per-queue admission
//! quotas. The §4.2 lease-ordering argument (DESIGN.md) that this cannot
//! deadlock has one hard precondition — the budget covers at least one
//! estimated maximum-size block per device instance — and one soft regime:
//! multi-stage plans place more queues than device instances on a node, so
//! per-queue carve-outs can fall below one block, at which point liveness
//! rests on the empty-accounts-admit rule at the price of near-lockstep
//! progress. [`check`] proves the hard floor (`HX020`, error — also proved
//! by `EngineConfig::validate`, but re-proved here so plans checked outside
//! the engine path are covered) and flags the degraded regime (`HX021`,
//! warning) from the *actual* consumer→node mapping the executor will use.

use crate::diagnostics::{AnalysisReport, Code};
use hetex_common::{EngineConfig, ExecutionMode, MemoryNodeId};
use hetex_core::codegen::StageGraph;
use hetex_topology::ServerTopology;
use std::collections::HashMap;

/// Run the staging checks.
pub fn check(
    graph: &StageGraph,
    config: &EngineConfig,
    topology: &ServerTopology,
    report: &mut AnalysisReport,
) {
    if config.execution_mode != ExecutionMode::Pipelined {
        // Stage-at-a-time materializes between stages; the lease-ordering
        // precondition does not apply.
        return;
    }
    let consumers_per_node = consumers_per_node(graph, topology);
    let total_consumers: usize = consumers_per_node.values().sum();
    let Some(budget) = config.staging_bytes else {
        if total_consumers > 1 {
            report.report(
                Code::HX021,
                None,
                format!(
                    "staging byte governance is disabled with {total_consumers} pipelined \
                     consumers; staged memory is unbounded"
                ),
            );
        }
        return;
    };
    let block = config.est_max_block_bytes();
    let floor = config.min_staging_bytes();
    if budget < floor {
        report.report(
            Code::HX020,
            None,
            format!(
                "staging_bytes ({budget}) is below the deadlock-freedom floor of one \
                 {block}-byte block per device instance ({} instances = {floor} bytes); \
                 a parked producer could starve every consumer of a node",
                config.total_dop().max(1)
            ),
        );
        return;
    }
    // The soft regime: per-queue carve-outs (an even `budget / consumers`
    // share per node) below one block. Live, but progress degrades to
    // near-lockstep block-at-a-time flow on that node.
    for (node, consumers) in sorted(consumers_per_node) {
        let share = budget / consumers as u64;
        if share < block {
            report.report(
                Code::HX021,
                None,
                format!(
                    "memory node {node} stages queues for {consumers} consumers across all \
                     stages; the even quota carve-out ({share} bytes) is below one \
                     {block}-byte block, so admission degrades to block-at-a-time flow"
                ),
            );
        }
    }
}

/// The consumer→staging-node mapping the pipelined executor derives: each
/// consumer's queue stages blocks in the local memory of the device the
/// instance is pinned to.
fn consumers_per_node(
    graph: &StageGraph,
    topology: &ServerTopology,
) -> HashMap<MemoryNodeId, usize> {
    let mut per_node: HashMap<MemoryNodeId, usize> = HashMap::new();
    for stage in &graph.stages {
        for consumer in &stage.consumers {
            // Consumers with unknown devices are reported as HX013; skip
            // them here rather than double-reporting.
            let Some(device) = consumer.affinity.for_kind(consumer.kind) else { continue };
            let Ok(node) = topology.local_memory_of(device) else { continue };
            *per_node.entry(node).or_default() += 1;
        }
    }
    per_node
}

fn sorted(map: HashMap<MemoryNodeId, usize>) -> Vec<(MemoryNodeId, usize)> {
    let mut entries: Vec<_> = map.into_iter().collect();
    entries.sort_by_key(|(node, _)| *node);
    entries
}
