//! IR type/schema checking (`HX001`–`HX007`).
//!
//! Width propagation re-runs the per-pipeline validation of
//! [`CompiledPipeline::new`] *and* extends it across stage boundaries: the
//! producer's emitted width must match every consumer template's declared
//! input width, and every device template of one stage must agree on the
//! shared step blueprint (§4.2's "parameterizable version of the pipeline per
//! device" is only sound when the versions are the same program).
//!
//! [`CompiledPipeline::new`]: hetex_jit::CompiledPipeline

use crate::diagnostics::{AnalysisReport, Code};
use hetex_core::codegen::{Stage, StageGraph, StageSource};
use hetex_jit::{CompiledPipeline, Expr, SharedState, StateObject, Step, TerminalStep};
use hetex_topology::DeviceKind;

/// Maximum number of concurrently live scratch columns the vectorized
/// lowering may rent for one expression before we flag the plan: each buffer
/// is a full chunk column (8 KiB), so deep binary nesting walks the working
/// set out of L1 — exactly the regime column-at-a-time evaluation is worst
/// at.
pub const MAX_SCRATCH_DEPTH: usize = 8;

/// Run every IR check over every stage template.
pub fn check(graph: &StageGraph, report: &mut AnalysisReport) {
    for (idx, stage) in graph.stages.iter().enumerate() {
        check_source_width(idx, stage, &graph.stages, report);
        check_template_agreement(idx, stage, report);
        for template in stage.templates.values() {
            check_template(idx, template, &graph.state, report);
        }
    }
}

/// `HX001`: the stage's input width must match what its source emits.
fn check_source_width(idx: usize, stage: &Stage, stages: &[Stage], report: &mut AnalysisReport) {
    let source_width = match &stage.source {
        StageSource::Table { projection, .. } => Some(projection.len()),
        StageSource::Stage(src) => stages.get(*src).map(|s| s.output_width()),
    };
    // An unknown producer stage is reported by the graph checks (HX011);
    // width checking only applies when the source resolves.
    let Some(source_width) = source_width else { return };
    for (kind, template) in &stage.templates {
        if template.input_width() != source_width {
            report.report(
                Code::HX001,
                Some(idx),
                format!(
                    "{kind:?} template expects {} input columns, but the stage's source ({}) \
                     emits {source_width}",
                    template.input_width(),
                    describe_source(&stage.source),
                ),
            );
        }
    }
}

fn describe_source(source: &StageSource) -> String {
    match source {
        StageSource::Table { table, projection } => {
            format!("table '{table}' with a {}-column projection", projection.len())
        }
        StageSource::Stage(src) => format!("stage {src}"),
    }
}

/// `HX002`: all device templates of a stage must share one blueprint, and
/// each must be registered under its own device kind.
fn check_template_agreement(idx: usize, stage: &Stage, report: &mut AnalysisReport) {
    for (kind, template) in &stage.templates {
        if template.device() != *kind {
            report.report(
                Code::HX002,
                Some(idx),
                format!(
                    "template registered under {kind:?} was compiled for {:?}",
                    template.device()
                ),
            );
        }
    }
    let mut kinds: Vec<DeviceKind> = stage.templates.keys().copied().collect();
    kinds.sort_by_key(|k| format!("{k:?}"));
    let Some((&first_kind, rest)) = kinds.split_first() else { return };
    let first = &stage.templates[&first_kind];
    for &kind in rest {
        let other = &stage.templates[&kind];
        if other.input_width() != first.input_width()
            || other.steps() != first.steps()
            || other.terminal() != first.terminal()
        {
            report.report(
                Code::HX002,
                Some(idx),
                format!(
                    "{kind:?} and {first_kind:?} templates disagree on the step blueprint \
                     (the device lowerings would compute different results)"
                ),
            );
        }
    }
}

/// Width propagation plus per-expression lints over one template.
fn check_template(
    idx: usize,
    template: &CompiledPipeline,
    state: &SharedState,
    report: &mut AnalysisReport,
) {
    let mut width = template.input_width();
    for step in template.steps() {
        if let Err(err) = step.check_width(width) {
            report.report(Code::HX001, Some(idx), err.to_string());
        }
        match step {
            Step::Filter { predicate } => {
                check_expr(idx, predicate, report);
                if !is_boolean_shaped(predicate) {
                    report.report(
                        Code::HX007,
                        Some(idx),
                        format!(
                            "filter predicate {predicate:?} is not boolean-shaped; \
                             non-zero-is-true semantics apply"
                        ),
                    );
                }
            }
            Step::Map { exprs } => exprs.iter().for_each(|e| check_expr(idx, e, report)),
            Step::HashJoinProbe { key, slot, payload_width } => {
                check_expr(idx, key, report);
                match state.object(*slot) {
                    Some(StateObject::HashTable { payload_width: built, .. }) => {
                        if built != payload_width {
                            report.report(
                                Code::HX003,
                                Some(idx),
                                format!(
                                    "probe of slot {} expects {payload_width} payload columns, \
                                     the build side stores {built}",
                                    slot.index()
                                ),
                            );
                        }
                    }
                    Some(other) => report.report(
                        Code::HX003,
                        Some(idx),
                        format!(
                            "probe references slot {} which holds {}",
                            slot.index(),
                            kind_name(other)
                        ),
                    ),
                    None => report.report(
                        Code::HX003,
                        Some(idx),
                        format!("probe references unknown state slot {}", slot.index()),
                    ),
                }
            }
        }
        width = step.output_width(width);
    }
    if let Err(err) = template.terminal().check_width(width) {
        report.report(Code::HX001, Some(idx), err.to_string());
    }
    check_terminal(idx, template.terminal(), state, report);
}

fn check_terminal(
    idx: usize,
    terminal: &TerminalStep,
    state: &SharedState,
    report: &mut AnalysisReport,
) {
    match terminal {
        TerminalStep::Pack { exprs, partition_by, partitions } => {
            exprs.iter().for_each(|e| check_expr(idx, e, report));
            if let Some(p) = partition_by {
                check_expr(idx, p, report);
                if *partitions == 0 {
                    report.report(
                        Code::HX005,
                        Some(idx),
                        "hash-pack with zero partitions: every tuple would be dropped",
                    );
                }
            }
        }
        TerminalStep::HashJoinBuild { key, payload, slot } => {
            check_expr(idx, key, report);
            payload.iter().for_each(|e| check_expr(idx, e, report));
            match state.object(*slot) {
                Some(StateObject::HashTable { payload_width, .. }) => {
                    if *payload_width != payload.len() {
                        report.report(
                            Code::HX003,
                            Some(idx),
                            format!(
                                "build into slot {} stores {} payload columns, the slot was \
                                 registered for {payload_width}",
                                slot.index(),
                                payload.len()
                            ),
                        );
                    }
                }
                Some(other) => report.report(
                    Code::HX003,
                    Some(idx),
                    format!(
                        "hash build targets slot {} which holds {}",
                        slot.index(),
                        kind_name(other)
                    ),
                ),
                None => report.report(
                    Code::HX003,
                    Some(idx),
                    format!("hash build targets unknown state slot {}", slot.index()),
                ),
            }
        }
        TerminalStep::Reduce { aggs, slot } => {
            aggs.iter().for_each(|a| check_expr(idx, &a.expr, report));
            match state.object(*slot) {
                Some(StateObject::Accumulators(acc)) => {
                    if acc.len() != aggs.len() {
                        report.report(
                            Code::HX003,
                            Some(idx),
                            format!(
                                "reduce updates {} aggregates, slot {} holds {} accumulators",
                                aggs.len(),
                                slot.index(),
                                acc.len()
                            ),
                        );
                    }
                }
                Some(other) => report.report(
                    Code::HX003,
                    Some(idx),
                    format!(
                        "reduce targets slot {} which holds {}",
                        slot.index(),
                        kind_name(other)
                    ),
                ),
                None => report.report(
                    Code::HX003,
                    Some(idx),
                    format!("reduce targets unknown state slot {}", slot.index()),
                ),
            }
        }
        TerminalStep::GroupBy { keys, aggs, slot } => {
            keys.iter().for_each(|e| check_expr(idx, e, report));
            aggs.iter().for_each(|a| check_expr(idx, &a.expr, report));
            match state.object(*slot) {
                Some(StateObject::GroupBy(table)) => {
                    if table.funcs().len() != aggs.len() {
                        report.report(
                            Code::HX003,
                            Some(idx),
                            format!(
                                "group-by updates {} aggregates, slot {} was registered for {}",
                                aggs.len(),
                                slot.index(),
                                table.funcs().len()
                            ),
                        );
                    }
                }
                Some(other) => report.report(
                    Code::HX003,
                    Some(idx),
                    format!(
                        "group-by targets slot {} which holds {}",
                        slot.index(),
                        kind_name(other)
                    ),
                ),
                None => report.report(
                    Code::HX003,
                    Some(idx),
                    format!("group-by targets unknown state slot {}", slot.index()),
                ),
            }
        }
    }
}

fn kind_name(object: &StateObject) -> &'static str {
    match object {
        StateObject::HashTable { .. } => "a hash table",
        StateObject::Accumulators(_) => "an accumulator set",
        StateObject::GroupBy(_) => "a group-by table",
    }
}

/// Per-expression lints: `HX004` (division by constant zero) and `HX006`
/// (vectorized scratch depth).
fn check_expr(idx: usize, expr: &Expr, report: &mut AnalysisReport) {
    if divides_by_constant_zero(expr) {
        report.report(
            Code::HX004,
            Some(idx),
            format!("{expr:?} divides by a constant zero (defined to evaluate to 0)"),
        );
    }
    let depth = scratch_depth(expr);
    if depth > MAX_SCRATCH_DEPTH {
        report.report(
            Code::HX006,
            Some(idx),
            format!(
                "expression needs {depth} concurrently live scratch columns under the \
                 vectorized lowering (limit {MAX_SCRATCH_DEPTH}); chunk working set will \
                 spill out of L1"
            ),
        );
    }
}

fn divides_by_constant_zero(expr: &Expr) -> bool {
    match expr {
        Expr::Div(_, b) if matches!(**b, Expr::Lit(0)) => true,
        Expr::Col(_) | Expr::Lit(_) => false,
        Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Div(a, b)
        | Expr::Eq(a, b)
        | Expr::Ne(a, b)
        | Expr::Lt(a, b)
        | Expr::Le(a, b)
        | Expr::Gt(a, b)
        | Expr::Ge(a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b) => divides_by_constant_zero(a) || divides_by_constant_zero(b),
        Expr::Not(a) | Expr::Between(a, _, _) | Expr::InList(a, _) | Expr::Hash(a) => {
            divides_by_constant_zero(a)
        }
    }
}

/// Number of concurrently live scratch columns `Expr::eval_batch` rents for
/// this expression: a binary node evaluates its left side into the output
/// buffer, then rents one buffer for the right side while it recurses —
/// so the high-water mark is `max(depth(lhs), 1 + depth(rhs))`.
pub fn scratch_depth(expr: &Expr) -> usize {
    match expr {
        Expr::Col(_) | Expr::Lit(_) => 0,
        Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Div(a, b)
        | Expr::Eq(a, b)
        | Expr::Ne(a, b)
        | Expr::Lt(a, b)
        | Expr::Le(a, b)
        | Expr::Gt(a, b)
        | Expr::Ge(a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b) => scratch_depth(a).max(1 + scratch_depth(b)),
        Expr::Not(a) | Expr::Between(a, _, _) | Expr::InList(a, _) | Expr::Hash(a) => {
            scratch_depth(a)
        }
    }
}

/// True when the expression's top level yields 0/1 (comparison, connective,
/// range or membership test).
fn is_boolean_shaped(expr: &Expr) -> bool {
    matches!(
        expr,
        Expr::Eq(..)
            | Expr::Ne(..)
            | Expr::Lt(..)
            | Expr::Le(..)
            | Expr::Gt(..)
            | Expr::Ge(..)
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::Between(..)
            | Expr::InList(..)
            | Expr::Lit(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_depth_counts_live_rentals() {
        assert_eq!(scratch_depth(&Expr::col(0)), 0);
        // One binary node: lhs into out, one rental for rhs.
        assert_eq!(scratch_depth(&Expr::col(0).eq(Expr::lit(1))), 1);
        // Left-deep chains stay at one live rental.
        let left_deep = Expr::col(0).and(Expr::col(1)).and(Expr::col(2)).and(Expr::col(3));
        assert_eq!(scratch_depth(&left_deep), 1);
        // Right-deep chains rent one buffer per level.
        let right_deep = Expr::And(
            Box::new(Expr::col(0)),
            Box::new(Expr::And(
                Box::new(Expr::col(1)),
                Box::new(Expr::And(Box::new(Expr::col(2)), Box::new(Expr::col(3)))),
            )),
        );
        assert_eq!(scratch_depth(&right_deep), 3);
    }

    #[test]
    fn division_by_constant_zero_is_found_anywhere() {
        let bad = Expr::col(0).eq(Expr::Div(Box::new(Expr::col(1)), Box::new(Expr::lit(0))));
        assert!(divides_by_constant_zero(&bad));
        let fine = Expr::Div(Box::new(Expr::col(1)), Box::new(Expr::lit(100)));
        assert!(!divides_by_constant_zero(&fine));
    }

    #[test]
    fn boolean_shape_detection() {
        assert!(is_boolean_shaped(&Expr::col(0).between(1, 3)));
        assert!(is_boolean_shaped(&Expr::col(0).eq(Expr::lit(1))));
        assert!(!is_boolean_shaped(&Expr::col(0)));
        assert!(!is_boolean_shaped(&Expr::col(0).mul(Expr::col(1))));
    }
}
