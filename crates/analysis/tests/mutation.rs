//! Mutation-testing harness for the static analyzer.
//!
//! Two halves prove the analyzer is neither blind nor trigger-happy:
//!
//! * **Soundness of silence** — randomly generated valid plans, compiled
//!   under every execution target, analyze completely clean (property test).
//! * **Each lint fires** — every mutation class seeds a specific defect into
//!   a compiled stage graph (the `Stage`/`StageWiring` fields are public
//!   exactly so tests can corrupt them) or into a config/fault plan, and the
//!   test asserts the *expected* HX code is reported — not just "something
//!   failed".

use hetex_analysis::{analyze, check_fault_plan, AnalysisReport, Code};
use hetex_common::{EngineConfig, FaultConfig};
use hetex_core::codegen::{StageGraph, StageSource};
use hetex_core::{compile, parallelize, RelNode};
use hetex_jit::{AggSpec, Expr};
use hetex_topology::{DeviceId, DeviceKind, FaultPlan, ServerTopology, SimTime};
use proptest::prelude::*;
use std::sync::Arc;

/// Compile a plan for the paper server; panics on invalid plans (the corpus
/// here is valid by construction).
fn compiled(plan: &RelNode, config: &EngineConfig) -> (StageGraph, Arc<ServerTopology>) {
    let topology = ServerTopology::paper_server();
    let het = parallelize(plan, config).expect("parallelize");
    let graph = compile(&het, config, &topology).expect("compile");
    (graph, topology)
}

fn join_plan(threshold: i64) -> RelNode {
    let dim = RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(threshold));
    RelNode::scan("fact", &["key", "value"])
        .hash_join(dim, 0, 0, &[1])
        .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
}

fn reduce_plan(threshold: i64) -> RelNode {
    RelNode::scan("fact", &["key", "value"])
        .filter(Expr::col(0).gt_lit(threshold))
        .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum_v"])
}

fn hybrid() -> EngineConfig {
    EngineConfig::hybrid(8, 2)
}

/// Analyze a mutated graph and assert the expected code fired.
fn assert_fires(report: &AnalysisReport, code: Code, label: &str) {
    assert!(
        report.has_code(code),
        "{label}: expected {} ({}), got:\n{}",
        code.as_str(),
        code.summary(),
        if report.is_clean() { "<clean report>".to_string() } else { report.render() }
    );
}

// ---------------------------------------------------------------------------
// Soundness of silence: random valid plans analyze clean.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_valid_plans_analyze_clean(
        threshold in -100i64..1000,
        dim_threshold in 1i64..7,
        cpu_dop in 1usize..9,
        gpu_dop in 1usize..3,
        shape in 0u8..4,
    ) {
        let plan = match shape {
            0 => reduce_plan(threshold),
            1 => join_plan(dim_threshold),
            2 => RelNode::scan("fact", &["key", "value", "g"])
                .filter(Expr::col(0).between(threshold, threshold + 500))
                .group_by(&[2], vec![AggSpec::sum(Expr::col(1))], &["g", "sum_v"]),
            _ => RelNode::scan("fact", &["key", "value"])
                .reduce(vec![AggSpec::count()], &["cnt"]),
        };
        for config in [
            EngineConfig::cpu_only(cpu_dop),
            EngineConfig::gpu_only(gpu_dop),
            EngineConfig::hybrid(cpu_dop, gpu_dop),
        ] {
            let (graph, topology) = compiled(&plan, &config);
            let report = analyze(&graph, &config, &topology);
            prop_assert!(
                report.is_clean(),
                "valid plan (shape {}) drew diagnostics under {:?}:\n{}",
                shape, config.target, report.render()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Each lint fires: one seeded mutation per class, expected code asserted.
// ---------------------------------------------------------------------------

#[test]
fn mutation_truncated_projection_is_hx001() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&reduce_plan(10), &config);
    let stage = graph
        .stages
        .iter_mut()
        .find(|s| matches!(s.source, StageSource::Table { .. }))
        .expect("a table-source stage");
    let StageSource::Table { projection, .. } = &mut stage.source else { unreachable!() };
    projection.pop();
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX001, "truncated projection");
}

#[test]
fn mutation_template_under_wrong_kind_is_hx002() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&reduce_plan(10), &config);
    let stage = graph.stages.first_mut().expect("a stage");
    let cpu = stage.template(DeviceKind::CpuCore).clone();
    stage.templates.insert(DeviceKind::Gpu, cpu);
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX002, "CPU template registered as GPU");
}

#[test]
fn mutation_foreign_state_is_hx003() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&join_plan(3), &config);
    // State compiled for a *different* plan: the probe's hash-table slot now
    // holds that plan's accumulators (or nothing at all).
    let (foreign, _) = compiled(&reduce_plan(10), &config);
    graph.state = foreign.state;
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX003, "state of another plan");
}

#[test]
fn mutation_zero_divisor_is_hx004() {
    let config = hybrid();
    let plan = RelNode::scan("fact", &["key", "value"])
        .filter(Expr::Div(Box::new(Expr::col(0)), Box::new(Expr::lit(0))).gt_lit(1))
        .reduce(vec![AggSpec::count()], &["cnt"]);
    let (graph, topology) = compiled(&plan, &config);
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX004, "division by constant zero");
    assert!(!report.has_errors(), "HX004 is a warning, not an error");
}

#[test]
fn mutation_deep_scratch_nesting_is_hx006() {
    let config = hybrid();
    // Right-nested arithmetic: every level needs its right operand's scratch
    // column live while the left evaluates, so depth grows with nesting.
    let mut expr = Expr::col(0);
    for _ in 0..12 {
        expr = Expr::Add(Box::new(Expr::lit(1)), Box::new(expr));
    }
    let plan = RelNode::scan("fact", &["key", "value"])
        .filter(expr.gt_lit(0))
        .reduce(vec![AggSpec::count()], &["cnt"]);
    let (graph, topology) = compiled(&plan, &config);
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX006, "excessive scratch depth");
}

#[test]
fn mutation_arithmetic_filter_predicate_is_hx007() {
    let config = hybrid();
    let plan = RelNode::scan("fact", &["key", "value"])
        .filter(Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::lit(1))))
        .reduce(vec![AggSpec::count()], &["cnt"]);
    let (graph, topology) = compiled(&plan, &config);
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX007, "non-boolean filter predicate");
}

#[test]
fn mutation_dependency_cycle_is_hx010() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&join_plan(3), &config);
    let result = graph.stages.iter().position(|s| s.is_result).expect("result stage");
    graph.stages[0].depends_on.push(result);
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX010, "dependency cycle");
}

#[test]
fn mutation_cleared_feed_is_hx011() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&join_plan(3), &config);
    let fed = graph.wiring.feeds.iter().position(|f| f.is_some()).expect("a fed stage");
    graph.wiring.feeds[fed] = None;
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX011, "cleared feed");
}

#[test]
fn mutation_dropped_build_gate_is_hx012() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&join_plan(3), &config);
    let probe =
        graph.stages.iter().position(|s| !s.depends_on.is_empty()).expect("a gated (probe) stage");
    graph.stages[probe].depends_on.clear();
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX012, "dropped build gate");
}

#[test]
fn mutation_unknown_consumer_device_is_hx013() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&reduce_plan(10), &config);
    let stage = graph.stages.iter_mut().find(|s| !s.consumers.is_empty()).expect("consumers");
    let slot = stage.consumers.first_mut().expect("a consumer slot");
    match slot.kind {
        DeviceKind::CpuCore => slot.affinity.cpu_core = Some(DeviceId::new(999)),
        DeviceKind::Gpu => slot.affinity.gpu = Some(DeviceId::new(999)),
    }
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX013, "unknown consumer device");
}

#[test]
fn mutation_no_consumers_is_hx013() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&reduce_plan(10), &config);
    graph.stages[0].consumers.clear();
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX013, "no consumers");
}

#[test]
fn mutation_no_result_stage_is_hx014() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&reduce_plan(10), &config);
    for stage in &mut graph.stages {
        stage.is_result = false;
    }
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX014, "no result stage");
}

#[test]
fn mutation_starved_staging_budget_is_hx020() {
    // `EngineConfig::validate` (run by the planner) rejects a starved budget
    // up front, so compile with a healthy config and starve it afterwards —
    // the analyzer must independently re-prove the floor, since plans can be
    // checked against configs the planner never saw.
    let mut config = hybrid();
    let (graph, topology) = compiled(&join_plan(3), &config);
    config.staging_bytes = Some(config.min_staging_bytes().saturating_sub(1).max(1));
    let report = analyze(&graph, &config, &topology);
    assert_fires(&report, Code::HX020, "staging budget below floor");
    assert!(report.has_errors(), "HX020 is an error");
}

#[test]
fn mutation_unknown_fault_device_is_hx030() {
    let topology = ServerTopology::paper_server();
    let plan = FaultPlan::new().abort_device(DeviceId::new(999), SimTime::ZERO);
    let mut report = AnalysisReport::new();
    check_fault_plan(&plan, &topology, &FaultConfig::default(), &mut report);
    assert_fires(&report, Code::HX030, "unknown fault device");
}

#[test]
fn mutation_wedge_without_watchdog_is_hx031() {
    let topology = ServerTopology::paper_server();
    let device = topology.cpu_cores()[0];
    let plan = FaultPlan::new().wedge_worker(device, SimTime::from_micros(5));
    let config = FaultConfig { watchdog: false, ..FaultConfig::default() };
    let mut report = AnalysisReport::new();
    check_fault_plan(&plan, &topology, &config, &mut report);
    assert_fires(&report, Code::HX031, "wedge without watchdog");
}

#[test]
fn mutation_transients_without_recovery_is_hx032() {
    let topology = ServerTopology::paper_server();
    let device = topology.gpus()[0];
    let plan =
        FaultPlan::new().transient_window(device, SimTime::ZERO, SimTime::from_millis(10), 0.5, 42);
    let config =
        FaultConfig { transient_retry: false, quarantine: false, ..FaultConfig::default() };
    let mut report = AnalysisReport::new();
    check_fault_plan(&plan, &topology, &config, &mut report);
    assert_fires(&report, Code::HX032, "transients without recovery");
}

#[test]
fn mutation_never_firing_entries_are_hx033() {
    let topology = ServerTopology::paper_server();
    let device = topology.gpus()[0];
    let node = topology.cpu_memory_nodes()[0];
    // An empty transient window and a zero-byte burst: both dead entries.
    let plan = FaultPlan::new()
        .transient_window(device, SimTime::from_millis(5), SimTime::from_millis(5), 0.5, 42)
        .arena_burst(node, 0, SimTime::ZERO, SimTime::from_millis(1));
    let mut report = AnalysisReport::new();
    check_fault_plan(&plan, &topology, &FaultConfig::default(), &mut report);
    assert_fires(&report, Code::HX033, "never-firing fault entries");
    assert_eq!(report.diagnostics().len(), 2, "both dead entries reported");
}

/// The engine-facing contract: a mutated plan is *rejected* under the
/// default `AnalysisMode::Deny` before any execution. Exercised here at the
/// analyzer level (error severities present ⇒ `Proteus::verify` errors).
#[test]
fn mutations_produce_error_severities_that_deny_would_reject() {
    let config = hybrid();
    let (mut graph, topology) = compiled(&join_plan(3), &config);
    graph.stages[0].consumers.clear();
    let report = analyze(&graph, &config, &topology);
    assert!(report.has_errors());
    assert!(!report.render().is_empty());
}
