//! DBMS C: the vectorized multi-core CPU baseline.
//!
//! §6: "DBMS C is a columnar database that uses SIMD vector-at-a-time
//! execution, similar to MonetDB/X100, and supports multi-CPU execution."
//! §6.1 explains the gap to Proteus CPU on Q3.1/Q3.2: "the operators of
//! DBMS C have to either materialize a result vector or a bitmap vector,
//! whereas Proteus CPU attempts to operate as much as possible over
//! CPU-register-based values to avoid materialization costs."
//!
//! The cost model therefore charges, on top of the base column scan, one
//! materialized intermediate vector per vector-at-a-time operator (write +
//! read), sized by the rows that actually survive up to that operator — which
//! is exactly why the gap to a register-pipelining engine shrinks as queries
//! become more selective, the behaviour Figure 4 shows.

use crate::profile::profile_plan;
use crate::BaselineOutcome;
use hetex_common::{EngineConfig, Result};
use hetex_core::RelNode;
use hetex_storage::Catalog;
use hetex_topology::{DeviceProfile, ServerTopology, SimTime};
use std::sync::Arc;

/// Fixed per-query overhead (optimizer, vector pipeline setup).
const QUERY_OVERHEAD: SimTime = SimTime::from_millis(25);

/// The vectorized CPU baseline.
#[derive(Debug, Clone)]
pub struct DbmsC {
    topology: Arc<ServerTopology>,
    cpu_dop: usize,
}

impl DbmsC {
    /// A DBMS C instance using `cpu_dop` cores of the topology.
    pub fn new(topology: Arc<ServerTopology>, cpu_dop: usize) -> Self {
        let cores = topology.cpu_cores().len();
        Self { topology, cpu_dop: cpu_dop.clamp(1, cores.max(1)) }
    }

    /// Number of cores used.
    pub fn cpu_dop(&self) -> usize {
        self.cpu_dop
    }

    /// Execute a query: exact rows, modeled time. The per-table weights of
    /// `config` scale the physical data volumes up to the nominal scale factor.
    pub fn execute(
        &self,
        plan: &RelNode,
        catalog: &Catalog,
        config: &EngineConfig,
    ) -> Result<BaselineOutcome> {
        let (profile, rows) = profile_plan(plan, catalog, config)?;

        let core = DeviceProfile::paper_cpu_core(0, hetex_common::MemoryNodeId::new(0));
        let dram_gbps: f64 = self
            .topology
            .cpu_memory_nodes()
            .iter()
            .map(|&n| self.topology.memory_node(n).map(|m| m.bandwidth_gbps).unwrap_or(0.0))
            .sum();
        let agg_seq_gbps = (self.cpu_dop as f64 * core.seq_bandwidth_gbps).min(dram_gbps);
        let agg_rand_gbps = self.cpu_dop as f64 * core.random_bandwidth_gbps;

        // Base column scans (already weighted to the nominal scale).
        let scan_bytes = profile.fact_bytes + profile.dim_bytes;

        // Vector-at-a-time materialization: every operator writes a selection
        // vector / intermediate column block and the next operator reads it
        // back. Intermediates after the filter carry the surviving rows; after
        // each join they additionally carry the appended payload columns.
        let mut materialized = profile.rows_after_filter * 4.0 * 2.0; // selection vector
        let mut width = profile.spine_width as f64;
        for &rows_after in &profile.rows_after_each_join {
            width += 1.0;
            materialized += rows_after * width * 8.0 * 2.0;
        }
        materialized += profile.rows_into_aggregation() * 8.0 * 2.0;

        // Hash probes: vectorized engines probe with dependent random access
        // just like compiled ones.
        let random_bytes = profile.total_probes() * 24.0
            + profile.rows_into_aggregation() * (profile.group_keys as f64) * 16.0;

        let seq_seconds = (scan_bytes + materialized) / (agg_seq_gbps * 1e9);
        let random_seconds = random_bytes / (agg_rand_gbps * 1e9);
        let total = seq_seconds.max(random_seconds);

        Ok(BaselineOutcome {
            rows,
            sim_time: SimTime::from_secs_f64(total).add_nanos(QUERY_OVERHEAD.as_nanos()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{ColumnData, DataType, MemoryNodeId};
    use hetex_jit::{AggSpec, Expr};
    use hetex_storage::TableBuilder;

    fn setup(rows: usize) -> (Arc<ServerTopology>, Catalog) {
        let topology = ServerTopology::paper_server();
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new("t")
                .column(
                    "a",
                    DataType::Int32,
                    ColumnData::Int32((0..rows as i32).map(|i| i % 100).collect()),
                )
                .column("b", DataType::Int64, ColumnData::Int64((0..rows as i64).collect()))
                .build(&[MemoryNodeId::new(0), MemoryNodeId::new(1)], 1 << 16)
                .unwrap(),
        );
        (topology, catalog)
    }

    fn weighted(w: f64) -> EngineConfig {
        EngineConfig { scale_weight: w, ..EngineConfig::default() }
    }

    fn sum_plan() -> RelNode {
        RelNode::scan("t", &["a", "b"])
            .filter(Expr::col(0).gt_lit(42))
            .reduce(vec![AggSpec::sum(Expr::col(1))], &["s"])
    }

    #[test]
    fn results_match_reference_and_time_is_positive() {
        let (topology, catalog) = setup(100_000);
        let dbms = DbmsC::new(topology, 24);
        let outcome = dbms.execute(&sum_plan(), &catalog, &weighted(1.0)).unwrap();
        let expected: i64 = (0..100_000i64).filter(|i| i % 100 > 42).sum();
        assert_eq!(outcome.rows, vec![vec![expected]]);
        assert!(outcome.seconds() > 0.0);
    }

    #[test]
    fn more_cores_and_smaller_weights_are_faster() {
        let (topology, catalog) = setup(100_000);
        let few = DbmsC::new(Arc::clone(&topology), 2);
        let many = DbmsC::new(topology, 24);
        let slow = few.execute(&sum_plan(), &catalog, &weighted(1_000.0)).unwrap();
        let fast = many.execute(&sum_plan(), &catalog, &weighted(1_000.0)).unwrap();
        assert!(fast.sim_time < slow.sim_time);
        let light = many.execute(&sum_plan(), &catalog, &weighted(10.0)).unwrap();
        assert!(light.sim_time < fast.sim_time);
    }

    #[test]
    fn dop_is_clamped_to_the_topology() {
        let (topology, _) = setup(10);
        let dbms = DbmsC::new(topology, 10_000);
        assert_eq!(dbms.cpu_dop(), 24);
    }

    #[test]
    fn aggregate_bandwidth_saturates_at_dram() {
        // Beyond ~16 cores the model must stop scaling (socket DRAM limit),
        // mirroring §6.4's 89.7 GB/s plateau.
        let (topology, catalog) = setup(200_000);
        let sixteen = DbmsC::new(Arc::clone(&topology), 16)
            .execute(&sum_plan(), &catalog, &weighted(1_000.0))
            .unwrap();
        let twentyfour =
            DbmsC::new(topology, 24).execute(&sum_plan(), &catalog, &weighted(1_000.0)).unwrap();
        let ratio = sixteen.seconds() / twentyfour.seconds();
        assert!(ratio < 1.15, "24 cores should not be much faster than 16: {ratio}");
    }
}
