//! # hetex-baselines
//!
//! Stand-ins for the two commercial systems the paper compares against (§6):
//!
//! * **DBMS C** ([`dbms_c::DbmsC`]) — "a columnar database that uses SIMD
//!   vector-at-a-time execution, similar to MonetDB/X100, and supports
//!   multi-CPU execution". Our stand-in executes queries exactly (through the
//!   instrumented plan profiler) and models vector-at-a-time cost: every
//!   operator materializes an intermediate vector, which costs memory
//!   bandwidth that register-pipelined compiled engines do not pay.
//! * **DBMS G** ([`dbms_g::DbmsG`]) — "uses JIT code generation, operates over
//!   columnar data and supports multi-GPU execution", with the behaviours §6
//!   attributes to it: dense-array star joins with filters applied after the
//!   join, kernels that allocate twice the registers (half occupancy),
//!   pageable-memory transfers at less than half the PCIe bandwidth for
//!   non-resident data, per-GPU co-partitioning with no cross-GPU traffic,
//!   inability to run Q2.2's string inequality, and a Q4.3-style failure when
//!   cardinality estimation does not fit device memory.
//!
//! Both baselines produce *exact* query results (they share the instrumented
//! reference evaluator in [`profile`]) and *modeled* execution times built
//! from the same calibration constants as the main engine's cost model, so
//! comparisons against Proteus are apples-to-apples.

pub mod dbms_c;
pub mod dbms_g;
pub mod profile;

pub use dbms_c::DbmsC;
pub use dbms_g::DbmsG;
pub use profile::{profile_plan, PlanProfile};

use hetex_topology::SimTime;

/// The outcome of running a query on a baseline system.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Exact result rows (same convention as the engine: keys then aggregates,
    /// sorted by key).
    pub rows: Vec<Vec<i64>>,
    /// Modeled execution time.
    pub sim_time: SimTime,
}

impl BaselineOutcome {
    /// Execution time in seconds.
    pub fn seconds(&self) -> f64 {
        self.sim_time.as_secs_f64()
    }
}
