//! Instrumented plan evaluation.
//!
//! Both baselines need the same two things: the exact query result and the
//! per-operator data volumes (how many rows survive the fact-side filters, how
//! many reach each join, how wide the intermediates are). [`profile_plan`]
//! computes both in a single pass: it is the reference evaluator with
//! cardinality instrumentation. Volumes are physical; callers scale them by
//! the benchmark's `scale_weight` to model the nominal SF100/SF1000 datasets.

use hetex_common::{DataType, EngineConfig, HetError, Result};
use hetex_core::RelNode;
use hetex_jit::ir::AggFunc;
use hetex_jit::{AggSpec, Expr};
use hetex_storage::Catalog;
use std::collections::HashMap;

/// Per-operator volumes of one query execution.
#[derive(Debug, Clone, Default)]
pub struct PlanProfile {
    /// Physical bytes scanned from the fact (probe-spine) table.
    pub fact_bytes: f64,
    /// Physical rows of the fact table.
    pub fact_rows: f64,
    /// Physical bytes scanned from dimension (build-side) tables.
    pub dim_bytes: f64,
    /// Number of hash joins on the probe spine.
    pub joins: usize,
    /// Fact rows surviving the fact-local filters (before any join).
    pub rows_after_filter: f64,
    /// Rows surviving after each successive join (probe spine order).
    pub rows_after_each_join: Vec<f64>,
    /// Register width (columns) flowing into the aggregation.
    pub spine_width: usize,
    /// Rows of the final result.
    pub result_rows: f64,
    /// Number of group-by keys (0 for plain reductions).
    pub group_keys: usize,
    /// True if any dimension filter is a range predicate over a
    /// dictionary-encoded (string) column — the construct DBMS G cannot run.
    pub has_string_range_filter: bool,
    /// Scale weight of the fact (probe-spine) table.
    pub spine_weight: f64,
    /// Product of the full value domains (dictionary sizes) of the group-by
    /// keys — the cardinality a GPU engine must budget for when estimating its
    /// aggregation output (DBMS G's Q4.3 failure mode).
    pub group_domain_product: f64,
    /// Source (table, column) of each probe-spine output column, when it maps
    /// directly to a stored column.
    pub spine_columns: Vec<Option<(String, String)>>,
}

impl PlanProfile {
    /// Total rows probed across all joins (each surviving row probes the next
    /// join), used to price random accesses.
    pub fn total_probes(&self) -> f64 {
        let mut probes = 0.0;
        let mut current = self.rows_after_filter;
        for &after in &self.rows_after_each_join {
            probes += current;
            current = after;
        }
        probes
    }

    /// Rows reaching the aggregation.
    pub fn rows_into_aggregation(&self) -> f64 {
        self.rows_after_each_join.last().copied().unwrap_or(self.rows_after_filter)
    }
}

/// Evaluate `plan` exactly while recording per-operator volumes. Data volumes
/// are scaled by the per-table weights of `config` (the same weights the main
/// engine applies), so baseline cost models see the nominal data sizes.
pub fn profile_plan(
    plan: &RelNode,
    catalog: &Catalog,
    config: &EngineConfig,
) -> Result<(PlanProfile, Vec<Vec<i64>>)> {
    let mut profile =
        PlanProfile { spine_weight: 1.0, group_domain_product: 1.0, ..PlanProfile::default() };
    let rows = eval(plan, catalog, config, &mut profile, true)?;
    profile.result_rows = rows.len() as f64;
    // Spine cardinalities were counted on the physical data; scale them to the
    // nominal fact-table size (selectivities are scale-invariant).
    profile.rows_after_filter *= profile.spine_weight;
    for r in &mut profile.rows_after_each_join {
        *r *= profile.spine_weight;
    }
    Ok((profile, rows))
}

fn eval(
    node: &RelNode,
    catalog: &Catalog,
    config: &EngineConfig,
    profile: &mut PlanProfile,
    on_spine: bool,
) -> Result<Vec<Vec<i64>>> {
    match node {
        RelNode::Scan { table, projection } => {
            let weight = config.weight_for(table);
            let table = catalog.get(table)?;
            let projection_refs: Vec<&str> = projection.iter().map(String::as_str).collect();
            let bytes = table.projected_bytes(&projection_refs)? as f64 * weight;
            if on_spine {
                profile.fact_bytes += bytes;
                profile.fact_rows += table.rows() as f64 * weight;
                profile.spine_width = projection.len();
                profile.spine_weight = weight;
                profile.spine_columns = projection
                    .iter()
                    .map(|c| Some((table.name().to_string(), c.clone())))
                    .collect();
            } else {
                profile.dim_bytes += bytes;
            }
            let mut columns = Vec::new();
            for name in projection {
                columns.push(table.column(name)?);
            }
            let mut out = Vec::with_capacity(table.rows());
            for r in 0..table.rows() {
                out.push(columns.iter().map(|c| c.get_i64(r).unwrap_or(0)).collect());
            }
            Ok(out)
        }
        RelNode::Filter { input, predicate } => {
            if !on_spine {
                detect_string_range(input, predicate, catalog, profile);
            }
            let rows = eval(input, catalog, config, profile, on_spine)?;
            let out: Vec<Vec<i64>> = rows.into_iter().filter(|r| predicate.eval_bool(r)).collect();
            if on_spine {
                profile.rows_after_filter = out.len() as f64;
            }
            Ok(out)
        }
        RelNode::Project { input, exprs, .. } => {
            let rows = eval(input, catalog, config, profile, on_spine)?;
            if on_spine {
                profile.spine_width = exprs.len();
                profile.spine_columns = vec![None; exprs.len()];
            }
            Ok(rows.into_iter().map(|r| exprs.iter().map(|e| e.eval(&r)).collect()).collect())
        }
        RelNode::HashJoin { build, probe, build_key, probe_key, payload } => {
            let build_rows = eval(build, catalog, config, profile, false)?;
            let probe_rows = eval(probe, catalog, config, profile, on_spine)?;
            if on_spine && profile.rows_after_filter == 0.0 {
                // No explicit fact filter: every fact row reaches the first join.
                profile.rows_after_filter = probe_rows.len() as f64;
            }
            let mut table: HashMap<i64, Vec<Vec<i64>>> = HashMap::new();
            for row in build_rows {
                let key = row
                    .get(*build_key)
                    .copied()
                    .ok_or_else(|| HetError::Plan("build key out of range".into()))?;
                table.entry(key).or_default().push(payload.iter().map(|&p| row[p]).collect());
            }
            let mut out = Vec::new();
            for row in probe_rows {
                let key = row
                    .get(*probe_key)
                    .copied()
                    .ok_or_else(|| HetError::Plan("probe key out of range".into()))?;
                if let Some(matches) = table.get(&key) {
                    for m in matches {
                        let mut joined = row.clone();
                        joined.extend_from_slice(m);
                        out.push(joined);
                    }
                }
            }
            if on_spine {
                profile.joins += 1;
                profile.rows_after_each_join.push(out.len() as f64);
                profile.spine_width += payload.len();
                for &p in payload {
                    profile.spine_columns.push(source_column(build, p));
                }
            }
            Ok(out)
        }
        RelNode::Reduce { input, aggs, .. } => {
            let rows = eval(input, catalog, config, profile, on_spine)?;
            profile.group_keys = 0;
            Ok(vec![aggregate(&rows, aggs)])
        }
        RelNode::GroupBy { input, keys, aggs, .. } => {
            let rows = eval(input, catalog, config, profile, on_spine)?;
            profile.group_keys = keys.len();
            profile.group_domain_product = keys
                .iter()
                .map(|&k| {
                    profile
                        .spine_columns
                        .get(k)
                        .and_then(|s| s.as_ref())
                        .and_then(|(table, column)| {
                            catalog
                                .get(table)
                                .ok()
                                .and_then(|t| t.dictionary(column))
                                .map(|d| d.len() as f64)
                        })
                        .unwrap_or(8.0)
                })
                .product();
            let mut groups: HashMap<Vec<i64>, Vec<Vec<i64>>> = HashMap::new();
            for row in rows {
                let key: Vec<i64> = keys.iter().map(|&k| row[k]).collect();
                groups.entry(key).or_default().push(row);
            }
            let mut out: Vec<Vec<i64>> = groups
                .into_iter()
                .map(|(key, rows)| {
                    let mut row = key;
                    row.extend(aggregate(&rows, aggs));
                    row
                })
                .collect();
            out.sort();
            Ok(out)
        }
    }
}

fn aggregate(rows: &[Vec<i64>], aggs: &[AggSpec]) -> Vec<i64> {
    aggs.iter()
        .map(|agg| {
            let mut acc = agg.func.identity();
            for row in rows {
                let value = match agg.func {
                    AggFunc::Count => 1,
                    _ => agg.expr.eval(row),
                };
                acc = agg.func.accumulate(acc, value);
            }
            acc
        })
        .collect()
}

/// The stored (table, column) a build-side output column maps to, if it is a
/// direct column reference (filters preserve columns; projections do not).
fn source_column(node: &RelNode, col: usize) -> Option<(String, String)> {
    match node {
        RelNode::Scan { table, projection } => {
            projection.get(col).map(|c| (table.clone(), c.clone()))
        }
        RelNode::Filter { input, .. } => source_column(input, col),
        _ => None,
    }
}

/// Mark the profile if a dimension filter contains a range predicate over a
/// dictionary-encoded column (Q2.2's `p_brand1 BETWEEN 'MFGR#2221' AND
/// 'MFGR#2228'`).
fn detect_string_range(
    input: &RelNode,
    predicate: &Expr,
    catalog: &Catalog,
    profile: &mut PlanProfile,
) {
    let RelNode::Scan { table, projection } = input else {
        return;
    };
    let Ok(table) = catalog.get(table) else {
        return;
    };
    let dict_columns: Vec<usize> = projection
        .iter()
        .enumerate()
        .filter(|(_, name)| {
            table.schema().field(name).map(|f| f.data_type == DataType::Dictionary).unwrap_or(false)
        })
        .map(|(i, _)| i)
        .collect();
    if expr_has_range_over(predicate, &dict_columns) {
        profile.has_string_range_filter = true;
    }
}

fn expr_has_range_over(expr: &Expr, dict_columns: &[usize]) -> bool {
    match expr {
        Expr::Between(inner, _, _) => matches!(**inner, Expr::Col(c) if dict_columns.contains(&c)),
        Expr::And(a, b) | Expr::Or(a, b) => {
            expr_has_range_over(a, dict_columns) || expr_has_range_over(b, dict_columns)
        }
        Expr::Not(a) => expr_has_range_over(a, dict_columns),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{ColumnData, DictionaryBuilder, MemoryNodeId};
    use hetex_engine::reference_execute;
    use hetex_storage::TableBuilder;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let nodes = vec![MemoryNodeId::new(0)];
        let brand_dict = Arc::new(DictionaryBuilder::from_domain(["B1", "B2", "B3", "B4"]));
        catalog.register(
            TableBuilder::new("fact")
                .column(
                    "k",
                    DataType::Int32,
                    ColumnData::Int32((0..1000).map(|i| i % 10).collect()),
                )
                .column(
                    "m",
                    DataType::Int32,
                    ColumnData::Int32((0..1000).map(|i| i % 100).collect()),
                )
                .column("v", DataType::Int64, ColumnData::Int64((0..1000).collect()))
                .build(&nodes, 256)
                .unwrap(),
        );
        catalog.register(
            TableBuilder::new("dim")
                .column("id", DataType::Int32, ColumnData::Int32((0..10).collect()))
                .dict_column("brand", (0..10).map(|i| i % 4).collect(), brand_dict)
                .build(&nodes, 256)
                .unwrap(),
        );
        catalog
    }

    fn plan() -> RelNode {
        let dim = RelNode::scan("dim", &["id", "brand"]).filter(Expr::col(1).between(1, 2));
        RelNode::scan("fact", &["k", "m", "v"])
            .filter(Expr::col(1).lt_lit(50))
            .hash_join(dim, 0, 0, &[1])
            .group_by(&[3], vec![AggSpec::sum(Expr::col(2))], &["brand", "s"])
    }

    fn unit_config() -> EngineConfig {
        EngineConfig::default()
    }

    #[test]
    fn profile_matches_reference_result() {
        let catalog = catalog();
        let (profile, rows) = profile_plan(&plan(), &catalog, &unit_config()).unwrap();
        let expected = reference_execute(&plan(), &catalog).unwrap();
        assert_eq!(rows, expected);
        assert_eq!(profile.fact_rows, 1000.0);
        assert_eq!(profile.fact_bytes, 1000.0 * (4.0 + 4.0 + 8.0));
        assert!(profile.dim_bytes > 0.0);
        assert_eq!(profile.joins, 1);
        assert_eq!(profile.rows_after_filter, 500.0);
        // Brands 1 and 2 are matched by dim ids {1,2,5,6,9}: 5 of 10 keys.
        assert_eq!(profile.rows_after_each_join, vec![250.0]);
        assert_eq!(profile.group_keys, 1);
        assert_eq!(profile.result_rows, rows.len() as f64);
        assert!(profile.total_probes() > 0.0);
        assert_eq!(profile.rows_into_aggregation(), 250.0);
        // The range is over a dictionary column of the dimension.
        assert!(profile.has_string_range_filter);
    }

    #[test]
    fn integer_ranges_do_not_trigger_the_string_flag() {
        let catalog = catalog();
        let dim = RelNode::scan("dim", &["id", "brand"]).filter(Expr::col(0).between(1, 5));
        let plan = RelNode::scan("fact", &["k", "v"])
            .hash_join(dim, 0, 0, &[])
            .reduce(vec![AggSpec::count()], &["c"]);
        let (profile, rows) = profile_plan(&plan, &catalog, &unit_config()).unwrap();
        assert!(!profile.has_string_range_filter);
        assert_eq!(rows.len(), 1);
        // No explicit fact filter: all fact rows reach the join.
        assert_eq!(profile.rows_after_filter, 1000.0);
    }
}
