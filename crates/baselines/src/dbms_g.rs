//! DBMS G: the operator-at-a-time GPU baseline.
//!
//! §6 characterizes DBMS G as a JIT, columnar, multi-GPU engine whose
//! evaluation behaviour differs from Proteus GPU in specific ways, each of
//! which this stand-in models explicitly:
//!
//! * **Register pressure / occupancy** — "every thread block that DBMS G
//!   triggers allocates double the number of GPU registers than Proteus GPU",
//!   so its kernels run at roughly half occupancy
//!   ([`hetex_gpu_sim::OccupancyModel`]).
//! * **Star joins as array lookups, filters after the join** — dimension
//!   tables are treated as dense arrays and "DBMS G also opts to apply
//!   filtering predicates after the completion of the star join", so every
//!   fact row pays the join's random accesses regardless of selectivity.
//! * **Operator-at-a-time materialization** — intermediate vectors are written
//!   to and re-read from device memory between kernels.
//! * **Co-partitioned, GPU-resident inputs** — each GPU processes its half of
//!   the fact table with no cross-GPU traffic (observed in §6.1).
//! * **Pageable transfers** — for non-resident working sets "DBMS G places the
//!   dataset into pageable memory, which limits the achievable transfer
//!   bandwidth to less than half of the available".
//! * **Failure modes** — Q2.2's string inequality is unsupported, and Q4.3 at
//!   SF1000 "fails to perform a cardinality estimation that is required to
//!   execute the query, due to insufficient GPU memory"; we model the latter
//!   as a limit on the estimated group-by cardinality of 4-join queries over
//!   non-resident data.

use crate::profile::profile_plan;
use crate::BaselineOutcome;
use hetex_common::config::DataPlacement;
use hetex_common::{EngineConfig, HetError, Result};
use hetex_core::RelNode;
use hetex_gpu_sim::OccupancyModel;
use hetex_storage::Catalog;
use hetex_topology::{DeviceProfile, ServerTopology, SimTime};
use std::sync::Arc;

/// Pageable-memory transfer efficiency relative to pinned DMA (§6.2: "less
/// than half of the available" bandwidth).
const PAGEABLE_EFFICIENCY: f64 = 0.45;

/// Limit on the product of the group-by key domains above which the
/// cardinality-estimation step of a 4-join query no longer fits device memory
/// alongside a streamed working set (Q4.3 groups on s_city x p_brand1, a
/// 250 x 1000-value domain; Q4.2 groups on low-cardinality attributes).
const CARDINALITY_ESTIMATION_LIMIT: f64 = 100_000.0;

/// Fixed per-query overhead (plan compilation, kernel graph setup).
const QUERY_OVERHEAD: SimTime = SimTime::from_millis(30);

/// The operator-at-a-time GPU baseline.
#[derive(Debug, Clone)]
pub struct DbmsG {
    gpus: usize,
    placement: DataPlacement,
}

impl DbmsG {
    /// A DBMS G instance using `gpus` GPUs with the given data placement.
    pub fn new(topology: Arc<ServerTopology>, gpus: usize, placement: DataPlacement) -> Self {
        let available = topology.gpus().len();
        drop(topology);
        Self { gpus: gpus.clamp(1, available.max(1)), placement }
    }

    /// Number of GPUs used.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Execute a query: exact rows, modeled time, or the failure modes the
    /// paper reports.
    pub fn execute(
        &self,
        plan: &RelNode,
        catalog: &Catalog,
        config: &EngineConfig,
    ) -> Result<BaselineOutcome> {
        let (profile, rows) = profile_plan(plan, catalog, config)?;

        // Failure mode 1: string inequalities (Q2.2).
        if profile.has_string_range_filter {
            return Err(HetError::Unsupported(
                "DBMS G cannot execute string inequality predicates (Q2.2)".into(),
            ));
        }
        // Failure mode 2: cardinality estimation for wide 4-join group-bys
        // over non-resident data (Q4.3 at SF1000).
        if self.placement == DataPlacement::CpuResident
            && profile.joins >= 4
            && profile.group_domain_product > CARDINALITY_ESTIMATION_LIMIT
        {
            return Err(HetError::Memory(
                "DBMS G: cardinality estimation does not fit in device memory (Q4.3)".into(),
            ));
        }

        let gpu_full = DeviceProfile::paper_gpu(0, hetex_common::MemoryNodeId::new(2));
        let occupancy = OccupancyModel::new().occupancy(OccupancyModel::DBMS_G_REGISTERS);
        let gpu = gpu_full.with_occupancy(occupancy);
        let gpus = self.gpus as f64;

        // Per-GPU share of the (weighted) fact table; co-partitioned inputs,
        // no cross-GPU traffic.
        let fact_bytes = profile.fact_bytes / gpus;
        let fact_rows = profile.fact_rows / gpus;

        // Star join via dense-array lookups: every fact row probes every
        // dimension array (filters are applied after the join).
        let random_bytes = fact_rows * profile.joins as f64 * 8.0;

        // Operator-at-a-time materialization between kernels: one intermediate
        // vector write + read per operator (joins + filters + aggregation).
        let operators = (profile.joins + 2) as f64;
        let materialized = fact_rows * 8.0 * 2.0 * operators;

        let seq_seconds = (fact_bytes + materialized) / (gpu.seq_bandwidth_gbps * 1e9);
        let random_seconds = random_bytes / (gpu.random_bandwidth_gbps * 1e9);
        let compute_seconds = seq_seconds + random_seconds;

        // Transfers: only when the working set is not GPU resident, and then
        // through pageable memory.
        let transfer_seconds = match self.placement {
            DataPlacement::GpuResident => 0.0,
            DataPlacement::CpuResident => {
                let pcie_per_gpu = 12.0 * PAGEABLE_EFFICIENCY;
                (profile.fact_bytes + profile.dim_bytes) / gpus / (pcie_per_gpu * 1e9)
            }
        };

        // Transfers and kernels overlap imperfectly in an operator-at-a-time
        // engine; the slower of the two dominates.
        let total = compute_seconds.max(transfer_seconds);
        Ok(BaselineOutcome {
            rows,
            sim_time: SimTime::from_secs_f64(total).add_nanos(QUERY_OVERHEAD.as_nanos()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{ColumnData, DataType, DictionaryBuilder, MemoryNodeId};
    use hetex_jit::{AggSpec, Expr};
    use hetex_storage::TableBuilder;

    fn setup(rows: usize) -> (Arc<ServerTopology>, Catalog) {
        let topology = ServerTopology::paper_server();
        let catalog = Catalog::new();
        let nodes = vec![MemoryNodeId::new(0), MemoryNodeId::new(1)];
        let dict = std::sync::Arc::new(DictionaryBuilder::from_domain(["X1", "X2", "X3"]));
        catalog.register(
            TableBuilder::new("fact")
                .column(
                    "k",
                    DataType::Int32,
                    ColumnData::Int32((0..rows as i32).map(|i| i % 50).collect()),
                )
                .column("v", DataType::Int64, ColumnData::Int64((0..rows as i64).collect()))
                .build(&nodes, 1 << 16)
                .unwrap(),
        );
        catalog.register(
            TableBuilder::new("dim")
                .column("id", DataType::Int32, ColumnData::Int32((0..50).collect()))
                .dict_column("tag", (0..50).map(|i| i % 3).collect(), dict)
                .build(&nodes, 1 << 16)
                .unwrap(),
        );
        (topology, catalog)
    }

    fn weighted(w: f64) -> EngineConfig {
        EngineConfig { scale_weight: w, ..EngineConfig::default() }
    }

    fn join_plan() -> RelNode {
        let dim = RelNode::scan("dim", &["id", "tag"]).filter(Expr::col(1).eq(Expr::lit(1)));
        RelNode::scan("fact", &["k", "v"])
            .hash_join(dim, 0, 0, &[])
            .reduce(vec![AggSpec::sum(Expr::col(1))], &["s"])
    }

    #[test]
    fn results_match_reference_and_resident_data_avoids_transfers() {
        let (topology, catalog) = setup(50_000);
        let resident = DbmsG::new(Arc::clone(&topology), 2, DataPlacement::GpuResident);
        let streamed = DbmsG::new(topology, 2, DataPlacement::CpuResident);
        let a = resident.execute(&join_plan(), &catalog, &weighted(100.0)).unwrap();
        let b = streamed.execute(&join_plan(), &catalog, &weighted(100.0)).unwrap();
        assert_eq!(a.rows, b.rows);
        assert!(
            b.sim_time > a.sim_time,
            "streaming over pageable PCIe must be slower than GPU-resident data"
        );
    }

    #[test]
    fn string_ranges_are_rejected() {
        let (topology, catalog) = setup(1_000);
        let dbms = DbmsG::new(topology, 2, DataPlacement::GpuResident);
        let dim = RelNode::scan("dim", &["id", "tag"]).filter(Expr::col(1).between(0, 1));
        let plan = RelNode::scan("fact", &["k", "v"])
            .hash_join(dim, 0, 0, &[])
            .reduce(vec![AggSpec::count()], &["c"]);
        let err = dbms.execute(&plan, &catalog, &weighted(1.0)).unwrap_err();
        assert_eq!(err.category(), "unsupported");
    }

    #[test]
    fn two_gpus_are_faster_than_one() {
        let (topology, catalog) = setup(50_000);
        let one = DbmsG::new(Arc::clone(&topology), 1, DataPlacement::GpuResident)
            .execute(&join_plan(), &catalog, &weighted(1_000.0))
            .unwrap();
        let two = DbmsG::new(topology, 2, DataPlacement::GpuResident)
            .execute(&join_plan(), &catalog, &weighted(1_000.0))
            .unwrap();
        assert!(two.sim_time < one.sim_time);
    }

    #[test]
    fn wide_four_join_groupbys_fail_only_when_streaming() {
        let (topology, catalog) = setup(20_000);
        // Build an artificial 4-join plan grouping on dictionary-encoded
        // dimension attributes whose combined domain is large.
        let big_dict = std::sync::Arc::new(DictionaryBuilder::from_domain(
            (0..1000).map(|i| format!("V{i:04}")),
        ));
        catalog.register(
            TableBuilder::new("bigdim")
                .column("id", DataType::Int32, ColumnData::Int32((0..50).collect()))
                .dict_column("label", (0..50).collect(), big_dict)
                .build(&[MemoryNodeId::new(0)], 1 << 16)
                .unwrap(),
        );
        let mut plan = RelNode::scan("fact", &["k", "v"]);
        for _ in 0..3 {
            let dim = RelNode::scan("dim", &["id", "tag"]);
            plan = plan.hash_join(dim, 0, 0, &[]);
        }
        // Fourth join appends two wide-domain dictionary columns (1000 x 1000).
        let bigdim = RelNode::scan("bigdim", &["id", "label"]);
        plan = plan.hash_join(bigdim, 0, 0, &[1]);
        let bigdim2 = RelNode::scan("bigdim", &["id", "label"]);
        plan = plan.hash_join(bigdim2, 0, 0, &[1]);
        let plan = plan.group_by(&[2, 3], vec![AggSpec::count()], &["l1", "l2", "c"]);
        let streamed = DbmsG::new(Arc::clone(&topology), 2, DataPlacement::CpuResident);
        let resident = DbmsG::new(topology, 2, DataPlacement::GpuResident);
        assert_eq!(
            streamed.execute(&plan, &catalog, &weighted(1.0)).unwrap_err().category(),
            "memory"
        );
        assert!(resident.execute(&plan, &catalog, &weighted(1.0)).is_ok());
    }
}
