//! Simulated time and resource clocks.
//!
//! [`SimTime`] is a nanosecond-granularity timestamp on the simulated
//! timeline. A [`ResourceClock`] is the availability time of one exclusive
//! resource (a CPU core worker, a GPU, a PCIe link, a DRAM channel group):
//! occupying the resource for a duration pushes its clock forward, and work
//! that depends on an input produced at time `t` cannot start before `t`.
//!
//! Clocks are shared between OS threads (the functional execution really is
//! multi-threaded), so reservations are serialized with a small mutex.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A point on the simulated timeline, in nanoseconds since query start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since query start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since query start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since query start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a duration in nanoseconds.
    pub fn add_nanos(self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }

    /// The later of two timestamps.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// The availability clock of one exclusive simulated resource.
///
/// `reserve(not_before, duration)` models occupying the resource for
/// `duration` nanoseconds, starting no earlier than `not_before` (typically the
/// `ready_at` of the input block) and no earlier than the time the resource
/// frees up. It returns the completion time. This is the whole scheduling
/// discipline of the simulator: FIFO per resource, work-conserving.
#[derive(Debug, Clone, Default)]
pub struct ResourceClock {
    inner: Arc<Mutex<u64>>,
    label: Arc<str>,
}

impl ResourceClock {
    /// A clock at time zero with a diagnostic label.
    pub fn new(label: impl Into<String>) -> Self {
        Self { inner: Arc::new(Mutex::new(0)), label: Arc::from(label.into()) }
    }

    /// Diagnostic label (e.g. `"pcie:socket0-gpu0"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Current availability time of the resource.
    pub fn now(&self) -> SimTime {
        SimTime(*self.inner.lock())
    }

    /// Occupy the resource for `duration_ns`, starting at
    /// `max(now, not_before)`. Returns `(start, end)`.
    pub fn reserve(&self, not_before: SimTime, duration_ns: u64) -> (SimTime, SimTime) {
        let mut clock = self.inner.lock();
        let start = (*clock).max(not_before.0);
        let end = start.saturating_add(duration_ns);
        *clock = end;
        (SimTime(start), SimTime(end))
    }

    /// Advance the clock to at least `t` without accounting any work (used for
    /// barrier-like waits, e.g. a GPU waiting for a build phase to finish).
    pub fn advance_to(&self, t: SimTime) {
        let mut clock = self.inner.lock();
        if t.0 > *clock {
            *clock = t.0;
        }
    }

    /// Reset to time zero (used between benchmark runs).
    pub fn reset(&self) {
        *self.inner.lock() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_nanos(7).add_nanos(3), SimTime(10));
        assert_eq!(SimTime(5).max(SimTime(9)), SimTime(9));
    }

    #[test]
    fn reserve_is_fifo_and_work_conserving() {
        let clock = ResourceClock::new("core0");
        let (s1, e1) = clock.reserve(SimTime::ZERO, 100);
        assert_eq!(s1, SimTime(0));
        assert_eq!(e1, SimTime(100));
        // Second reservation starts when the first ends even if its input was
        // ready earlier.
        let (s2, e2) = clock.reserve(SimTime(10), 50);
        assert_eq!(s2, SimTime(100));
        assert_eq!(e2, SimTime(150));
        // A reservation whose input is ready later than the clock starts at
        // the input's ready time (the resource idles).
        let (s3, e3) = clock.reserve(SimTime(500), 10);
        assert_eq!(s3, SimTime(500));
        assert_eq!(e3, SimTime(510));
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let clock = ResourceClock::new("gpu0");
        clock.advance_to(SimTime(100));
        assert_eq!(clock.now(), SimTime(100));
        clock.advance_to(SimTime(50));
        assert_eq!(clock.now(), SimTime(100));
        clock.reset();
        assert_eq!(clock.now(), SimTime::ZERO);
    }

    #[test]
    fn clocks_are_shared_between_clones() {
        let clock = ResourceClock::new("link");
        let clone = clock.clone();
        clock.reserve(SimTime::ZERO, 42);
        assert_eq!(clone.now(), SimTime(42));
        assert_eq!(clone.label(), "link");
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        use std::thread;
        let clock = ResourceClock::new("core");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = clock.clone();
                thread::spawn(move || {
                    let mut spans = Vec::new();
                    for _ in 0..100 {
                        spans.push(c.reserve(SimTime::ZERO, 10));
                    }
                    spans
                })
            })
            .collect();
        let mut all: Vec<(SimTime, SimTime)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort();
        // Total occupancy equals the sum of durations: no two reservations overlap.
        assert_eq!(clock.now(), SimTime(8 * 100 * 10));
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping reservations {w:?}");
        }
    }
}
