//! Interconnect links between memory nodes.
//!
//! The paper's server connects each GPU to its socket with a dedicated PCIe
//! 3.0 x16 link (~12 GB/s measured) and the two sockets with QPI. Transfers
//! between two memory nodes traverse one or more links; the DMA engine
//! reserves time on every link of the route, so a transfer that crosses the
//! QPI *and* a PCIe link is limited by the slower of the two and contends with
//! any other traffic using either link.

use std::fmt;

/// Identifier of an interconnect link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Construct from a raw index.
    pub const fn new(raw: usize) -> Self {
        LinkId(raw)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// The technology of a link, which determines its default characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// PCIe 3.0 x16 between a socket and a GPU (~12 GB/s measured, §6).
    Pcie3x16,
    /// Inter-socket link (QPI/UPI).
    InterSocket,
    /// A PCIe switch shared by several GPUs on the same socket (§2.1 mentions
    /// that switched GPUs share bandwidth; the paper's server does not use
    /// switches but the topology builder supports them).
    PcieSwitch,
}

impl LinkKind {
    /// Default bandwidth for the link kind, GB/s.
    pub fn default_bandwidth_gbps(self) -> f64 {
        match self {
            LinkKind::Pcie3x16 => 12.0,
            LinkKind::InterSocket => 30.0,
            LinkKind::PcieSwitch => 12.0,
        }
    }

    /// Default latency for one transfer on this link, nanoseconds.
    pub fn default_latency_ns(self) -> u64 {
        match self {
            LinkKind::Pcie3x16 => 10_000,
            LinkKind::InterSocket => 500,
            LinkKind::PcieSwitch => 12_000,
        }
    }
}

/// Description of one interconnect link between two endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Identifier of the link.
    pub id: LinkId,
    /// Technology of the link.
    pub kind: LinkKind,
    /// Human-readable endpoints, e.g. `"socket0"` and `"gpu0"`.
    pub from: String,
    pub to: String,
    /// Usable bandwidth, GB/s, per direction.
    pub bandwidth_gbps: f64,
    /// Fixed latency added to every transfer, nanoseconds.
    pub latency_ns: u64,
}

impl LinkSpec {
    /// A link of the given kind with default characteristics.
    pub fn new(id: LinkId, kind: LinkKind, from: impl Into<String>, to: impl Into<String>) -> Self {
        Self {
            id,
            kind,
            from: from.into(),
            to: to.into(),
            bandwidth_gbps: kind.default_bandwidth_gbps(),
            latency_ns: kind.default_latency_ns(),
        }
    }

    /// Override the bandwidth (used for what-if topologies and tests).
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.bandwidth_gbps = gbps;
        self
    }

    /// Time to move `bytes` over this link, ignoring queueing.
    pub fn transfer_ns(&self, bytes: f64) -> u64 {
        let seconds = bytes / (self.bandwidth_gbps * 1e9);
        self.latency_ns + (seconds * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_defaults_match_paper_measurements() {
        assert!((LinkKind::Pcie3x16.default_bandwidth_gbps() - 12.0).abs() < f64::EPSILON);
        assert!(
            LinkKind::InterSocket.default_bandwidth_gbps()
                > LinkKind::Pcie3x16.default_bandwidth_gbps()
        );
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = LinkSpec::new(LinkId::new(0), LinkKind::Pcie3x16, "socket0", "gpu0");
        let one_gb = link.transfer_ns(1e9);
        let two_gb = link.transfer_ns(2e9);
        // 1 GB over 12 GB/s ≈ 83 ms.
        assert!(one_gb > 80_000_000 && one_gb < 90_000_000);
        assert!(two_gb > 2 * one_gb - link.latency_ns - 1);
    }

    #[test]
    fn bandwidth_override() {
        let link = LinkSpec::new(LinkId::new(1), LinkKind::Pcie3x16, "a", "b").with_bandwidth(6.0);
        assert!(
            link.transfer_ns(1e9)
                > LinkSpec::new(LinkId::new(1), LinkKind::Pcie3x16, "a", "b").transfer_ns(1e9)
        );
    }

    #[test]
    fn display_ids() {
        assert_eq!(LinkId::new(2).to_string(), "link2");
    }
}
