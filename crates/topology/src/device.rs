//! Device descriptions: CPU cores and GPUs.
//!
//! A [`DeviceProfile`] captures the performance characteristics the cost model
//! needs: sequential and random memory bandwidth, per-tuple compute
//! throughput, SIMT width, kernel launch latency, and the memory node the
//! device is attached to. The default profiles (`DeviceProfile::paper_cpu_core`
//! and `DeviceProfile::paper_gpu`) are calibrated to the server described in
//! §6 of the paper (two 12-core Xeon E5-2650L v3 sockets at 1.8 GHz, two
//! NVIDIA GTX 1080 GPUs, PCIe 3.0 x16 measured at ~12 GB/s per link,
//! ~90.6 GB/s aggregate DRAM bandwidth).

use hetex_common::MemoryNodeId;
use std::fmt;

/// Identifier of an execution device. CPU *cores* and GPUs are both devices:
/// the unit that HetExchange pins a pipeline instance to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// Construct from a raw index.
    pub const fn new(raw: usize) -> Self {
        DeviceId(raw)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// The kind of an execution device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// One CPU core (task parallelism: many cores, one thread each).
    CpuCore,
    /// One GPU (data parallelism: one device, thousands of SIMT threads).
    Gpu,
}

impl DeviceKind {
    /// Short label used in plan rendering and bench output.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::CpuCore => "cpu",
            DeviceKind::Gpu => "gpu",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Performance profile of an execution device, used by the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// CPU core or GPU.
    pub kind: DeviceKind,
    /// Which CPU socket the device belongs to / is attached to.
    pub socket: usize,
    /// Memory node holding the device's local memory.
    pub local_memory: MemoryNodeId,
    /// Sequential scan bandwidth achievable by this single device, GB/s.
    /// For a CPU core this is the per-core limit (a few GB/s); the socket-wide
    /// DRAM limit is enforced separately by the memory-node resource clock.
    pub seq_bandwidth_gbps: f64,
    /// Effective bandwidth for dependent random accesses (hash probes), GB/s.
    pub random_bandwidth_gbps: f64,
    /// Simple-operation throughput (predicates, arithmetic, hashing), in
    /// billions of operations per second for the whole device.
    pub compute_gops: f64,
    /// Number of SIMT lanes that execute in lock-step (1 for a CPU core,
    /// 32 for a GPU warp). Used by the occupancy model and the GPU provider.
    pub simt_width: usize,
    /// Hardware threads the device runs concurrently (1 per CPU core;
    /// thousands for a GPU). Informational, used for occupancy accounting.
    pub hw_threads: usize,
    /// Fixed overhead of launching a kernel / spawning a task on this device.
    pub launch_overhead_ns: u64,
    /// Cost of one device-scoped atomic update, nanoseconds.
    pub atomic_ns: f64,
    /// Capacity of the device's local memory in bytes.
    pub memory_capacity: u64,
    /// Runtime slowdown multiplier applied when *charging* work to this
    /// device's clock, but deliberately **not** consulted by routing-time
    /// cost estimates. `1.0` (the default) models a healthy device; larger
    /// values model a straggler — thermal throttling, contention from a
    /// co-tenant, a degraded link — that a static cost model cannot predict.
    /// This is the knob the work-stealing benchmarks use to create a skewed
    /// instance the router keeps feeding at its nominal rate.
    pub exec_slowdown: f64,
}

impl DeviceProfile {
    /// Profile of one core of the paper's Xeon E5-2650L v3 (1.8 GHz).
    ///
    /// Calibration: the sum microbenchmark (Fig. 7 top) saturates at
    /// ~89.7 GB/s with ≥16 cores, i.e. ~5.6 GB/s per core before the socket
    /// limit kicks in; hash-probe-heavy queries scale worse (65–77 % per-core
    /// coefficient, §6.3), captured by the much lower random bandwidth.
    pub fn paper_cpu_core(socket: usize, local_memory: MemoryNodeId) -> Self {
        Self {
            kind: DeviceKind::CpuCore,
            socket,
            local_memory,
            seq_bandwidth_gbps: 5.6,
            random_bandwidth_gbps: 0.85,
            compute_gops: 5.0,
            simt_width: 1,
            hw_threads: 1,
            launch_overhead_ns: 20_000,
            atomic_ns: 20.0,
            memory_capacity: 128 * (1 << 30),
            exec_slowdown: 1.0,
        }
    }

    /// Profile of one NVIDIA GTX 1080 as described in §2.1/§6.1: ~320 GB/s
    /// device-memory bandwidth, 8 GB of memory, massive SIMT parallelism that
    /// hides random-access latency far better than a CPU core.
    pub fn paper_gpu(socket: usize, local_memory: MemoryNodeId) -> Self {
        Self {
            kind: DeviceKind::Gpu,
            socket,
            local_memory,
            seq_bandwidth_gbps: 320.0,
            random_bandwidth_gbps: 48.0,
            compute_gops: 80.0,
            simt_width: 32,
            hw_threads: 2560,
            launch_overhead_ns: 12_000,
            atomic_ns: 2.0,
            memory_capacity: 8 * (1 << 30),
            exec_slowdown: 1.0,
        }
    }

    /// True if the device is a GPU.
    pub fn is_gpu(&self) -> bool {
        self.kind == DeviceKind::Gpu
    }

    /// Derive a profile with reduced effective parallelism, used to model
    /// DBMS G's doubled register pressure (§6.1: "every thread block that
    /// DBMS G triggers allocates double the number of GPU registers, thus
    /// launches fewer simultaneous execution units").
    pub fn with_occupancy(&self, occupancy: f64) -> Self {
        let occupancy = occupancy.clamp(0.05, 1.0);
        Self {
            seq_bandwidth_gbps: self.seq_bandwidth_gbps * occupancy.sqrt(),
            random_bandwidth_gbps: self.random_bandwidth_gbps * occupancy,
            compute_gops: self.compute_gops * occupancy,
            hw_threads: ((self.hw_threads as f64) * occupancy) as usize,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_display() {
        assert_eq!(DeviceId::new(3).to_string(), "dev3");
        assert_eq!(DeviceId::new(3).index(), 3);
        assert_eq!(DeviceKind::Gpu.to_string(), "gpu");
    }

    #[test]
    fn paper_profiles_have_expected_shape() {
        let cpu = DeviceProfile::paper_cpu_core(0, MemoryNodeId::new(0));
        let gpu = DeviceProfile::paper_gpu(1, MemoryNodeId::new(3));
        assert!(!cpu.is_gpu());
        assert!(gpu.is_gpu());
        // GPUs have an order of magnitude more local bandwidth than one core.
        assert!(gpu.seq_bandwidth_gbps > 10.0 * cpu.seq_bandwidth_gbps);
        // GPUs hide random access latency better.
        assert!(gpu.random_bandwidth_gbps > 10.0 * cpu.random_bandwidth_gbps);
        assert_eq!(cpu.simt_width, 1);
        assert_eq!(gpu.simt_width, 32);
    }

    #[test]
    fn sixteen_cores_saturate_paper_dram() {
        let cpu = DeviceProfile::paper_cpu_core(0, MemoryNodeId::new(0));
        let sixteen_cores = 16.0 * cpu.seq_bandwidth_gbps;
        // §6.4: the sum query reaches 89.7 GB/s at ~16 cores.
        assert!(sixteen_cores > 85.0 && sixteen_cores < 95.0);
    }

    #[test]
    fn occupancy_reduces_throughput_monotonically() {
        let gpu = DeviceProfile::paper_gpu(0, MemoryNodeId::new(2));
        let half = gpu.with_occupancy(0.5);
        assert!(half.random_bandwidth_gbps < gpu.random_bandwidth_gbps);
        assert!(half.seq_bandwidth_gbps < gpu.seq_bandwidth_gbps);
        assert!(half.compute_gops < gpu.compute_gops);
        // Clamped below.
        let tiny = gpu.with_occupancy(0.0);
        assert!(tiny.compute_gops > 0.0);
    }
}
