//! Memory node descriptions.
//!
//! A memory node is one physically distinct pool of memory with its own
//! bandwidth: the DRAM attached to a CPU socket, or the device memory of one
//! GPU. Memory nodes are shared resources — a socket's DRAM bandwidth is
//! divided among the cores scanning from it — so each node also carries a
//! resource clock in the assembled [`crate::topology::ServerTopology`].

use hetex_common::MemoryNodeId;

/// The kind of memory behind a memory node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryNodeKind {
    /// Socket-local DRAM, reachable by every CPU core (remotely via QPI) and
    /// by GPUs via PCIe DMA.
    CpuDram,
    /// GPU device memory (GDDR/HBM), only directly addressable by its GPU.
    GpuDevice,
}

/// Description of one memory node.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryNodeSpec {
    /// Identifier of the node.
    pub id: MemoryNodeId,
    /// DRAM or GPU device memory.
    pub kind: MemoryNodeKind,
    /// Which socket the node belongs to (for DRAM) or is attached to (GPU).
    pub socket: usize,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Aggregate bandwidth of the node in GB/s, shared by all readers/writers.
    pub bandwidth_gbps: f64,
}

impl MemoryNodeSpec {
    /// DRAM node of the paper's server: 128 GB per socket, ~45.3 GB/s each
    /// (the paper measures 90.6 GB/s aggregate with 8/12 channels populated).
    pub fn paper_cpu_dram(id: MemoryNodeId, socket: usize) -> Self {
        Self {
            id,
            kind: MemoryNodeKind::CpuDram,
            socket,
            capacity: 128 * (1 << 30),
            bandwidth_gbps: 45.3,
        }
    }

    /// GPU device memory node: 8 GB, 320 GB/s (GTX 1080).
    pub fn paper_gpu_device(id: MemoryNodeId, socket: usize) -> Self {
        Self {
            id,
            kind: MemoryNodeKind::GpuDevice,
            socket,
            capacity: 8 * (1 << 30),
            bandwidth_gbps: 320.0,
        }
    }

    /// True for GPU device memory.
    pub fn is_gpu_memory(&self) -> bool {
        self.kind == MemoryNodeKind::GpuDevice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_nodes_match_hardware_description() {
        let dram = MemoryNodeSpec::paper_cpu_dram(MemoryNodeId::new(0), 0);
        let gmem = MemoryNodeSpec::paper_gpu_device(MemoryNodeId::new(2), 0);
        assert!(!dram.is_gpu_memory());
        assert!(gmem.is_gpu_memory());
        assert_eq!(dram.capacity, 128 * (1 << 30));
        assert_eq!(gmem.capacity, 8 * (1 << 30));
        // The two DRAM nodes together provide the measured ~90.6 GB/s.
        assert!((2.0 * dram.bandwidth_gbps - 90.6).abs() < 0.1);
        // GPU memory is far faster than socket DRAM.
        assert!(gmem.bandwidth_gbps > 5.0 * dram.bandwidth_gbps);
    }
}
