//! Pipeline affinities.
//!
//! §4.2 of the paper: every pipeline instance carries *both* a CPU affinity and
//! a GPU affinity, inherited from the router that instantiated it; only the
//! affinity matching the pipeline's device type is used, but carrying both lets
//! a router control the placement of pipelines that sit beyond several device
//! crossings (e.g. the bottom router pins pipeline 7 even though pipelines 8–10
//! cross devices twice in between).

use crate::device::{DeviceId, DeviceKind};
use std::fmt;

/// A (CPU core, GPU) affinity pair assigned to a pipeline instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Affinity {
    /// CPU core the instance is pinned to, if any.
    pub cpu_core: Option<DeviceId>,
    /// GPU the instance is pinned to, if any.
    pub gpu: Option<DeviceId>,
}

impl Affinity {
    /// Affinity with both devices set.
    pub fn new(cpu_core: Option<DeviceId>, gpu: Option<DeviceId>) -> Self {
        Self { cpu_core, gpu }
    }

    /// Affinity pinned to a CPU core only.
    pub fn cpu(core: DeviceId) -> Self {
        Self { cpu_core: Some(core), gpu: None }
    }

    /// Affinity pinned to a GPU only.
    pub fn gpu(gpu: DeviceId) -> Self {
        Self { cpu_core: None, gpu: Some(gpu) }
    }

    /// The device to use for a pipeline of the given kind, per §4.2: "assigning
    /// both a CPU and GPU affinity to all pipelines, but using only the
    /// appropriate one".
    pub fn for_kind(&self, kind: DeviceKind) -> Option<DeviceId> {
        match kind {
            DeviceKind::CpuCore => self.cpu_core,
            DeviceKind::Gpu => self.gpu,
        }
    }

    /// Inherit the missing halves from the instantiating pipeline's affinity
    /// ("HetExchange forces pipelines to inherit both the degree of parallelism
    /// and the affinity of their instantiator").
    pub fn inherit_from(&self, parent: &Affinity) -> Affinity {
        Affinity { cpu_core: self.cpu_core.or(parent.cpu_core), gpu: self.gpu.or(parent.gpu) }
    }
}

impl fmt::Display for Affinity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.cpu_core, self.gpu) {
            (Some(c), Some(g)) => write!(f, "cpu:{} gpu:{}", c.index(), g.index()),
            (Some(c), None) => write!(f, "cpu:{}", c.index()),
            (None, Some(g)) => write!(f, "gpu:{}", g.index()),
            (None, None) => f.write_str("unpinned"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_kind_selects_matching_device() {
        let a = Affinity::new(Some(DeviceId::new(1)), Some(DeviceId::new(24)));
        assert_eq!(a.for_kind(DeviceKind::CpuCore), Some(DeviceId::new(1)));
        assert_eq!(a.for_kind(DeviceKind::Gpu), Some(DeviceId::new(24)));
        assert_eq!(Affinity::cpu(DeviceId::new(3)).for_kind(DeviceKind::Gpu), None);
    }

    #[test]
    fn inherit_fills_missing_halves_only() {
        let parent = Affinity::new(Some(DeviceId::new(4)), Some(DeviceId::new(25)));
        let child = Affinity::gpu(DeviceId::new(24));
        let inherited = child.inherit_from(&parent);
        // The explicitly set GPU wins; the CPU half is inherited.
        assert_eq!(inherited.gpu, Some(DeviceId::new(24)));
        assert_eq!(inherited.cpu_core, Some(DeviceId::new(4)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Affinity::default().to_string(), "unpinned");
        assert_eq!(Affinity::cpu(DeviceId::new(2)).to_string(), "cpu:2");
        assert_eq!(
            Affinity::new(Some(DeviceId::new(1)), Some(DeviceId::new(24))).to_string(),
            "cpu:1 gpu:24"
        );
    }
}
