//! The topology micro-probe: measured constants for the cost model.
//!
//! PR 4's control-plane term charged a hard-coded 700 ns per remote queue
//! push ("QPI-calibrated"), and transfer estimates priced links at their
//! *declared* widths. Both are declarations, not measurements — exactly the
//! kind of nominal figure the calibration subsystem exists to replace. This
//! module runs a short micro-probe at engine construction and derives a
//! [`CalibratedConstants`] from what the simulated hardware actually
//! delivers:
//!
//! * **Control plane** — a remote queue push acquires the queue's mutex
//!   across the inter-socket interconnect: the lock's cache lines bounce
//!   between the sockets, one round trip per acquisition. The probe
//!   ping-pongs a cache line over each inter-socket link
//!   [`CONTROL_PROBE_ROUNDS`] times on a scratch [`ResourceClock`] and
//!   reports the mean measured round trip of the *slowest* such link (the
//!   conservative bound a multi-socket clique pays). A topology without
//!   inter-socket links (single socket) measures zero: there is no
//!   interconnect for the lock line to cross.
//! * **Per-link bandwidth** — the probe schedules one [`BANDWIDTH_PROBE_BYTES`]
//!   transfer per link on a scratch clock and reports the *effective* rate
//!   `bytes / elapsed`, which folds the link's fixed latency into the figure
//!   (a 12 GB/s-declared PCIe link with 10 µs setup measures ~11.99 GB/s at
//!   probe size). Estimates built on the measured rate need no separate
//!   latency term — it is already amortized in.
//!
//! The probe runs entirely against scratch clocks: it never touches the
//! topology's own memory/link clocks, so probing is invisible to any
//! execution's simulated time.

use crate::clock::{ResourceClock, SimTime};
use crate::interconnect::{LinkId, LinkKind, LinkSpec};
use crate::topology::ServerTopology;

/// Cache line size assumed for the control-plane ping-pong, bytes.
pub const CACHE_LINE_BYTES: f64 = 64.0;

/// Round trips of the control-plane ping-pong per inter-socket link. Enough
/// repetitions that integer rounding of the per-round reservation does not
/// bias the mean; small enough that probing stays effectively free.
pub const CONTROL_PROBE_ROUNDS: u64 = 16;

/// Bytes of the per-link bandwidth probe. Large enough that the measured
/// effective rate approaches the link's sustained bandwidth (latency
/// amortized below 0.1%), matching the block-stream transfers the estimates
/// price.
pub const BANDWIDTH_PROBE_BYTES: f64 = 256.0 * 1024.0 * 1024.0;

/// Constants measured by [`probe`]: what the cost model should charge for
/// control-plane traffic and interconnect transfers on *this* topology.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedConstants {
    /// Measured cost of one remote queue-mutex acquisition: the mean
    /// cache-line round trip over the slowest inter-socket link, in
    /// nanoseconds. Zero on single-socket topologies (no interconnect to
    /// cross).
    pub control_plane_ns: u64,
    /// Measured effective bandwidth per link, GB/s, indexed by
    /// [`LinkId`]. Always covers every link of the probed topology.
    pub link_gbps: Vec<f64>,
}

impl CalibratedConstants {
    /// Measured effective bandwidth of `link`, GB/s, if the link was probed.
    pub fn link_bandwidth_gbps(&self, link: LinkId) -> Option<f64> {
        self.link_gbps.get(link.index()).copied()
    }

    /// Time to move `bytes` over `link` at its *measured* effective rate.
    /// No separate latency term: the effective rate amortizes the link's
    /// fixed setup cost (that is what makes it a measurement rather than a
    /// restatement of the declared width). Falls back to the declared
    /// [`LinkSpec::transfer_ns`] for links this probe never saw.
    pub fn transfer_ns(&self, link: &LinkSpec, bytes: f64) -> u64 {
        match self.link_bandwidth_gbps(link.id) {
            Some(gbps) if gbps > 0.0 => (bytes / (gbps * 1e9) * 1e9) as u64,
            _ => link.transfer_ns(bytes),
        }
    }
}

/// Run the micro-probe against `topology` (see the module docs for the
/// protocol). Cheap — a few dozen scratch-clock reservations — and free of
/// side effects on the topology's own clocks.
pub fn probe(topology: &ServerTopology) -> CalibratedConstants {
    // Control plane: cache-line ping-pong over each inter-socket link.
    let mut control_plane_ns = 0u64;
    for link in topology.links().iter().filter(|l| l.kind == LinkKind::InterSocket) {
        let clock = ResourceClock::new(format!("probe:ctl:{}-{}", link.from, link.to));
        for _ in 0..CONTROL_PROBE_ROUNDS {
            // Request the line, then receive it: two traversals per round.
            clock.reserve(SimTime::ZERO, link.transfer_ns(CACHE_LINE_BYTES));
            clock.reserve(SimTime::ZERO, link.transfer_ns(CACHE_LINE_BYTES));
        }
        control_plane_ns = control_plane_ns.max(clock.now().as_nanos() / CONTROL_PROBE_ROUNDS);
    }

    // Per-link effective bandwidth: one large transfer per link.
    let link_gbps = topology
        .links()
        .iter()
        .map(|link| {
            let clock = ResourceClock::new(format!("probe:bw:{}-{}", link.from, link.to));
            let (_, end) = clock.reserve(SimTime::ZERO, link.transfer_ns(BANDWIDTH_PROBE_BYTES));
            let elapsed_ns = end.as_nanos().max(1);
            // bytes / ns == GB/s.
            BANDWIDTH_PROBE_BYTES / elapsed_ns as f64
        })
        .collect();

    CalibratedConstants { control_plane_ns, link_gbps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use hetex_common::MemoryNodeId;

    #[test]
    fn paper_server_probe_measures_all_links_and_the_interconnect() {
        let topology = ServerTopology::paper_server();
        let constants = probe(&topology);
        // One measured rate per link (1 QPI + 2 PCIe).
        assert_eq!(constants.link_gbps.len(), topology.links().len());
        for (idx, link) in topology.links().iter().enumerate() {
            let measured = constants.link_gbps[idx];
            // The effective rate sits just below the declared width (the
            // fixed latency is real) but within 1% at probe size.
            assert!(
                measured < link.bandwidth_gbps && measured > link.bandwidth_gbps * 0.99,
                "link {idx}: measured {measured} vs declared {}",
                link.bandwidth_gbps
            );
        }
        // The inter-socket round trip is two traversals of a ~500 ns link:
        // strictly more than the one-way QPI latency, and measured (not the
        // 700 ns PR 4 default).
        assert!(constants.control_plane_ns > 500, "{}", constants.control_plane_ns);
        assert!(constants.control_plane_ns < 2_500, "{}", constants.control_plane_ns);
    }

    #[test]
    fn single_socket_topologies_measure_zero_control_plane() {
        let mut b = TopologyBuilder::new();
        b.add_socket(4).add_gpu(0);
        let topology = b.build().unwrap();
        let constants = probe(&topology);
        assert_eq!(constants.control_plane_ns, 0);
        assert_eq!(constants.link_gbps.len(), 1);
    }

    #[test]
    fn probing_leaves_the_topology_clocks_untouched() {
        let topology = ServerTopology::paper_server();
        let _ = probe(&topology);
        for link in topology.links() {
            assert_eq!(topology.link_clock(link.id).unwrap().now(), SimTime::ZERO);
        }
        assert_eq!(topology.memory_clock(MemoryNodeId::new(0)).unwrap().now(), SimTime::ZERO);
    }

    #[test]
    fn measured_transfer_amortizes_latency_into_the_rate() {
        let topology = ServerTopology::paper_server();
        let constants = probe(&topology);
        let pcie = topology
            .links()
            .iter()
            .find(|l| l.kind == LinkKind::Pcie3x16)
            .expect("paper server has PCIe links");
        // At probe size, measured and declared agree within a percent…
        let declared = pcie.transfer_ns(BANDWIDTH_PROBE_BYTES);
        let measured = constants.transfer_ns(pcie, BANDWIDTH_PROBE_BYTES);
        let diff = measured.abs_diff(declared);
        assert!(diff < declared / 100, "measured {measured} vs declared {declared}");
        // …while a small transfer pays no per-transfer setup under the
        // effective-rate model (the rate already amortizes it).
        assert!(constants.transfer_ns(pcie, 4096.0) < pcie.transfer_ns(4096.0));
        // Unprobed links fall back to the declared model.
        let unknown = LinkSpec::new(LinkId::new(99), LinkKind::Pcie3x16, "a", "b");
        assert_eq!(constants.transfer_ns(&unknown, 4096.0), unknown.transfer_ns(4096.0));
        // A respecting-the-custom-width topology measures the custom width.
        let mut b = TopologyBuilder::new();
        b.add_socket(2).add_gpu(0).pcie_bandwidth_gbps(6.0);
        let narrow = probe(&b.build().unwrap());
        assert!(narrow.link_gbps[0] < 6.0 && narrow.link_gbps[0] > 5.9, "{:?}", narrow.link_gbps);
    }
}
