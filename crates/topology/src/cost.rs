//! The work/cost model.
//!
//! Compiled pipelines record *what they did* to each block — bytes scanned,
//! bytes materialized, random probes, simple operations, atomic updates,
//! kernel launches — into a [`WorkProfile`]. The [`CostModel`] then converts a
//! work profile into simulated nanoseconds for a particular
//! [`DeviceProfile`]. Splitting recording from pricing keeps relational
//! operators device-agnostic (the same blueprint property the paper's device
//! providers give the generated code) and lets the benchmark harness re-price
//! the same execution under different hardware assumptions.

use crate::device::DeviceProfile;

/// Work performed while processing one block (or one morsel) of input.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkProfile {
    /// Bytes read sequentially from the device's local memory.
    pub bytes_scanned: f64,
    /// Bytes written sequentially (materialized intermediates, packed blocks).
    pub bytes_written: f64,
    /// Bytes touched by dependent random accesses (hash-table probes/builds).
    pub random_bytes: f64,
    /// Number of tuples processed.
    pub tuples: f64,
    /// Simple operations (comparisons, arithmetic, hashing) executed.
    pub ops: f64,
    /// Device-scoped atomic updates performed.
    pub atomics: f64,
    /// Kernels launched / tasks spawned on the device.
    pub kernel_launches: u64,
}

impl WorkProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sequential scan of `bytes`.
    pub fn scan(mut self, bytes: f64) -> Self {
        self.bytes_scanned += bytes;
        self
    }

    /// Record a sequential materialization of `bytes`.
    pub fn write(mut self, bytes: f64) -> Self {
        self.bytes_written += bytes;
        self
    }

    /// Record `bytes` of dependent random accesses.
    pub fn random(mut self, bytes: f64) -> Self {
        self.random_bytes += bytes;
        self
    }

    /// Record `n` tuples each performing `ops_per_tuple` simple operations.
    pub fn compute(mut self, n: f64, ops_per_tuple: f64) -> Self {
        self.tuples += n;
        self.ops += n * ops_per_tuple;
        self
    }

    /// Record `n` atomic updates.
    pub fn atomic(mut self, n: f64) -> Self {
        self.atomics += n;
        self
    }

    /// Record a kernel launch / task spawn.
    pub fn launch(mut self) -> Self {
        self.kernel_launches += 1;
        self
    }

    /// Accumulate another profile into this one.
    pub fn merge(&mut self, other: &WorkProfile) {
        self.bytes_scanned += other.bytes_scanned;
        self.bytes_written += other.bytes_written;
        self.random_bytes += other.random_bytes;
        self.tuples += other.tuples;
        self.ops += other.ops;
        self.atomics += other.atomics;
        self.kernel_launches += other.kernel_launches;
    }

    /// Multiply every component by `factor` (used by the scale-extrapolating
    /// benchmark harness: a physically small fact table modelling SF1000).
    pub fn scaled(&self, factor: f64) -> WorkProfile {
        WorkProfile {
            bytes_scanned: self.bytes_scanned * factor,
            bytes_written: self.bytes_written * factor,
            random_bytes: self.random_bytes * factor,
            tuples: self.tuples * factor,
            ops: self.ops * factor,
            atomics: self.atomics * factor,
            kernel_launches: self.kernel_launches,
        }
    }

    /// Bytes of pressure this work puts on the shared local memory node
    /// (sequential traffic plus a fraction of random traffic, since random
    /// probes use a fraction of each cache line fetched).
    pub fn memory_node_bytes(&self) -> f64 {
        self.bytes_scanned + self.bytes_written + self.random_bytes
    }

    /// True if the profile records no work at all.
    pub fn is_empty(&self) -> bool {
        self.bytes_scanned == 0.0
            && self.bytes_written == 0.0
            && self.random_bytes == 0.0
            && self.ops == 0.0
            && self.atomics == 0.0
            && self.kernel_launches == 0
    }
}

/// Converts work profiles into simulated time for a device.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel;

impl CostModel {
    /// Create the default cost model.
    pub fn new() -> Self {
        CostModel
    }

    /// Time in simulated nanoseconds for `work` on a device with `profile`.
    ///
    /// Memory time and compute time overlap (out-of-order CPUs / latency-hiding
    /// GPUs), so the busy time is their maximum; fixed overheads (atomics
    /// serialized on shared state, kernel launches) are added on top.
    pub fn time_ns(&self, work: &WorkProfile, profile: &DeviceProfile) -> u64 {
        let seq_seconds =
            (work.bytes_scanned + work.bytes_written) / (profile.seq_bandwidth_gbps * 1e9);
        let random_seconds = work.random_bytes / (profile.random_bandwidth_gbps * 1e9);
        let memory_seconds = seq_seconds + random_seconds;
        let compute_seconds = work.ops / (profile.compute_gops * 1e9);
        let busy_seconds = memory_seconds.max(compute_seconds);
        let overhead_ns = work.atomics * profile.atomic_ns
            + (work.kernel_launches as f64) * (profile.launch_overhead_ns as f64);
        (busy_seconds * 1e9 + overhead_ns).round() as u64
    }

    /// Effective throughput in GB/s that the device achieves on `work`
    /// (weighted bytes divided by modeled time). Used by the bench harness to
    /// report the throughput numbers quoted in §6.2/§6.4.
    pub fn throughput_gbps(&self, work: &WorkProfile, profile: &DeviceProfile) -> f64 {
        let ns = self.time_ns(work, profile);
        if ns == 0 {
            return 0.0;
        }
        work.bytes_scanned / (ns as f64 / 1e9) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::MemoryNodeId;

    fn cpu() -> DeviceProfile {
        DeviceProfile::paper_cpu_core(0, MemoryNodeId::new(0))
    }

    fn gpu() -> DeviceProfile {
        DeviceProfile::paper_gpu(0, MemoryNodeId::new(2))
    }

    #[test]
    fn builder_accumulates_components() {
        let w = WorkProfile::new()
            .scan(100.0)
            .write(50.0)
            .random(25.0)
            .compute(10.0, 3.0)
            .atomic(2.0)
            .launch();
        assert_eq!(w.bytes_scanned, 100.0);
        assert_eq!(w.bytes_written, 50.0);
        assert_eq!(w.random_bytes, 25.0);
        assert_eq!(w.tuples, 10.0);
        assert_eq!(w.ops, 30.0);
        assert_eq!(w.atomics, 2.0);
        assert_eq!(w.kernel_launches, 1);
        assert_eq!(w.memory_node_bytes(), 175.0);
        assert!(!w.is_empty());
        assert!(WorkProfile::new().is_empty());
    }

    #[test]
    fn merge_and_scale() {
        let mut a = WorkProfile::new().scan(10.0).compute(5.0, 1.0);
        let b = WorkProfile::new().scan(20.0).atomic(1.0).launch();
        a.merge(&b);
        assert_eq!(a.bytes_scanned, 30.0);
        assert_eq!(a.kernel_launches, 1);
        let s = a.scaled(10.0);
        assert_eq!(s.bytes_scanned, 300.0);
        assert_eq!(s.ops, 50.0);
        // Launches are fixed overheads and are not scaled.
        assert_eq!(s.kernel_launches, 1);
    }

    #[test]
    fn sequential_scan_faster_on_gpu_than_single_core() {
        let work = WorkProfile::new().scan(1e9).compute(250e6, 2.0);
        let model = CostModel::new();
        let cpu_ns = model.time_ns(&work, &cpu());
        let gpu_ns = model.time_ns(&work, &gpu());
        assert!(gpu_ns < cpu_ns / 20, "gpu {gpu_ns} vs cpu {cpu_ns}");
    }

    #[test]
    fn random_probes_penalize_cpu_more() {
        let work = WorkProfile::new().random(1e8).compute(1e7, 4.0);
        let model = CostModel::new();
        let cpu_ns = model.time_ns(&work, &cpu());
        let gpu_ns = model.time_ns(&work, &gpu());
        // §6.4: the join query is GPU-friendly because random accesses impact
        // the CPU side more.
        assert!(cpu_ns as f64 / gpu_ns as f64 > 20.0);
    }

    #[test]
    fn kernel_launch_overhead_is_charged() {
        let model = CostModel::new();
        let no_launch = WorkProfile::new().scan(1e6);
        let with_launch = WorkProfile::new().scan(1e6).launch();
        let g = gpu();
        assert_eq!(
            model.time_ns(&with_launch, &g) - model.time_ns(&no_launch, &g),
            g.launch_overhead_ns
        );
    }

    #[test]
    fn single_core_scan_throughput_matches_calibration() {
        let model = CostModel::new();
        let work = WorkProfile::new().scan(1e9);
        let gbps = model.throughput_gbps(&work, &cpu());
        assert!((gbps - 5.6).abs() < 0.1, "throughput {gbps}");
    }
}
