//! # hetex-topology
//!
//! A model of the heterogeneous server the paper evaluates on: CPU sockets with
//! NUMA-local DRAM, GPUs with device memory, and the PCIe/QPI interconnects
//! between them — plus the machinery that turns that model into *simulated
//! execution times*.
//!
//! The paper's experiments run on two 12-core Xeon sockets with one NVIDIA
//! GTX 1080 per socket. We do not have that hardware (nor any GPU), so this
//! crate substitutes it with a **resource-clock simulation** (see `DESIGN.md`
//! §2 and §4):
//!
//! * every execution context (a CPU core worker, a GPU) owns a monotone
//!   [`clock::ResourceClock`];
//! * every shared resource (a DRAM channel group, a PCIe link, the QPI link)
//!   owns one too;
//! * processing a block advances the worker's clock by the cost the
//!   [`cost`] model assigns to the recorded [`cost::WorkProfile`], and also
//!   advances the clocks of the shared resources the work consumed;
//! * DMA transfers advance the link clocks along the route between memory
//!   nodes and stamp the produced block handle with its completion time.
//!
//! Query simulated time is simply the largest completion timestamp observed at
//! the root of the plan, so pipelining, transfer/compute overlap, PCIe
//! saturation and DRAM saturation all emerge from the clocks rather than being
//! hard-coded.

pub mod affinity;
pub mod clock;
pub mod cost;
pub mod device;
pub mod fault;
pub mod interconnect;
pub mod memory;
pub mod probe;
pub mod topology;
pub mod transfer;

pub use affinity::Affinity;
pub use clock::{ResourceClock, SimTime};
pub use cost::{CostModel, WorkProfile};
pub use device::{DeviceId, DeviceKind, DeviceProfile};
pub use fault::{ArenaBurst, DeviceFault, FaultPlan};
pub use interconnect::{LinkId, LinkKind, LinkSpec};
pub use memory::MemoryNodeSpec;
pub use probe::CalibratedConstants;
pub use topology::{ServerTopology, TopologyBuilder};
pub use transfer::{DmaEngine, TransferTicket};
