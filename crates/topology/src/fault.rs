//! Scripted fault injection.
//!
//! A [`FaultPlan`] is attached to a [`ServerTopology`](crate::ServerTopology)
//! at engine construction (like
//! [`with_device_slowdown`](crate::ServerTopology::with_device_slowdown)) and
//! describes *when* and *how* devices misbehave, in **simulated time**: the
//! executor consults the plan against its device clocks, so a run's fault
//! schedule is perfectly reproducible — no wall-clock randomness, no timers.
//!
//! The taxonomy mirrors what a heterogeneous fleet actually sees:
//!
//! * [`DeviceFault::PermanentAbort`] — the device dies at sim-time `at` and
//!   never comes back (a GPU falling off the bus, an Xid error);
//! * [`DeviceFault::TransientWindow`] — kernel invocations fail with
//!   probability `probability` while the device clock is inside
//!   `[from, until)` (recoverable launch errors, ECC hiccups, co-tenant
//!   interference). Failures are drawn from a deterministic hash of
//!   `(seed, device, invocation)`, so the same plan always fails the same
//!   invocations;
//! * [`DeviceFault::Wedge`] — the device's worker stops making progress at
//!   sim-time `at` without reporting an error (a hung kernel, a lost
//!   interrupt). Only a watchdog can see this one;
//! * [`ArenaBurst`] — a co-tenant burst-allocates `bytes` of a staging arena
//!   for a sim-time window, exhausting it for the query under test.

use crate::clock::SimTime;
use crate::device::DeviceId;
use hetex_common::MemoryNodeId;

/// One scripted misbehaviour of a single device.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceFault {
    /// The device aborts permanently once its clock reaches `at`.
    PermanentAbort {
        /// Sim-time of the abort.
        at: SimTime,
    },
    /// Kernel invocations fail transiently with probability `probability`
    /// while the device clock is inside `[from, until)`.
    TransientWindow {
        /// Start of the failure window (inclusive).
        from: SimTime,
        /// End of the failure window (exclusive).
        until: SimTime,
        /// Per-invocation failure probability in `[0, 1]`.
        probability: f64,
        /// Seed of the deterministic per-invocation failure draw.
        seed: u64,
    },
    /// The device's worker silently stops making progress at `at`.
    Wedge {
        /// Sim-time at which the worker wedges.
        at: SimTime,
    },
}

/// A co-tenant burst allocation against one staging arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaBurst {
    /// The memory node whose staging arena is burst-allocated.
    pub node: MemoryNodeId,
    /// Bytes the burst tries to hold (clamped to what is free at onset).
    pub bytes: u64,
    /// Start of the burst window (inclusive).
    pub from: SimTime,
    /// End of the burst window (exclusive).
    pub until: SimTime,
}

/// A reproducible schedule of device faults and arena bursts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    device_faults: Vec<(DeviceId, DeviceFault)>,
    arena_bursts: Vec<ArenaBurst>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.device_faults.is_empty() && self.arena_bursts.is_empty()
    }

    /// Script `device` to abort permanently at sim-time `at`.
    pub fn abort_device(mut self, device: DeviceId, at: SimTime) -> Self {
        self.device_faults.push((device, DeviceFault::PermanentAbort { at }));
        self
    }

    /// Script `device` to fail kernel invocations with probability
    /// `probability` while its clock is inside `[from, until)`, drawn
    /// deterministically from `seed`.
    pub fn transient_window(
        mut self,
        device: DeviceId,
        from: SimTime,
        until: SimTime,
        probability: f64,
        seed: u64,
    ) -> Self {
        self.device_faults.push((
            device,
            DeviceFault::TransientWindow {
                from,
                until,
                probability: probability.clamp(0.0, 1.0),
                seed,
            },
        ));
        self
    }

    /// Script `device`'s worker to wedge (stop progressing) at sim-time `at`.
    pub fn wedge_worker(mut self, device: DeviceId, at: SimTime) -> Self {
        self.device_faults.push((device, DeviceFault::Wedge { at }));
        self
    }

    /// Script a co-tenant burst of `bytes` against `node`'s staging arena
    /// for the sim-time window `[from, until)`.
    pub fn arena_burst(
        mut self,
        node: MemoryNodeId,
        bytes: u64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.arena_bursts.push(ArenaBurst { node, bytes, from, until });
        self
    }

    /// All scripted device faults.
    pub fn device_faults(&self) -> &[(DeviceId, DeviceFault)] {
        &self.device_faults
    }

    /// All scripted arena bursts.
    pub fn arena_bursts(&self) -> &[ArenaBurst] {
        &self.arena_bursts
    }

    /// True when any fault targets `device` (whatever its onset time).
    pub fn targets_device(&self, device: DeviceId) -> bool {
        self.device_faults.iter().any(|(d, _)| *d == device)
    }

    /// Sim-time at which `device` aborts permanently, if scripted. Multiple
    /// aborts collapse to the earliest.
    pub fn abort_at(&self, device: DeviceId) -> Option<SimTime> {
        self.device_faults
            .iter()
            .filter_map(|(d, f)| match f {
                DeviceFault::PermanentAbort { at } if *d == device => Some(*at),
                _ => None,
            })
            .min()
    }

    /// Sim-time at which `device`'s worker wedges, if scripted. Multiple
    /// wedges collapse to the earliest.
    pub fn wedge_at(&self, device: DeviceId) -> Option<SimTime> {
        self.device_faults
            .iter()
            .filter_map(|(d, f)| match f {
                DeviceFault::Wedge { at } if *d == device => Some(*at),
                _ => None,
            })
            .min()
    }

    /// Whether the `invocation`-th kernel invocation on `device`, with the
    /// device clock at `now`, fails transiently. Deterministic in
    /// `(seed, device, invocation)`: replaying the same plan fails the same
    /// invocations.
    pub fn transient_failure(&self, device: DeviceId, now: SimTime, invocation: u64) -> bool {
        self.device_faults.iter().any(|(d, f)| match f {
            DeviceFault::TransientWindow { from, until, probability, seed }
                if *d == device && now >= *from && now < *until =>
            {
                let draw = splitmix64(
                    seed.wrapping_add(
                        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(device.index() as u64 + 1),
                    )
                    .wrapping_add(invocation.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
                );
                // Map the top 53 bits to [0, 1).
                let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
                unit < *probability
            }
            _ => false,
        })
    }
}

/// SplitMix64 finalizer — a tiny, well-mixed, dependency-free hash used for
/// the deterministic transient-failure draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.abort_at(DeviceId::new(0)).is_none());
        assert!(plan.wedge_at(DeviceId::new(0)).is_none());
        assert!(!plan.transient_failure(DeviceId::new(0), SimTime::from_nanos(5), 0));
        assert!(!plan.targets_device(DeviceId::new(0)));
    }

    #[test]
    fn abort_and_wedge_report_earliest_onset() {
        let dev = DeviceId::new(2);
        let plan = FaultPlan::new()
            .abort_device(dev, SimTime::from_nanos(500))
            .abort_device(dev, SimTime::from_nanos(100))
            .wedge_worker(dev, SimTime::from_nanos(300));
        assert!(!plan.is_empty());
        assert!(plan.targets_device(dev));
        assert_eq!(plan.abort_at(dev), Some(SimTime::from_nanos(100)));
        assert_eq!(plan.wedge_at(dev), Some(SimTime::from_nanos(300)));
        assert!(plan.abort_at(DeviceId::new(3)).is_none());
    }

    #[test]
    fn transient_window_is_deterministic_and_bounded() {
        let dev = DeviceId::new(1);
        let plan = FaultPlan::new().transient_window(
            dev,
            SimTime::from_nanos(100),
            SimTime::from_nanos(200),
            0.5,
            42,
        );
        // Outside the window: never fails.
        assert!(!plan.transient_failure(dev, SimTime::from_nanos(99), 7));
        assert!(!plan.transient_failure(dev, SimTime::from_nanos(200), 7));
        // Wrong device: never fails.
        assert!(!plan.transient_failure(DeviceId::new(0), SimTime::from_nanos(150), 7));
        // Inside the window: deterministic per invocation, and at p=0.5 over
        // 1000 invocations both outcomes occur with a sane ratio.
        let now = SimTime::from_nanos(150);
        let fails: Vec<bool> = (0..1000).map(|i| plan.transient_failure(dev, now, i)).collect();
        let again: Vec<bool> = (0..1000).map(|i| plan.transient_failure(dev, now, i)).collect();
        assert_eq!(fails, again, "same (seed, device, invocation) must draw the same outcome");
        let n_fail = fails.iter().filter(|&&f| f).count();
        assert!((300..700).contains(&n_fail), "p=0.5 drew {n_fail}/1000 failures");
        // Probability extremes behave.
        let never = FaultPlan::new().transient_window(
            dev,
            SimTime::ZERO,
            SimTime::from_nanos(1000),
            0.0,
            1,
        );
        assert!((0..100).all(|i| !never.transient_failure(dev, now, i)));
        let always = FaultPlan::new().transient_window(
            dev,
            SimTime::ZERO,
            SimTime::from_nanos(1000),
            1.0,
            1,
        );
        assert!((0..100).all(|i| always.transient_failure(dev, now, i)));
    }

    #[test]
    fn different_seeds_draw_different_schedules() {
        let dev = DeviceId::new(0);
        let now = SimTime::from_nanos(50);
        let a =
            FaultPlan::new().transient_window(dev, SimTime::ZERO, SimTime::from_nanos(100), 0.5, 1);
        let b =
            FaultPlan::new().transient_window(dev, SimTime::ZERO, SimTime::from_nanos(100), 0.5, 2);
        let draws_a: Vec<bool> = (0..64).map(|i| a.transient_failure(dev, now, i)).collect();
        let draws_b: Vec<bool> = (0..64).map(|i| b.transient_failure(dev, now, i)).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn arena_bursts_are_recorded() {
        let plan = FaultPlan::new().arena_burst(
            MemoryNodeId::new(1),
            4096,
            SimTime::from_nanos(10),
            SimTime::from_nanos(90),
        );
        assert_eq!(plan.arena_bursts().len(), 1);
        let burst = &plan.arena_bursts()[0];
        assert_eq!(burst.node, MemoryNodeId::new(1));
        assert_eq!(burst.bytes, 4096);
        assert!(burst.from < burst.until);
    }
}
