//! The DMA engine: simulated asynchronous data transfers between memory nodes.
//!
//! The mem-move operator (in `hetex-core`) asks the [`DmaEngine`] to move a
//! block's bytes from its current memory node to a destination node. The
//! engine looks up the route in the topology, reserves time on every link of
//! the route (so concurrent transfers over the same PCIe link queue behind
//! each other, and a transfer crossing QPI + PCIe is limited by both), and
//! returns a [`TransferTicket`] carrying the simulated completion time. The
//! caller stamps that time into the produced block handle's `ready_at_ns`,
//! which is exactly how the paper's mem-move tells its consumer which transfer
//! to wait for.

use crate::clock::SimTime;
use crate::topology::ServerTopology;
use hetex_common::{MemoryNodeId, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// Outcome of scheduling one simulated DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferTicket {
    /// When the transfer was issued (input data ready and producer done).
    pub issued_at: SimTime,
    /// When the data is fully resident on the destination node.
    pub completes_at: SimTime,
    /// Whether any data actually moved (false when source == destination and
    /// mem-move only forwarded the handle).
    pub moved: bool,
}

impl TransferTicket {
    /// A ticket for a no-op "transfer" (data already local).
    pub fn already_local(at: SimTime) -> Self {
        Self { issued_at: at, completes_at: at, moved: false }
    }

    /// Transfer latency in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.completes_at.as_nanos() - self.issued_at.as_nanos()
    }
}

/// Statistics accumulated by a DMA engine over a query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    /// Number of transfers that actually moved data.
    pub transfers: u64,
    /// Total bytes moved (weighted bytes, i.e. after scale extrapolation).
    pub bytes_moved: f64,
    /// Number of requests that were satisfied without moving data.
    pub forwarded: u64,
}

/// Simulated DMA engine bound to a server topology.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    topology: Arc<ServerTopology>,
    stats: Arc<Mutex<TransferStats>>,
}

impl DmaEngine {
    /// Create a DMA engine for the given topology.
    pub fn new(topology: Arc<ServerTopology>) -> Self {
        Self { topology, stats: Arc::new(Mutex::new(TransferStats::default())) }
    }

    /// The topology this engine schedules on.
    pub fn topology(&self) -> &Arc<ServerTopology> {
        &self.topology
    }

    /// Schedule moving `bytes` from `from` to `to`, with the source data
    /// becoming available at `ready`. Returns the completion ticket.
    pub fn schedule(
        &self,
        bytes: f64,
        from: MemoryNodeId,
        to: MemoryNodeId,
        ready: SimTime,
    ) -> Result<TransferTicket> {
        if from == to {
            self.stats.lock().forwarded += 1;
            return Ok(TransferTicket::already_local(ready));
        }
        let route = self.topology.route(from, to)?;
        let mut cursor = ready;
        for link_id in route {
            let link = self.topology.link(link_id)?;
            let duration = link.transfer_ns(bytes);
            let clock = self.topology.link_clock(link_id)?;
            let (_, end) = clock.reserve(cursor, duration);
            cursor = end;
        }
        let mut stats = self.stats.lock();
        stats.transfers += 1;
        stats.bytes_moved += bytes;
        Ok(TransferTicket { issued_at: ready, completes_at: cursor, moved: true })
    }

    /// Schedule a broadcast of the same `bytes` from `from` to every node in
    /// `targets`. Returns one ticket per target, in the same order. This is
    /// the multicast primitive §3.2 assigns to mem-move.
    pub fn schedule_broadcast(
        &self,
        bytes: f64,
        from: MemoryNodeId,
        targets: &[MemoryNodeId],
        ready: SimTime,
    ) -> Result<Vec<TransferTicket>> {
        targets.iter().map(|&t| self.schedule(bytes, from, t, ready)).collect()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> TransferStats {
        *self.stats.lock()
    }

    /// Reset statistics (the link clocks are reset via the topology).
    pub fn reset_stats(&self) {
        *self.stats.lock() = TransferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ServerTopology;

    fn engine() -> DmaEngine {
        DmaEngine::new(ServerTopology::paper_server())
    }

    #[test]
    fn local_requests_are_forwarded_without_cost() {
        let e = engine();
        let t = e.schedule(1e9, MemoryNodeId::new(0), MemoryNodeId::new(0), SimTime(5)).unwrap();
        assert!(!t.moved);
        assert_eq!(t.completes_at, SimTime(5));
        assert_eq!(e.stats().forwarded, 1);
        assert_eq!(e.stats().transfers, 0);
    }

    #[test]
    fn pcie_transfer_takes_bytes_over_bandwidth() {
        let e = engine();
        // 1.2 GB over a 12 GB/s link ≈ 100 ms.
        let t =
            e.schedule(1.2e9, MemoryNodeId::new(0), MemoryNodeId::new(2), SimTime::ZERO).unwrap();
        assert!(t.moved);
        let ms = t.duration_ns() as f64 / 1e6;
        assert!(ms > 95.0 && ms < 110.0, "duration {ms} ms");
    }

    #[test]
    fn concurrent_transfers_on_one_link_serialize() {
        let e = engine();
        let a =
            e.schedule(1.2e9, MemoryNodeId::new(0), MemoryNodeId::new(2), SimTime::ZERO).unwrap();
        let b =
            e.schedule(1.2e9, MemoryNodeId::new(0), MemoryNodeId::new(2), SimTime::ZERO).unwrap();
        // The second transfer queues behind the first on the same PCIe link.
        assert!(b.completes_at > a.completes_at);
        assert!(b.completes_at.as_nanos() >= 2 * a.duration_ns());
    }

    #[test]
    fn transfers_on_different_links_overlap() {
        let e = engine();
        let a =
            e.schedule(1.2e9, MemoryNodeId::new(0), MemoryNodeId::new(2), SimTime::ZERO).unwrap();
        // Socket 1 DRAM to GPU 1 uses the other PCIe link.
        let b =
            e.schedule(1.2e9, MemoryNodeId::new(1), MemoryNodeId::new(3), SimTime::ZERO).unwrap();
        let diff = a.completes_at.as_nanos().abs_diff(b.completes_at.as_nanos());
        assert!(diff < a.duration_ns() / 10, "links should not contend");
    }

    #[test]
    fn cross_socket_transfer_is_slower_than_local() {
        let e = engine();
        let local =
            e.schedule(1e9, MemoryNodeId::new(0), MemoryNodeId::new(2), SimTime::ZERO).unwrap();
        e.topology().reset_clocks();
        let remote =
            e.schedule(1e9, MemoryNodeId::new(1), MemoryNodeId::new(2), SimTime::ZERO).unwrap();
        assert!(remote.duration_ns() > local.duration_ns());
    }

    #[test]
    fn broadcast_produces_one_ticket_per_target() {
        let e = engine();
        let targets = [MemoryNodeId::new(2), MemoryNodeId::new(3)];
        let tickets =
            e.schedule_broadcast(5e8, MemoryNodeId::new(0), &targets, SimTime::ZERO).unwrap();
        assert_eq!(tickets.len(), 2);
        assert!(tickets.iter().all(|t| t.moved));
        assert_eq!(e.stats().transfers, 2);
        assert!((e.stats().bytes_moved - 1e9).abs() < 1.0);
    }

    #[test]
    fn ready_time_delays_transfer_start() {
        let e = engine();
        let t = e
            .schedule(1e6, MemoryNodeId::new(0), MemoryNodeId::new(2), SimTime::from_millis(50))
            .unwrap();
        assert!(t.completes_at >= SimTime::from_millis(50));
        assert_eq!(t.issued_at, SimTime::from_millis(50));
    }
}
