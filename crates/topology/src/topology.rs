//! The assembled server topology.
//!
//! [`ServerTopology`] ties together memory nodes, devices (CPU cores and GPUs),
//! interconnect links and the routing table between memory nodes, and owns the
//! resource clocks for the shared resources (memory nodes and links). It is
//! built either with [`TopologyBuilder`] or with [`ServerTopology::paper_server`],
//! which reproduces the machine of §6: two 12-core sockets, 128 GB DRAM each,
//! one GTX 1080 per socket on a dedicated PCIe 3.0 x16 link.

use crate::clock::ResourceClock;
use crate::device::{DeviceId, DeviceKind, DeviceProfile};
use crate::fault::FaultPlan;
use crate::interconnect::{LinkId, LinkKind, LinkSpec};
use crate::memory::{MemoryNodeKind, MemoryNodeSpec};
use hetex_common::{HetError, MemoryNodeId, Result};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A complete description of a heterogeneous server.
#[derive(Debug, Clone)]
pub struct ServerTopology {
    memory_nodes: Vec<MemoryNodeSpec>,
    devices: Vec<DeviceProfile>,
    links: Vec<LinkSpec>,
    /// Route (ordered list of links) between every ordered pair of distinct
    /// memory nodes that can exchange data.
    routes: HashMap<(MemoryNodeId, MemoryNodeId), Vec<LinkId>>,
    /// Availability clocks of the shared memory-node bandwidth.
    memory_clocks: Vec<ResourceClock>,
    /// Availability clocks of the interconnect links.
    link_clocks: Vec<ResourceClock>,
    sockets: usize,
    /// Scripted fault schedule consulted by the executor, if any.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Devices excluded from placement (lost in an earlier execution
    /// attempt). They keep their [`DeviceId`]s — profiles, local memory and
    /// routes stay addressable — but the placement accessors ([`Self::gpus`],
    /// [`Self::cpu_cores`], [`Self::cpu_cores_interleaved`]) no longer offer
    /// them, so a degraded re-plan lands only on survivors.
    excluded: HashSet<DeviceId>,
}

impl ServerTopology {
    /// The server used in the paper's evaluation (§6): 2 sockets × 12 cores,
    /// 128 GB DRAM per socket, one GTX 1080 (8 GB, 320 GB/s) per socket behind
    /// a dedicated ~12 GB/s PCIe 3.0 x16 link, sockets joined by QPI.
    pub fn paper_server() -> Arc<ServerTopology> {
        Self::custom_server(2, 12, 1)
    }

    /// A parameterized variant of the paper server: `sockets` sockets with
    /// `cores_per_socket` cores each and `gpus_per_socket` GPUs per socket.
    pub fn custom_server(
        sockets: usize,
        cores_per_socket: usize,
        gpus_per_socket: usize,
    ) -> Arc<ServerTopology> {
        let mut b = TopologyBuilder::new();
        for s in 0..sockets {
            b.add_socket(cores_per_socket);
            for _ in 0..gpus_per_socket {
                b.add_gpu(s);
            }
        }
        Arc::new(b.build().expect("paper-style topology is always valid"))
    }

    /// Number of CPU sockets.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// A copy of this topology with `device` marked as a runtime straggler:
    /// work charged to it takes `factor`× its modeled time, while routing-time
    /// cost estimates keep pricing the nominal profile (see
    /// [`DeviceProfile::exec_slowdown`]). The work-stealing benchmarks use
    /// this to build a deliberately skewed server whose imbalance the
    /// feedback router cannot predict — only absorb.
    pub fn with_device_slowdown(&self, device: DeviceId, factor: f64) -> Result<Arc<Self>> {
        let mut topology = self.clone();
        let profile = topology
            .devices
            .get_mut(device.index())
            .ok_or_else(|| HetError::UnknownDevice(format!("{device}")))?;
        profile.exec_slowdown = factor.max(f64::MIN_POSITIVE);
        Ok(Arc::new(topology))
    }

    /// A copy of this topology carrying a scripted [`FaultPlan`]. Like
    /// [`Self::with_device_slowdown`], the plan is attached at construction
    /// and consulted against sim clocks at run time, so the injected schedule
    /// is perfectly reproducible. Devices named by the plan must exist.
    pub fn with_fault_plan(&self, plan: FaultPlan) -> Result<Arc<Self>> {
        for (device, _) in plan.device_faults() {
            self.device(*device)?;
        }
        for burst in plan.arena_bursts() {
            self.memory_node(burst.node)?;
        }
        let mut topology = self.clone();
        topology.fault_plan = Some(Arc::new(plan));
        Ok(Arc::new(topology))
    }

    /// The scripted fault plan, if one is attached.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// A copy of this topology with `device` excluded from placement: its id,
    /// profile and routes stay addressable (in-flight bookkeeping keeps
    /// working), but [`Self::gpus`], [`Self::cpu_cores`] and
    /// [`Self::cpu_cores_interleaved`] stop offering it, so a re-plan lands
    /// only on surviving devices. Used by the engine's degraded restart after
    /// a [`hetex_common::HetError::DeviceLost`].
    pub fn with_device_excluded(&self, device: DeviceId) -> Result<Arc<Self>> {
        self.device(device)?;
        let mut topology = self.clone();
        topology.excluded.insert(device);
        Ok(Arc::new(topology))
    }

    /// A copy of this topology with fresh, zeroed, *private* memory-node and
    /// link clocks. Plain clones share clock state (a [`ResourceClock`] clone
    /// aliases its inner counter), so two executions simulating over the same
    /// topology copy would corrupt each other's time accounting. Concurrent
    /// query execution hands every query its own copy instead; a fresh clock
    /// is indistinguishable from a [`Self::reset_clocks`] one, so a single
    /// query behaves bit-identically on either.
    pub fn with_private_clocks(&self) -> Arc<Self> {
        let mut topology = self.clone();
        topology.memory_clocks = topology
            .memory_nodes
            .iter()
            .map(|m| ResourceClock::new(format!("mem:{}", m.id)))
            .collect();
        topology.link_clocks = topology
            .links
            .iter()
            .map(|l| ResourceClock::new(format!("link:{}-{}", l.from, l.to)))
            .collect();
        Arc::new(topology)
    }

    /// True when `device` has been excluded from placement.
    pub fn is_excluded(&self, device: DeviceId) -> bool {
        self.excluded.contains(&device)
    }

    /// Devices currently excluded from placement, in id order.
    pub fn excluded_devices(&self) -> Vec<DeviceId> {
        let mut out: Vec<DeviceId> = self.excluded.iter().copied().collect();
        out.sort();
        out
    }

    /// All memory nodes.
    pub fn memory_nodes(&self) -> &[MemoryNodeSpec] {
        &self.memory_nodes
    }

    /// Memory node by id.
    pub fn memory_node(&self, id: MemoryNodeId) -> Result<&MemoryNodeSpec> {
        self.memory_nodes
            .get(id.index())
            .ok_or_else(|| HetError::UnknownDevice(format!("memory node {id}")))
    }

    /// All devices; a [`DeviceId`] indexes into this slice.
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// Device profile by id.
    pub fn device(&self, id: DeviceId) -> Result<&DeviceProfile> {
        self.devices.get(id.index()).ok_or_else(|| HetError::UnknownDevice(format!("{id}")))
    }

    /// All CPU core device ids, in socket-interleaved order (core 0 of socket
    /// 0, core 0 of socket 1, core 1 of socket 0, …) — the order the paper
    /// uses when sweeping the number of cores in §6.3.
    pub fn cpu_cores_interleaved(&self) -> Vec<DeviceId> {
        let mut per_socket: Vec<Vec<DeviceId>> = vec![Vec::new(); self.sockets.max(1)];
        for (idx, dev) in self.devices.iter().enumerate() {
            if dev.kind == DeviceKind::CpuCore && !self.excluded.contains(&DeviceId::new(idx)) {
                per_socket[dev.socket].push(DeviceId::new(idx));
            }
        }
        let mut out = Vec::new();
        let max_len = per_socket.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..max_len {
            for socket in &per_socket {
                if let Some(id) = socket.get(i) {
                    out.push(*id);
                }
            }
        }
        out
    }

    /// All placeable GPU device ids (excluded devices omitted).
    pub fn gpus(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                d.kind == DeviceKind::Gpu && !self.excluded.contains(&DeviceId::new(*i))
            })
            .map(|(i, _)| DeviceId::new(i))
            .collect()
    }

    /// All placeable CPU core device ids in declaration order (excluded
    /// devices omitted).
    pub fn cpu_cores(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                d.kind == DeviceKind::CpuCore && !self.excluded.contains(&DeviceId::new(*i))
            })
            .map(|(i, _)| DeviceId::new(i))
            .collect()
    }

    /// Memory nodes backed by CPU DRAM.
    pub fn cpu_memory_nodes(&self) -> Vec<MemoryNodeId> {
        self.memory_nodes
            .iter()
            .filter(|m| m.kind == MemoryNodeKind::CpuDram)
            .map(|m| m.id)
            .collect()
    }

    /// Memory nodes backed by GPU device memory.
    pub fn gpu_memory_nodes(&self) -> Vec<MemoryNodeId> {
        self.memory_nodes
            .iter()
            .filter(|m| m.kind == MemoryNodeKind::GpuDevice)
            .map(|m| m.id)
            .collect()
    }

    /// The memory node local to a device.
    pub fn local_memory_of(&self, device: DeviceId) -> Result<MemoryNodeId> {
        Ok(self.device(device)?.local_memory)
    }

    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Link by id.
    pub fn link(&self, id: LinkId) -> Result<&LinkSpec> {
        self.links.get(id.index()).ok_or_else(|| HetError::UnknownDevice(format!("{id}")))
    }

    /// The route between two distinct memory nodes, as an ordered list of
    /// links. Same-node "routes" are empty.
    pub fn route(&self, from: MemoryNodeId, to: MemoryNodeId) -> Result<Vec<LinkId>> {
        if from == to {
            return Ok(Vec::new());
        }
        self.routes
            .get(&(from, to))
            .cloned()
            .ok_or_else(|| HetError::Transfer(format!("no route from {from} to {to}")))
    }

    /// Resource clock of a memory node's shared bandwidth.
    pub fn memory_clock(&self, id: MemoryNodeId) -> Result<&ResourceClock> {
        self.memory_clocks
            .get(id.index())
            .ok_or_else(|| HetError::UnknownDevice(format!("memory node {id}")))
    }

    /// Resource clock of an interconnect link.
    pub fn link_clock(&self, id: LinkId) -> Result<&ResourceClock> {
        self.link_clocks.get(id.index()).ok_or_else(|| HetError::UnknownDevice(format!("{id}")))
    }

    /// Reset all shared resource clocks to zero (between benchmark runs).
    pub fn reset_clocks(&self) {
        for c in &self.memory_clocks {
            c.reset();
        }
        for c in &self.link_clocks {
            c.reset();
        }
    }
}

/// Builder for [`ServerTopology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    sockets: Vec<usize>,
    gpus: Vec<usize>,
    custom_pcie_bandwidth: Option<f64>,
}

impl TopologyBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one CPU socket with the given number of cores (and its DRAM node).
    pub fn add_socket(&mut self, cores: usize) -> &mut Self {
        self.sockets.push(cores);
        self
    }

    /// Add one GPU attached to `socket` (with its device-memory node and a
    /// dedicated PCIe link).
    pub fn add_gpu(&mut self, socket: usize) -> &mut Self {
        self.gpus.push(socket);
        self
    }

    /// Override the PCIe link bandwidth for what-if topologies.
    pub fn pcie_bandwidth_gbps(&mut self, gbps: f64) -> &mut Self {
        self.custom_pcie_bandwidth = Some(gbps);
        self
    }

    /// Assemble the topology.
    pub fn build(&self) -> Result<ServerTopology> {
        if self.sockets.is_empty() {
            return Err(HetError::Config("topology needs at least one socket".into()));
        }
        for &s in &self.gpus {
            if s >= self.sockets.len() {
                return Err(HetError::Config(format!(
                    "GPU attached to socket {s}, but only {} sockets exist",
                    self.sockets.len()
                )));
            }
        }

        let n_sockets = self.sockets.len();
        let mut memory_nodes = Vec::new();
        let mut devices = Vec::new();
        let mut links = Vec::new();

        // DRAM node per socket, then CPU core devices.
        for (socket, &cores) in self.sockets.iter().enumerate() {
            let mem_id = MemoryNodeId::new(memory_nodes.len());
            memory_nodes.push(MemoryNodeSpec::paper_cpu_dram(mem_id, socket));
            for _ in 0..cores {
                devices.push(DeviceProfile::paper_cpu_core(socket, mem_id));
            }
        }

        // Inter-socket links (a clique; the paper server has just one pair).
        let mut socket_link: HashMap<(usize, usize), LinkId> = HashMap::new();
        for a in 0..n_sockets {
            for b in (a + 1)..n_sockets {
                let id = LinkId::new(links.len());
                links.push(LinkSpec::new(
                    id,
                    LinkKind::InterSocket,
                    format!("socket{a}"),
                    format!("socket{b}"),
                ));
                socket_link.insert((a, b), id);
                socket_link.insert((b, a), id);
            }
        }

        // GPUs: device memory node + PCIe link to the owning socket.
        let mut gpu_info: Vec<(MemoryNodeId, usize, LinkId)> = Vec::new();
        for (gpu_idx, &socket) in self.gpus.iter().enumerate() {
            let mem_id = MemoryNodeId::new(memory_nodes.len());
            memory_nodes.push(MemoryNodeSpec::paper_gpu_device(mem_id, socket));
            devices.push(DeviceProfile::paper_gpu(socket, mem_id));
            let link_id = LinkId::new(links.len());
            let mut link = LinkSpec::new(
                link_id,
                LinkKind::Pcie3x16,
                format!("socket{socket}"),
                format!("gpu{gpu_idx}"),
            );
            if let Some(bw) = self.custom_pcie_bandwidth {
                link = link.with_bandwidth(bw);
            }
            links.push(link);
            gpu_info.push((mem_id, socket, link_id));
        }

        // Routing table between memory nodes.
        let mut routes = HashMap::new();
        let socket_mem = |s: usize| MemoryNodeId::new(s);
        // DRAM <-> DRAM via the inter-socket link.
        for a in 0..n_sockets {
            for b in 0..n_sockets {
                if a != b {
                    let link = socket_link[&(a, b)];
                    routes.insert((socket_mem(a), socket_mem(b)), vec![link]);
                }
            }
        }
        // DRAM <-> GPU memory.
        for &(gpu_mem, gpu_socket, pcie) in &gpu_info {
            for s in 0..n_sockets {
                let mut path = Vec::new();
                if s != gpu_socket {
                    path.push(socket_link[&(s, gpu_socket)]);
                }
                path.push(pcie);
                routes.insert((socket_mem(s), gpu_mem), path.clone());
                let mut back = path;
                back.reverse();
                routes.insert((gpu_mem, socket_mem(s)), back);
            }
        }
        // GPU memory <-> GPU memory (through both PCIe links and, if needed,
        // the inter-socket link; the paper's server has no NVLink).
        for &(mem_a, sock_a, pcie_a) in &gpu_info {
            for &(mem_b, sock_b, pcie_b) in &gpu_info {
                if mem_a == mem_b {
                    continue;
                }
                let mut path = vec![pcie_a];
                if sock_a != sock_b {
                    path.push(socket_link[&(sock_a, sock_b)]);
                }
                path.push(pcie_b);
                routes.insert((mem_a, mem_b), path);
            }
        }

        let memory_clocks =
            memory_nodes.iter().map(|m| ResourceClock::new(format!("mem:{}", m.id))).collect();
        let link_clocks =
            links.iter().map(|l| ResourceClock::new(format!("link:{}-{}", l.from, l.to))).collect();

        Ok(ServerTopology {
            memory_nodes,
            devices,
            links,
            routes,
            memory_clocks,
            link_clocks,
            sockets: n_sockets,
            fault_plan: None,
            excluded: HashSet::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_server_shape() {
        let t = ServerTopology::paper_server();
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.cpu_cores().len(), 24);
        assert_eq!(t.gpus().len(), 2);
        assert_eq!(t.memory_nodes().len(), 4);
        assert_eq!(t.cpu_memory_nodes().len(), 2);
        assert_eq!(t.gpu_memory_nodes().len(), 2);
        // 1 QPI + 2 PCIe links.
        assert_eq!(t.links().len(), 3);
    }

    #[test]
    fn interleaved_cores_alternate_sockets() {
        let t = ServerTopology::paper_server();
        let cores = t.cpu_cores_interleaved();
        assert_eq!(cores.len(), 24);
        let s0 = t.device(cores[0]).unwrap().socket;
        let s1 = t.device(cores[1]).unwrap().socket;
        assert_ne!(s0, s1);
    }

    #[test]
    fn routes_cover_all_memory_pairs() {
        let t = ServerTopology::paper_server();
        let nodes: Vec<_> = t.memory_nodes().iter().map(|m| m.id).collect();
        for &a in &nodes {
            for &b in &nodes {
                let route = t.route(a, b).unwrap();
                if a == b {
                    assert!(route.is_empty());
                } else {
                    assert!(!route.is_empty(), "missing route {a} -> {b}");
                    for link in route {
                        t.link(link).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn cross_socket_gpu_route_uses_two_hops() {
        let t = ServerTopology::paper_server();
        // Socket 0 DRAM (mem0) to the GPU on socket 1 (mem3).
        let route = t.route(MemoryNodeId::new(0), MemoryNodeId::new(3)).unwrap();
        assert_eq!(route.len(), 2);
        // Local GPU is a single hop.
        let local = t.route(MemoryNodeId::new(0), MemoryNodeId::new(2)).unwrap();
        assert_eq!(local.len(), 1);
    }

    #[test]
    fn gpu_local_memory_is_device_memory() {
        let t = ServerTopology::paper_server();
        for gpu in t.gpus() {
            let mem = t.local_memory_of(gpu).unwrap();
            assert!(t.memory_node(mem).unwrap().is_gpu_memory());
        }
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert!(TopologyBuilder::new().build().is_err());
        let mut b = TopologyBuilder::new();
        b.add_socket(4).add_gpu(3);
        assert!(b.build().is_err());
    }

    #[test]
    fn reset_clears_clocks() {
        let t = ServerTopology::paper_server();
        t.memory_clock(MemoryNodeId::new(0)).unwrap().reserve(crate::clock::SimTime::ZERO, 100);
        t.reset_clocks();
        assert_eq!(
            t.memory_clock(MemoryNodeId::new(0)).unwrap().now(),
            crate::clock::SimTime::ZERO
        );
    }

    #[test]
    fn private_clocks_do_not_alias_the_original() {
        let t = ServerTopology::paper_server();
        let private = t.with_private_clocks();
        // Charge the original's clock: the private copy must stay at zero...
        t.memory_clock(MemoryNodeId::new(0)).unwrap().reserve(crate::clock::SimTime::ZERO, 100);
        assert_eq!(
            private.memory_clock(MemoryNodeId::new(0)).unwrap().now(),
            crate::clock::SimTime::ZERO
        );
        // ...and vice versa for link clocks.
        private.link_clock(LinkId::new(0)).unwrap().reserve(crate::clock::SimTime::ZERO, 100);
        assert_eq!(t.link_clock(LinkId::new(0)).unwrap().now(), crate::clock::SimTime::ZERO);
        // Everything else is shared structure: same shape, same routes.
        assert_eq!(private.devices().len(), t.devices().len());
        assert_eq!(private.links().len(), t.links().len());
        t.reset_clocks();
    }

    #[test]
    fn device_slowdown_marks_one_straggler() {
        let t = ServerTopology::paper_server();
        let gpu = t.gpus()[1];
        let skewed = t.with_device_slowdown(gpu, 8.0).unwrap();
        assert_eq!(skewed.device(gpu).unwrap().exec_slowdown, 8.0);
        // Every other device — and the original topology — stays nominal.
        assert_eq!(t.device(gpu).unwrap().exec_slowdown, 1.0);
        for (idx, dev) in skewed.devices().iter().enumerate() {
            if DeviceId::new(idx) != gpu {
                assert_eq!(dev.exec_slowdown, 1.0);
            }
        }
        assert!(t.with_device_slowdown(DeviceId::new(999), 2.0).is_err());
    }

    #[test]
    fn fault_plan_attaches_and_validates_devices() {
        use crate::fault::FaultPlan;
        let t = ServerTopology::paper_server();
        assert!(t.fault_plan().is_none());
        let gpu = t.gpus()[0];
        let plan = FaultPlan::new().abort_device(gpu, crate::clock::SimTime::from_nanos(1_000));
        let faulty = t.with_fault_plan(plan).unwrap();
        let attached = faulty.fault_plan().expect("plan attached");
        assert_eq!(attached.abort_at(gpu), Some(crate::clock::SimTime::from_nanos(1_000)));
        // The original topology is untouched.
        assert!(t.fault_plan().is_none());
        // Plans naming unknown devices or nodes are rejected.
        let bad =
            FaultPlan::new().abort_device(DeviceId::new(999), crate::clock::SimTime::from_nanos(1));
        assert!(t.with_fault_plan(bad).is_err());
        let bad_node = FaultPlan::new().arena_burst(
            MemoryNodeId::new(99),
            1,
            crate::clock::SimTime::ZERO,
            crate::clock::SimTime::from_nanos(1),
        );
        assert!(t.with_fault_plan(bad_node).is_err());
    }

    #[test]
    fn excluded_devices_leave_placement_but_stay_addressable() {
        let t = ServerTopology::paper_server();
        let gpu = t.gpus()[0];
        let degraded = t.with_device_excluded(gpu).unwrap();
        assert!(degraded.is_excluded(gpu));
        assert_eq!(degraded.excluded_devices(), vec![gpu]);
        assert_eq!(degraded.gpus().len(), t.gpus().len() - 1);
        assert!(!degraded.gpus().contains(&gpu));
        // Profiles and local memory keep resolving for in-flight bookkeeping.
        assert!(degraded.device(gpu).is_ok());
        assert!(degraded.local_memory_of(gpu).is_ok());
        // CPU cores are excludable the same way, including from the
        // interleaved placement order.
        let core = t.cpu_cores()[0];
        let no_core = t.with_device_excluded(core).unwrap();
        assert_eq!(no_core.cpu_cores().len(), t.cpu_cores().len() - 1);
        assert!(!no_core.cpu_cores_interleaved().contains(&core));
        // Unknown devices are rejected; the original topology is untouched.
        assert!(t.with_device_excluded(DeviceId::new(999)).is_err());
        assert!(!t.is_excluded(gpu));
    }

    #[test]
    fn unknown_ids_error() {
        let t = ServerTopology::paper_server();
        assert!(t.device(DeviceId::new(999)).is_err());
        assert!(t.memory_node(MemoryNodeId::new(99)).is_err());
        assert!(t.link(LinkId::new(99)).is_err());
    }
}
