//! Error handling for the HetExchange workspace.
//!
//! A single error enum is shared by every crate: the engine, the simulator and
//! the benchmark harness all speak [`HetError`]. The enum is deliberately
//! coarse-grained — variants map to the subsystems of the paper (planning,
//! code generation, execution, memory management, data transfer) rather than to
//! individual failure sites, which keeps match arms in callers meaningful.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, HetError>;

/// The error type shared by all HetExchange crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HetError {
    /// The catalog does not contain the requested table or column.
    CatalogMissing(String),
    /// A schema mismatch: wrong arity, wrong type, unknown field.
    Schema(String),
    /// The logical/physical plan is malformed (e.g. a router without consumers).
    Plan(String),
    /// Code generation (produce/consume traversal or lowering) failed.
    Codegen(String),
    /// Runtime execution failure inside a pipeline.
    Execution(String),
    /// A block or memory manager could not satisfy a request.
    Memory(String),
    /// A data transfer (DMA over an interconnect) failed or was mis-specified.
    Transfer(String),
    /// The requested device does not exist in the topology.
    UnknownDevice(String),
    /// The operation is unsupported on the given engine/system configuration.
    Unsupported(String),
    /// The benchmark/system configuration is invalid.
    Config(String),
    /// The query was cancelled or a channel closed unexpectedly.
    Cancelled(String),
    /// An execution device was lost permanently mid-query (it aborted, or
    /// crossed its transient-retry budget and was quarantined) while holding
    /// work the executor could not re-route: `block` is the queue depth (plus
    /// any claimed block) stranded on the device at stage `stage`. The engine
    /// catches this variant and restarts the query on the surviving devices.
    DeviceLost {
        /// Raw index of the lost device.
        device: usize,
        /// Stage whose work was stranded on the device.
        stage: usize,
        /// Number of blocks stranded (in-queue plus claimed).
        block: usize,
    },
    /// A worker stopped making progress and the per-stage watchdog converted
    /// the hang into a structured failure: stage `stage`, consumer slot
    /// `slot`. Like [`HetError::DeviceLost`], the engine treats this as a
    /// permanent device failure and degrades to the surviving devices.
    Wedged {
        /// Stage whose worker wedged.
        stage: usize,
        /// Consumer slot (instance index within the stage) that wedged.
        slot: usize,
    },
    /// A kernel invocation failed transiently on a device (an injected
    /// launch fault, a recoverable ECC event). The executor retries in place
    /// with bounded sim-charged backoff; only after the retry budget is
    /// exhausted does the failure escalate to [`HetError::DeviceLost`].
    KernelTransient {
        /// Raw index of the device whose kernel invocation failed.
        device: usize,
    },
}

impl HetError {
    /// Short machine-readable category name, used by the bench harness when
    /// recording which baseline failed which query (the paper's DBMS G fails
    /// Q2.2 and Q4.3 at SF1000, and we record those failures the same way).
    pub fn category(&self) -> &'static str {
        match self {
            HetError::CatalogMissing(_) => "catalog",
            HetError::Schema(_) => "schema",
            HetError::Plan(_) => "plan",
            HetError::Codegen(_) => "codegen",
            HetError::Execution(_) => "execution",
            HetError::Memory(_) => "memory",
            HetError::Transfer(_) => "transfer",
            HetError::UnknownDevice(_) => "device",
            HetError::Unsupported(_) => "unsupported",
            HetError::Config(_) => "config",
            HetError::Cancelled(_) => "cancelled",
            HetError::DeviceLost { .. } => "device-lost",
            HetError::Wedged { .. } => "wedged",
            HetError::KernelTransient { .. } => "kernel-transient",
        }
    }

    /// True for failures the executor may retry in place (with bounded,
    /// sim-charged backoff) rather than escalate. Everything else is
    /// permanent from the executor's point of view: either a clean abort or
    /// a device loss the engine handles by degrading to survivors.
    pub fn is_transient(&self) -> bool {
        matches!(self, HetError::KernelTransient { .. })
    }
}

impl fmt::Display for HetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HetError::CatalogMissing(m) => write!(f, "catalog: {m}"),
            HetError::Schema(m) => write!(f, "schema error: {m}"),
            HetError::Plan(m) => write!(f, "plan error: {m}"),
            HetError::Codegen(m) => write!(f, "codegen error: {m}"),
            HetError::Execution(m) => write!(f, "execution error: {m}"),
            HetError::Memory(m) => write!(f, "memory error: {m}"),
            HetError::Transfer(m) => write!(f, "transfer error: {m}"),
            HetError::UnknownDevice(m) => write!(f, "unknown device: {m}"),
            HetError::Unsupported(m) => write!(f, "unsupported: {m}"),
            HetError::Config(m) => write!(f, "configuration error: {m}"),
            HetError::Cancelled(m) => write!(f, "cancelled: {m}"),
            HetError::DeviceLost { device, stage, block } => write!(
                f,
                "device lost: dev{device} failed permanently at stage {stage} \
                 with {block} block(s) stranded"
            ),
            HetError::Wedged { stage, slot } => {
                write!(f, "wedged: stage {stage} slot {slot} stopped making progress")
            }
            HetError::KernelTransient { device } => {
                write!(f, "transient kernel failure on dev{device}")
            }
        }
    }
}

impl std::error::Error for HetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let err = HetError::Memory("arena exhausted on mem1".into());
        assert!(err.to_string().contains("arena exhausted"));
        assert!(err.to_string().starts_with("memory error"));
    }

    #[test]
    fn category_is_stable() {
        assert_eq!(HetError::Transfer(String::new()).category(), "transfer");
        assert_eq!(HetError::Unsupported(String::new()).category(), "unsupported");
    }

    #[test]
    fn fault_variants_are_structured_and_classified() {
        let lost = HetError::DeviceLost { device: 3, stage: 1, block: 4 };
        assert_eq!(lost.category(), "device-lost");
        assert!(!lost.is_transient());
        assert!(lost.to_string().contains("dev3"));
        assert!(lost.to_string().contains("stage 1"));

        let wedged = HetError::Wedged { stage: 2, slot: 5 };
        assert_eq!(wedged.category(), "wedged");
        assert!(!wedged.is_transient());
        assert!(wedged.to_string().contains("slot 5"));

        let transient = HetError::KernelTransient { device: 1 };
        assert_eq!(transient.category(), "kernel-transient");
        assert!(transient.is_transient());
        assert!(!HetError::Memory(String::new()).is_transient());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_: &dyn std::error::Error) {}
        takes_std_error(&HetError::Plan("x".into()));
    }
}
