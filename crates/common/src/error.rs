//! Error handling for the HetExchange workspace.
//!
//! A single error enum is shared by every crate: the engine, the simulator and
//! the benchmark harness all speak [`HetError`]. The enum is deliberately
//! coarse-grained — variants map to the subsystems of the paper (planning,
//! code generation, execution, memory management, data transfer) rather than to
//! individual failure sites, which keeps match arms in callers meaningful.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, HetError>;

/// The error type shared by all HetExchange crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HetError {
    /// The catalog does not contain the requested table or column.
    CatalogMissing(String),
    /// A schema mismatch: wrong arity, wrong type, unknown field.
    Schema(String),
    /// The logical/physical plan is malformed (e.g. a router without consumers).
    Plan(String),
    /// Code generation (produce/consume traversal or lowering) failed.
    Codegen(String),
    /// Runtime execution failure inside a pipeline.
    Execution(String),
    /// A block or memory manager could not satisfy a request.
    Memory(String),
    /// A data transfer (DMA over an interconnect) failed or was mis-specified.
    Transfer(String),
    /// The requested device does not exist in the topology.
    UnknownDevice(String),
    /// The operation is unsupported on the given engine/system configuration.
    Unsupported(String),
    /// The benchmark/system configuration is invalid.
    Config(String),
    /// The query was cancelled or a channel closed unexpectedly.
    Cancelled(String),
}

impl HetError {
    /// Short machine-readable category name, used by the bench harness when
    /// recording which baseline failed which query (the paper's DBMS G fails
    /// Q2.2 and Q4.3 at SF1000, and we record those failures the same way).
    pub fn category(&self) -> &'static str {
        match self {
            HetError::CatalogMissing(_) => "catalog",
            HetError::Schema(_) => "schema",
            HetError::Plan(_) => "plan",
            HetError::Codegen(_) => "codegen",
            HetError::Execution(_) => "execution",
            HetError::Memory(_) => "memory",
            HetError::Transfer(_) => "transfer",
            HetError::UnknownDevice(_) => "device",
            HetError::Unsupported(_) => "unsupported",
            HetError::Config(_) => "config",
            HetError::Cancelled(_) => "cancelled",
        }
    }
}

impl fmt::Display for HetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HetError::CatalogMissing(m) => write!(f, "catalog: {m}"),
            HetError::Schema(m) => write!(f, "schema error: {m}"),
            HetError::Plan(m) => write!(f, "plan error: {m}"),
            HetError::Codegen(m) => write!(f, "codegen error: {m}"),
            HetError::Execution(m) => write!(f, "execution error: {m}"),
            HetError::Memory(m) => write!(f, "memory error: {m}"),
            HetError::Transfer(m) => write!(f, "transfer error: {m}"),
            HetError::UnknownDevice(m) => write!(f, "unknown device: {m}"),
            HetError::Unsupported(m) => write!(f, "unsupported: {m}"),
            HetError::Config(m) => write!(f, "configuration error: {m}"),
            HetError::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for HetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let err = HetError::Memory("arena exhausted on mem1".into());
        assert!(err.to_string().contains("arena exhausted"));
        assert!(err.to_string().starts_with("memory error"));
    }

    #[test]
    fn category_is_stable() {
        assert_eq!(HetError::Transfer(String::new()).category(), "transfer");
        assert_eq!(HetError::Unsupported(String::new()).category(), "unsupported");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_: &dyn std::error::Error) {}
        takes_std_error(&HetError::Plan("x".into()));
    }
}
