//! Data blocks and block handles.
//!
//! HetExchange moves data at *block* granularity: the pack operator groups
//! tuples into blocks, the mem-move operator copies blocks across memory
//! nodes, and the router routes **block handles** — lightweight descriptors —
//! rather than the data itself. This module provides both halves:
//!
//! * [`Block`] — an immutable columnar chunk of tuples residing on one memory
//!   node of the (simulated) server.
//! * [`BlockHandle`] — a cheaply clonable reference to a block plus the
//!   metadata the control-flow operators need: where the data lives, which
//!   hash partition or broadcast target it belongs to, and at which simulated
//!   time the data becomes available (`ready_at_ns`, set by mem-move when it
//!   schedules an asynchronous DMA transfer).

use crate::column::ColumnData;
use crate::error::{HetError, Result};
use crate::ids::{BlockId, MemoryNodeId};
use crate::schema::Schema;
use std::sync::Arc;

/// An opaque staging charge attached to a [`BlockHandle`].
///
/// The executor leases staging memory from the block managers when it admits
/// a block into a consumer queue and attaches the lease here; the charge is
/// released when the last handle referencing it is dropped (RAII), so error
/// paths and panic unwinding cannot leak staging bytes. The type is erased
/// (`dyn Any`) because `hetex-common` sits below `hetex-storage` in the crate
/// graph and must not know the concrete lease type.
pub type StagingToken = Arc<dyn std::any::Any + Send + Sync>;

/// Default number of tuples per block. The paper uses block-shaped partitions
/// of roughly 1 MiB per column; with 4-byte columns that is 256 Ki tuples. We
/// default to a smaller block so small test datasets still produce several
/// blocks, and the engine configuration can override it.
pub const DEFAULT_BLOCK_CAPACITY: usize = 64 * 1024;

/// An immutable, columnar chunk of tuples located on a specific memory node.
#[derive(Debug, Clone)]
pub struct Block {
    columns: Vec<ColumnData>,
    rows: usize,
}

impl Block {
    /// Build a block from column slices. All columns must have `rows` values.
    pub fn new(columns: Vec<ColumnData>, rows: usize) -> Result<Self> {
        for (i, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(HetError::Schema(format!(
                    "column {i} has {} rows, block expects {rows}",
                    col.len()
                )));
            }
        }
        Ok(Self { columns, rows })
    }

    /// An empty block with columns allocated for `schema` and `capacity`.
    pub fn empty_for(schema: &Schema, capacity: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::with_capacity(f.data_type, capacity))
            .collect();
        Self { columns, rows: 0 }
    }

    /// Number of tuples in the block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True if the block contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> Result<&ColumnData> {
        self.columns.get(idx).ok_or_else(|| HetError::Schema(format!("block has no column {idx}")))
    }

    /// Mutable column access, used by the pack operator while a block is being
    /// filled (before it is sealed into a handle).
    pub fn column_mut(&mut self, idx: usize) -> Result<&mut ColumnData> {
        self.columns
            .get_mut(idx)
            .ok_or_else(|| HetError::Schema(format!("block has no column {idx}")))
    }

    /// Append one tuple copied from `src` at row `row`. The source block must
    /// have the same column types.
    pub fn push_row_from(&mut self, src: &Block, row: usize) -> Result<()> {
        if src.width() != self.width() {
            return Err(HetError::Schema(format!(
                "cannot copy row between blocks of width {} and {}",
                src.width(),
                self.width()
            )));
        }
        for (dst, s) in self.columns.iter_mut().zip(src.columns.iter()) {
            dst.push_from(s, row)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Mark `n` rows as present after filling columns directly via
    /// [`Self::column_mut`]. All columns must already contain exactly `n` rows.
    pub fn seal(&mut self, n: usize) -> Result<()> {
        for (i, col) in self.columns.iter().enumerate() {
            if col.len() != n {
                return Err(HetError::Schema(format!(
                    "seal({n}): column {i} holds {} rows",
                    col.len()
                )));
            }
        }
        self.rows = n;
        Ok(())
    }

    /// Total size of the block's data in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }

    /// A copy of rows `[start, end)` as a new block.
    pub fn slice(&self, start: usize, end: usize) -> Result<Block> {
        if end > self.rows || start > end {
            return Err(HetError::Schema(format!(
                "slice [{start}, {end}) out of range for block of {} rows",
                self.rows
            )));
        }
        let columns = self.columns.iter().map(|c| c.slice(start, end)).collect();
        Ok(Block { columns, rows: end - start })
    }
}

/// Metadata carried alongside a block by its handle.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    /// Identifier assigned by the producing block manager.
    pub id: BlockId,
    /// Memory node on which the block's data currently resides.
    pub location: MemoryNodeId,
    /// Hash partition tag set by the hash-pack operator: all tuples in the
    /// block share this value, so hash-based routing never touches tuples.
    pub hash_partition: Option<u64>,
    /// Broadcast target set by a multicasting mem-move; the router routes on
    /// this value for broadcast plans.
    pub broadcast_target: Option<usize>,
    /// Simulated timestamp (nanoseconds) at which the data is available on
    /// `location`; consumers start no earlier than this.
    pub ready_at_ns: u64,
    /// Logical byte multiplier used by the benchmark harness when a physically
    /// small dataset models a nominally larger one (scale extrapolation).
    pub weight: f64,
}

impl BlockMeta {
    /// Metadata for a freshly produced, immediately available block.
    pub fn new(id: BlockId, location: MemoryNodeId) -> Self {
        Self {
            id,
            location,
            hash_partition: None,
            broadcast_target: None,
            ready_at_ns: 0,
            weight: 1.0,
        }
    }
}

/// A cheaply clonable reference to a block plus routing metadata.
///
/// Handles are what flows through routers and device-crossing operators; the
/// data itself is shared behind an [`Arc`] and is only copied when a mem-move
/// materializes it on another memory node. A handle may additionally carry a
/// [`StagingToken`] — the staging-memory charge backing the block while it is
/// queued for a consumer; clones share the charge and the last drop releases
/// it.
#[derive(Clone)]
pub struct BlockHandle {
    data: Arc<Block>,
    meta: BlockMeta,
    staging: Option<StagingToken>,
}

impl std::fmt::Debug for BlockHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockHandle")
            .field("data", &self.data)
            .field("meta", &self.meta)
            .field("staged", &self.staging.is_some())
            .finish()
    }
}

impl BlockHandle {
    /// Wrap a block in a handle.
    pub fn new(data: Block, meta: BlockMeta) -> Self {
        Self { data: Arc::new(data), meta, staging: None }
    }

    /// Wrap an already shared block.
    pub fn from_shared(data: Arc<Block>, meta: BlockMeta) -> Self {
        Self { data, meta, staging: None }
    }

    /// Attach a staging charge to this handle (replacing any prior charge,
    /// which is thereby released).
    pub fn attach_staging(&mut self, token: StagingToken) {
        self.staging = Some(token);
    }

    /// Detach and return the staging charge, if any. Dropping the returned
    /// token releases the charge; this is the "release on the source node"
    /// half of a lease transfer across a device crossing.
    pub fn take_staging(&mut self) -> Option<StagingToken> {
        self.staging.take()
    }

    /// True while the handle carries a staging charge.
    pub fn is_staged(&self) -> bool {
        self.staging.is_some()
    }

    /// The referenced block.
    pub fn block(&self) -> &Block {
        &self.data
    }

    /// The shared block pointer (used by mem-move when forwarding without copy).
    pub fn shared(&self) -> Arc<Block> {
        Arc::clone(&self.data)
    }

    /// The handle metadata.
    pub fn meta(&self) -> &BlockMeta {
        &self.meta
    }

    /// Mutable metadata access (used by mem-move/pack to retag handles).
    pub fn meta_mut(&mut self) -> &mut BlockMeta {
        &mut self.meta
    }

    /// Convenience: number of tuples.
    pub fn rows(&self) -> usize {
        self.data.rows()
    }

    /// Convenience: payload size in bytes (physical, before weighting).
    pub fn byte_size(&self) -> usize {
        self.data.byte_size()
    }

    /// Payload size in *modeled* bytes: physical bytes times the handle weight.
    pub fn weighted_bytes(&self) -> f64 {
        self.data.byte_size() as f64 * self.meta.weight
    }

    /// A copy of this handle relocated to `node` and available at `ready_at_ns`.
    /// The underlying data is shared; only the metadata changes. The simulated
    /// DMA cost is accounted by the transfer engine, not here. Any staging
    /// charge stays behind with the source handle: the block now occupies
    /// memory on a different node, so whoever relocates it must acquire a
    /// fresh charge at the destination (lease transfer).
    pub fn relocated(&self, node: MemoryNodeId, ready_at_ns: u64) -> BlockHandle {
        let mut meta = self.meta.clone();
        meta.location = node;
        meta.ready_at_ns = ready_at_ns;
        BlockHandle { data: Arc::clone(&self.data), meta, staging: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn sample_schema() -> Schema {
        Schema::new(vec![Field::new("a", DataType::Int32), Field::new("b", DataType::Int64)])
    }

    fn sample_block() -> Block {
        Block::new(vec![ColumnData::Int32(vec![1, 2, 3]), ColumnData::Int64(vec![10, 20, 30])], 3)
            .unwrap()
    }

    #[test]
    fn block_rejects_ragged_columns() {
        let err = Block::new(vec![ColumnData::Int32(vec![1, 2]), ColumnData::Int64(vec![1])], 2);
        assert!(err.is_err());
    }

    #[test]
    fn block_byte_size_and_slice() {
        let b = sample_block();
        assert_eq!(b.byte_size(), 3 * 4 + 3 * 8);
        let s = b.slice(1, 3).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.column(0).unwrap().get_i64(0), Some(2));
        assert!(b.slice(2, 5).is_err());
    }

    #[test]
    fn block_push_row_from() {
        let src = sample_block();
        let mut dst = Block::empty_for(&sample_schema(), 4);
        dst.push_row_from(&src, 2).unwrap();
        assert_eq!(dst.rows(), 1);
        assert_eq!(dst.column(1).unwrap().get_i64(0), Some(30));
        let mut wrong = Block::empty_for(&Schema::new(vec![Field::new("a", DataType::Int32)]), 4);
        assert!(wrong.push_row_from(&src, 0).is_err());
    }

    #[test]
    fn block_seal_checks_column_lengths() {
        let mut b = Block::empty_for(&sample_schema(), 4);
        b.column_mut(0).unwrap().push_i64(1);
        assert!(b.seal(1).is_err());
        b.column_mut(1).unwrap().push_i64(100);
        b.seal(1).unwrap();
        assert_eq!(b.rows(), 1);
    }

    #[test]
    fn handle_relocation_shares_data() {
        let meta = BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0));
        let h = BlockHandle::new(sample_block(), meta);
        let moved = h.relocated(MemoryNodeId::new(2), 1_000);
        assert_eq!(moved.meta().location, MemoryNodeId::new(2));
        assert_eq!(moved.meta().ready_at_ns, 1_000);
        assert_eq!(moved.rows(), h.rows());
        // Data is shared, not copied.
        assert!(Arc::ptr_eq(&h.shared(), &moved.shared()));
    }

    #[test]
    fn staging_tokens_are_released_on_drop_and_left_behind_by_relocation() {
        struct Counter(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counter {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let released = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let meta = BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0));
        let mut h = BlockHandle::new(sample_block(), meta);
        assert!(!h.is_staged());
        h.attach_staging(Arc::new(Counter(Arc::clone(&released))));
        assert!(h.is_staged());
        // A relocated copy does not carry the source charge.
        let moved = h.relocated(MemoryNodeId::new(1), 0);
        assert!(!moved.is_staged());
        // A clone shares the charge: only the last drop releases it.
        let clone = h.clone();
        drop(h);
        assert_eq!(released.load(std::sync::atomic::Ordering::SeqCst), 0);
        drop(clone);
        assert_eq!(released.load(std::sync::atomic::Ordering::SeqCst), 1);
        // Attaching over an existing charge releases the old one.
        let mut h =
            BlockHandle::new(sample_block(), BlockMeta::new(BlockId::new(1), MemoryNodeId::new(0)));
        h.attach_staging(Arc::new(Counter(Arc::clone(&released))));
        h.attach_staging(Arc::new(Counter(Arc::clone(&released))));
        assert_eq!(released.load(std::sync::atomic::Ordering::SeqCst), 2);
        assert!(h.take_staging().is_some());
        assert_eq!(released.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn weighted_bytes_scale_with_weight() {
        let mut meta = BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0));
        meta.weight = 10.0;
        let h = BlockHandle::new(sample_block(), meta);
        assert_eq!(h.weighted_bytes(), (3 * 4 + 3 * 8) as f64 * 10.0);
    }
}
