//! # hetex-common
//!
//! Shared building blocks for the HetExchange reproduction: scalar values and
//! data types, relational schemas, typed column vectors (with dictionary
//! encoding for strings), fixed-capacity data [`Block`]s and the [`BlockHandle`]s
//! that HetExchange's control-flow operators route around, plus the error and
//! configuration types used across every crate in the workspace.
//!
//! Everything in this crate is device- and engine-agnostic: it knows nothing
//! about CPUs, GPUs, pipelines, or the simulator. Higher layers (`hetex-topology`,
//! `hetex-storage`, `hetex-core`, …) build on these types.

pub mod block;
pub mod column;
pub mod config;
pub mod error;
pub mod ids;
pub mod schema;
pub mod types;

pub use block::{Block, BlockHandle, BlockMeta, StagingToken};
pub use column::{Column, ColumnData, DictionaryBuilder};
pub use config::{
    AnalysisMode, CalibrationConfig, CostModelConfig, EngineConfig, EngineConfigBuilder,
    ExecutionMode, FaultConfig, KernelMode, Priority, ReoptConfig, ServeConfig, StealPolicy,
};
pub use error::{HetError, Result};
pub use ids::{BlockId, ColumnId, MemoryNodeId, PipelineId, QueryId, TableId};
pub use schema::{Field, Schema};
pub use types::{DataType, Value};
