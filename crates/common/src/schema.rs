//! Relational schemas.
//!
//! A [`Schema`] is an ordered list of named, typed [`Field`]s. Pipelines carry
//! schemas for their intermediate tuples so that pack/unpack operators and the
//! cost model know how wide a tuple is.

use crate::error::{HetError, Result};
use crate::types::DataType;
use std::fmt;
use std::sync::Arc;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within the schema.
    pub name: String,
    /// Physical data type.
    pub data_type: DataType,
}

impl Field {
    /// Create a new field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self { name: name.into(), data_type }
    }
}

/// An ordered collection of fields describing a tuple layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared, immutable schema reference as passed between pipelines.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Create a schema from fields. Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Self {
        debug_assert!(
            {
                let mut names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate field names in schema"
        );
        Self { fields }
    }

    /// Empty schema (used by leaf control pipelines that carry no tuples).
    pub fn empty() -> Self {
        Self { fields: Vec::new() }
    }

    /// The fields of the schema in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| HetError::Schema(format!("unknown column `{name}`")))
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field by position.
    pub fn field_at(&self, idx: usize) -> Result<&Field> {
        self.fields
            .get(idx)
            .ok_or_else(|| HetError::Schema(format!("column index {idx} out of range")))
    }

    /// Width of one tuple in bytes when fully materialized in a block.
    pub fn tuple_width(&self) -> usize {
        self.fields.iter().map(|f| f.data_type.byte_width()).sum()
    }

    /// Concatenate two schemas (used by joins). Duplicate names on the probe
    /// side are suffixed with `_r`.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let name = if self.index_of(&f.name).is_ok() {
                format!("{}_r", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema::new(fields)
    }

    /// Project a subset of columns by name, preserving the requested order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            fields.push(self.field(name)?.clone());
        }
        Ok(Schema::new(fields))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("lo_orderdate", DataType::Int32),
            Field::new("lo_revenue", DataType::Int64),
            Field::new("p_brand", DataType::Dictionary),
        ])
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = schema();
        assert_eq!(s.index_of("lo_revenue").unwrap(), 1);
        assert_eq!(s.field("p_brand").unwrap().data_type, DataType::Dictionary);
        assert!(s.index_of("nope").is_err());
        assert!(s.field_at(5).is_err());
    }

    #[test]
    fn tuple_width_sums_field_widths() {
        assert_eq!(schema().tuple_width(), 4 + 8 + 4);
        assert_eq!(Schema::empty().tuple_width(), 0);
    }

    #[test]
    fn join_renames_duplicates() {
        let left = schema();
        let right = Schema::new(vec![
            Field::new("d_datekey", DataType::Int32),
            Field::new("lo_revenue", DataType::Int64),
        ]);
        let joined = left.join(&right);
        assert_eq!(joined.len(), 5);
        assert!(joined.index_of("lo_revenue_r").is_ok());
    }

    #[test]
    fn project_preserves_order() {
        let s = schema();
        let p = s.project(&["p_brand", "lo_orderdate"]).unwrap();
        assert_eq!(p.fields()[0].name, "p_brand");
        assert_eq!(p.fields()[1].name, "lo_orderdate");
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn display_lists_fields() {
        let text = schema().to_string();
        assert!(text.contains("lo_orderdate: INT32"));
        assert!(text.contains("p_brand: DICT"));
    }
}
