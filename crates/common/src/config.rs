//! Engine-wide configuration.
//!
//! The configuration gathers the knobs that the paper's evaluation varies
//! (degree of parallelism per device type, block size, which devices
//! participate) plus the knobs our reproduction adds (scale-extrapolation
//! weight used when a physically small dataset models a nominally larger one).

/// Where the engine is allowed to run the main part of a query plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionTarget {
    /// All relational work on CPU cores only (paper: "Proteus CPUs").
    CpuOnly,
    /// All relational work on GPUs only (paper: "Proteus GPUs").
    GpuOnly,
    /// Work parallelized across both CPUs and GPUs (paper: "Proteus Hybrid").
    Hybrid,
}

impl ExecutionTarget {
    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionTarget::CpuOnly => "Proteus CPUs",
            ExecutionTarget::GpuOnly => "Proteus GPUs",
            ExecutionTarget::Hybrid => "Proteus Hybrid",
        }
    }
}

/// How the executor schedules the stages of a compiled query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// All stages run concurrently; producers push block handles into the
    /// consumer stage's asynchronous queues the moment each block is produced,
    /// and routing / mem-move localization happen inline on the producer path
    /// (§3.1's router-connected pipeline instances). This is the default.
    #[default]
    Pipelined,
    /// Legacy stage-at-a-time scheduling: each stage fully materializes its
    /// outputs before the next stage starts, and routing is a serial pre-pass.
    /// Kept selectable for A/B comparison against the pipelined executor.
    StageAtATime,
}

/// What the engine does with the findings of the pre-execution static
/// analysis pass (the `hetex-analysis` crate) it runs over every compiled
/// query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Error-severity diagnostics reject the query before execution;
    /// warnings are printed to stderr. This is the default.
    #[default]
    Deny,
    /// All diagnostics (errors included) are printed to stderr and the
    /// query executes anyway — an escape hatch for debugging the analyzer
    /// itself or deliberately running a flagged plan.
    Warn,
    /// The analysis pass is skipped entirely.
    Off,
}

/// Whether (and how) idle pipelined workers re-route queued blocks away from
/// overloaded siblings of the same stage.
///
/// Routing binds every block to a consumer the moment it is produced; a
/// straggler instance (an unexpectedly slow device, a parked lease, a cold
/// gate) would otherwise hold its queued blocks hostage while siblings idle.
/// Stealing re-binds late: the thief takes the *tail* of the victim's queue
/// (the blocks that would wait longest), the router's load estimator moves
/// the stolen cost from victim to thief (`LoadEstimator::decommit`), and the
/// block's staging charge is released on the victim's node and re-acquired on
/// the thief's. Only anonymously routed stages (round-robin / least-loaded)
/// steal — hash- and target-routed blocks are semantically bound to their
/// consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// An idle worker steals the tail block from the most-loaded same-stage
    /// sibling whose backlog holds at least two blocks. This is the default.
    #[default]
    TailMostLoaded,
    /// Never steal: blocks stay bound to the consumer chosen at routing time
    /// (the pre-stealing behaviour, kept selectable for A/B comparison).
    Disabled,
}

impl StealPolicy {
    /// True when stealing is enabled in any form.
    pub fn is_enabled(self) -> bool {
        self != StealPolicy::Disabled
    }
}

/// How the CPU lowering executes a compiled pipeline's fused step chain.
///
/// The GPU lowering is unaffected: it already amortizes dispatch across a
/// whole grid-stride kernel, so both modes consume the identical step IR and
/// only the CPU specialization changes shape (one blueprint, N
/// specializations — the HetExchange property this knob preserves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Chunked, selection-vector execution: fixed-size chunks of tuples flow
    /// through the step chain column-at-a-time, filters refine a `u32`
    /// selection index array in autovectorizable tight loops, and terminals
    /// consume the surviving selection in one pass. This is the default.
    #[default]
    Vectorized,
    /// Legacy per-tuple interpretation: every tuple pays the branchy step
    /// dispatch and per-step intermediate handling. Kept selectable as the
    /// differential baseline and the kernel A/B's comparison arm.
    TupleAtATime,
}

impl KernelMode {
    /// Human-readable label used by benches and step summaries.
    pub fn label(self) -> &'static str {
        match self {
            KernelMode::Vectorized => "vectorized",
            KernelMode::TupleAtATime => "tuple-at-a-time",
        }
    }

    /// True for the chunked selection-vector path.
    pub fn is_vectorized(self) -> bool {
        self == KernelMode::Vectorized
    }
}

/// Per-term toggles of the unified routing/admission/steal cost model
/// (`hetex-core`'s `CostModel`).
///
/// PRs 1–3 grew estimation logic organically — an arena-occupancy penalty in
/// the router, an even per-queue staging quota split, a gate term fed by the
/// dependency's committed load, a clock-based steal profitability check —
/// and each closed with a named estimation gap. The cost model consolidates
/// all of it behind one API and ships the four refinements below; each is
/// individually toggleable so differential tests can isolate each term's
/// contribution (all-off reproduces the PR 3 behaviour exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModelConfig {
    /// Term 1 — staging quota shares follow observed per-queue demand
    /// (EWMA of admitted bytes, re-split on a cadence) instead of the even
    /// `budget / consumers_on_node` split.
    pub demand_weighted_quotas: bool,
    /// Term 2 — each cross-node queue push (a remote queue mutex
    /// acquisition) is priced into the consumer's node-axis load, so
    /// control-plane traffic is no longer free when the data plane is.
    pub control_plane_term: bool,
    /// Term 3 — a gated stage's opening time is estimated from the
    /// dependency's *critical path* (the slowest transitive feed's committed
    /// load included), not only the dependency's own committed device load.
    pub gate_critical_path: bool,
    /// Term 4 — outstanding DMA backlog on the relocation route (per-link)
    /// is folded into the steal profitability check, so a rescue that would
    /// queue behind saturated links is priced honestly.
    pub link_congestion_term: bool,
    /// Term 5 — routing block-cost estimates price CPU blocks with the
    /// chunk/selection cost shape of the *executed* kernel mode instead of
    /// always assuming per-tuple dispatch. Off, estimates fall back to the
    /// tuple-at-a-time shape (the pre-vectorization behaviour), overcharging
    /// vectorized blocks uniformly — rows are unaffected either way.
    pub vectorized_cost: bool,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        Self {
            demand_weighted_quotas: true,
            control_plane_term: true,
            gate_critical_path: true,
            link_congestion_term: true,
            vectorized_cost: true,
        }
    }
}

impl CostModelConfig {
    /// Every refinement disabled — the PR 3 estimation behaviour, the
    /// baseline the differential tests toggle against.
    pub fn disabled() -> Self {
        Self {
            demand_weighted_quotas: false,
            control_plane_term: false,
            gate_critical_path: false,
            link_congestion_term: false,
            vectorized_cost: false,
        }
    }

    /// Toggle the demand-weighted staging quota term.
    pub fn with_demand_weighted_quotas(mut self, on: bool) -> Self {
        self.demand_weighted_quotas = on;
        self
    }

    /// Toggle the cross-node control-plane term.
    pub fn with_control_plane_term(mut self, on: bool) -> Self {
        self.control_plane_term = on;
        self
    }

    /// Toggle the critical-path gate estimate.
    pub fn with_gate_critical_path(mut self, on: bool) -> Self {
        self.gate_critical_path = on;
        self
    }

    /// Toggle the link-congestion steal term.
    pub fn with_link_congestion_term(mut self, on: bool) -> Self {
        self.link_congestion_term = on;
        self
    }

    /// Toggle the kernel-mode-aware block-cost estimate.
    pub fn with_vectorized_cost(mut self, on: bool) -> Self {
        self.vectorized_cost = on;
        self
    }
}

/// Toggles of the online-calibration subsystem (`hetex-core`'s
/// `Calibration` machinery): the estimate→observe→correct loop that feeds
/// *measured* device and interconnect behaviour back into routing
/// projections, instead of trusting declared profiles forever.
///
/// The cost-model toggles ([`CostModelConfig`]) select which estimation
/// *terms* exist; this group selects where their *inputs* come from. Both
/// default on; `CalibrationConfig::disabled()` reproduces the pre-calibration
/// (PR 4) behaviour bit-for-bit — nominal device speeds, the QPI-default
/// control-plane constant and the declared PCIe link widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationConfig {
    /// Feed each device's observed-slowdown EWMA (charged vs nominal busy
    /// time, updated at block completion) back into routing projections:
    /// the device-axis term of a consumer's projection is multiplied by its
    /// device's observed slowdown, so a hidden straggler stops *receiving*
    /// new blocks instead of only having them stolen back.
    pub slowdown_feedback: bool,
    /// Use the constants measured by the topology micro-probe at engine
    /// construction (cross-node round-trip for the control-plane charge,
    /// per-link bandwidth for transfer estimates) instead of the hard-coded
    /// QPI default and the links' declared widths.
    pub measured_constants: bool,
    /// Feed the observed-slowdown EWMA into the steal-profitability victim
    /// time estimate: a victim whose device is an observed straggler is
    /// priced at its *observed* per-block cost (nominal cost times the EWMA)
    /// when deciding whether a steal pays off, so rescues from hidden
    /// stragglers are recognized as profitable earlier.
    pub steal_feedback: bool,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self { slowdown_feedback: true, measured_constants: true, steal_feedback: true }
    }
}

impl CalibrationConfig {
    /// Every calibration input disabled — the PR 4 behaviour (nominal
    /// profiles, declared constants), the baseline the differential tests
    /// toggle against.
    pub fn disabled() -> Self {
        Self { slowdown_feedback: false, measured_constants: false, steal_feedback: false }
    }

    /// Toggle the observed-slowdown routing feedback.
    pub fn with_slowdown_feedback(mut self, on: bool) -> Self {
        self.slowdown_feedback = on;
        self
    }

    /// Toggle the probed control-plane/link constants.
    pub fn with_measured_constants(mut self, on: bool) -> Self {
        self.measured_constants = on;
        self
    }

    /// Toggle the observed-slowdown steal-victim pricing.
    pub fn with_steal_feedback(mut self, on: bool) -> Self {
        self.steal_feedback = on;
        self
    }
}

/// Toggles of the fault-tolerance machinery in the pipelined executor.
///
/// All machinery is additionally gated on a `FaultPlan` being attached to the
/// topology — a healthy run (no plan) takes none of these paths and charges
/// no simulated time to any of them, so the fault subsystem is free when
/// unused. These toggles select how much of the recovery ladder engages when
/// faults *do* fire; `FaultConfig::disabled()` reproduces the PR 1 behaviour
/// (any failure poison-cascades the whole query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Retry transient kernel failures in place with bounded, sim-charged
    /// exponential backoff before escalating to a quarantine.
    pub transient_retry: bool,
    /// Quarantine a permanently failed device: stop routing to it, drain its
    /// queued anonymous blocks to surviving same-stage siblings, and restart
    /// from the gate when its blocks were semantically bound (hash/target).
    pub quarantine: bool,
    /// Per-stage watchdog that converts a wedged (no-progress) worker into a
    /// quarantine instead of an unbounded hang.
    pub watchdog: bool,
    /// Engine-level degraded restart: when a query still fails with a
    /// structured `DeviceLost`/`Wedged` error, re-plan and re-execute on the
    /// surviving devices (CPU-only if every GPU is gone).
    pub degraded_restart: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self { transient_retry: true, quarantine: true, watchdog: true, degraded_restart: true }
    }
}

impl FaultConfig {
    /// Every recovery path disabled — the PR 1 poison-cascade behaviour:
    /// the first failure aborts the query with a structured error.
    pub fn disabled() -> Self {
        Self { transient_retry: false, quarantine: false, watchdog: false, degraded_restart: false }
    }

    /// Toggle in-place transient retries.
    pub fn with_transient_retry(mut self, on: bool) -> Self {
        self.transient_retry = on;
        self
    }

    /// Toggle device quarantine and block re-routing.
    pub fn with_quarantine(mut self, on: bool) -> Self {
        self.quarantine = on;
        self
    }

    /// Toggle the per-stage no-progress watchdog.
    pub fn with_watchdog(mut self, on: bool) -> Self {
        self.watchdog = on;
        self
    }

    /// Toggle the engine-level degraded restart.
    pub fn with_degraded_restart(mut self, on: bool) -> Self {
        self.degraded_restart = on;
        self
    }
}

/// Priority class of a query session submitted to the serving layer.
///
/// Admission is strict-priority with FIFO order inside each class: a waiting
/// `High` session is always admitted before any waiting `Normal` one, and no
/// session bypasses an earlier peer of its own class (so admission order is
/// deterministic and starvation within a class is impossible). The running
/// set shares devices by weighted fairness, where each class contributes its
/// [`Self::weight`] as the base multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive sessions: admitted first, largest fairness weight.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Background sessions: admitted last, smallest fairness weight.
    Low,
}

impl Priority {
    /// Admission rank — lower admits first.
    pub fn rank(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Base fairness-weight multiplier of the class (scaled at run time by
    /// the query's estimated remaining cost).
    pub fn weight(self) -> f64 {
        match self {
            Priority::High => 4.0,
            Priority::Normal => 2.0,
            Priority::Low => 1.0,
        }
    }

    /// Human-readable label used by benches and reports.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Configuration of the multi-query serving layer (`hetex-engine`'s
/// `QueryServer`).
///
/// Default **off**: a plain [`EngineConfig::default`] never engages the
/// serving machinery, so the single-query `Proteus::execute` path stays
/// bit-identical to the pre-serving engine (asserted by the differential
/// suite). `ServeConfig::serving()` turns it on with the default pool and
/// admission budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Master switch of the serving layer.
    pub enabled: bool,
    /// Size of the shared worker pool: the maximum number of query sessions
    /// executing concurrently (admission may hold it lower).
    pub workers: usize,
    /// Per-memory-node admission byte budget. Every admitted session holds a
    /// staging lease of its estimated peak footprint on every node for its
    /// whole run — the admission token — so the sum of running sessions'
    /// footprints never exceeds this budget on any node. `None` sizes the
    /// budget to [`DEFAULT_SERVE_ADMISSION_BYTES`].
    pub admission_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl ServeConfig {
    /// The serving layer switched off — the default, single-query behaviour.
    pub fn disabled() -> Self {
        Self { enabled: false, workers: DEFAULT_SERVE_WORKERS, admission_bytes: None }
    }

    /// The serving layer switched on with the default worker pool and
    /// admission budget.
    pub fn serving() -> Self {
        Self { enabled: true, ..Self::disabled() }
    }

    /// Set the shared worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set (or reset to the default, with `None`) the per-node admission
    /// byte budget.
    pub fn with_admission_bytes(mut self, bytes: Option<u64>) -> Self {
        self.admission_bytes = bytes;
        self
    }

    /// The effective per-node admission budget.
    pub fn effective_admission_bytes(&self) -> u64 {
        self.admission_bytes.unwrap_or(DEFAULT_SERVE_ADMISSION_BYTES)
    }
}

/// Default shared worker-pool size of the serving layer.
pub const DEFAULT_SERVE_WORKERS: usize = 4;

/// Default per-memory-node admission byte budget of the serving layer:
/// four default staging budgets, so four default-configured sessions can
/// hold admission tokens concurrently on every node.
pub const DEFAULT_SERVE_ADMISSION_BYTES: u64 = 4 * DEFAULT_STAGING_BYTES;

/// Configuration of feedback-driven plan re-optimization (`hetex-core`'s
/// `reopt` module).
///
/// Default **off**: a plain [`EngineConfig::default`] never fingerprints a
/// plan, never consults the feedback cache and never rewrites a placement, so
/// the execute path stays bit-identical to the pre-reopt engine (asserted by
/// the differential suite). `ReoptConfig::enabled()` turns the whole loop on:
/// every successful run distills a `PlanFeedback` record into the engine's
/// (or server's) feedback cache, and a repeated query's second run searches
/// the placement/DOP plan space costed by that record's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReoptConfig {
    /// Master switch of the re-optimization loop.
    pub enabled: bool,
    /// Search over the device-placement axis (`CpuOnly`/`GpuOnly`/`Hybrid`).
    /// Off, candidates keep the submitted configuration's target.
    pub search_target: bool,
    /// Search over the degree-of-parallelism axis (CPU ladder, GPU counts).
    /// Off, candidates keep the submitted configuration's DOPs.
    pub search_dop: bool,
    /// Minimum estimated relative gain (0.05 = 5%) a candidate must show
    /// over the incumbent before the reoptimizer rewrites the plan. Guards
    /// against churning the placement on estimation noise.
    pub min_gain: f64,
}

impl Default for ReoptConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl ReoptConfig {
    /// Re-optimization switched off — the default, frozen-plan behaviour.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            search_target: true,
            search_dop: true,
            min_gain: DEFAULT_REOPT_MIN_GAIN,
        }
    }

    /// The full loop switched on: both search axes and the default gain bar.
    pub fn enabled() -> Self {
        Self { enabled: true, ..Self::disabled() }
    }

    /// Toggle the device-placement search axis.
    pub fn with_search_target(mut self, on: bool) -> Self {
        self.search_target = on;
        self
    }

    /// Toggle the degree-of-parallelism search axis.
    pub fn with_search_dop(mut self, on: bool) -> Self {
        self.search_dop = on;
        self
    }

    /// Set the minimum estimated relative gain required to replan.
    pub fn with_min_gain(mut self, min_gain: f64) -> Self {
        self.min_gain = min_gain;
        self
    }
}

/// Default minimum estimated relative gain (5%) the reoptimizer requires
/// before rewriting a placement.
pub const DEFAULT_REOPT_MIN_GAIN: f64 = 0.05;

/// Initial placement of base-table data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlacement {
    /// Columns reside in CPU (socket-interleaved) memory — the SF1000 setup.
    CpuResident,
    /// Columns are partitioned across the GPUs' device memories — the SF100 setup.
    GpuResident,
}

/// Engine configuration. `Default` reproduces the paper's server with all
/// devices enabled and CPU-resident data.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Which device classes execute the relational part of the plan.
    pub target: ExecutionTarget,
    /// Number of CPU worker threads used for relational pipelines.
    pub cpu_dop: usize,
    /// Number of GPUs used for relational pipelines.
    pub gpu_dop: usize,
    /// Tuples per block produced by pack/segmenter operators.
    pub block_capacity: usize,
    /// Where base tables start out.
    pub placement: DataPlacement,
    /// Whether HetExchange operators are inserted at all. Disabling them
    /// reproduces the paper's "without HetExchange" single-device baselines
    /// used in Figures 7 and 8.
    pub hetexchange_enabled: bool,
    /// Byte multiplier applied by the benchmark harness when the physical data
    /// is a scaled-down stand-in for a larger nominal scale factor.
    pub scale_weight: f64,
    /// Per-table overrides of `scale_weight`. SSB tables scale differently
    /// with the scale factor (the `date` dimension has a fixed size, `part`
    /// grows logarithmically), so the harness sets one weight per table.
    pub table_weights: Vec<(String, f64)>,
    /// How stages are scheduled by the executor.
    pub execution_mode: ExecutionMode,
    /// Bound (in blocks) of each consumer queue in pipelined mode; producers
    /// block once a queue is full. This is a control-plane cap on *handles*;
    /// the data-plane bound on staged *bytes* is `staging_bytes`. `None`
    /// leaves queues unbounded.
    pub queue_capacity: Option<usize>,
    /// Per-memory-node staging byte budget in pipelined mode (§4.3). Every
    /// block admitted into a consumer queue is backed by a `BlockLease` of its
    /// byte size drawn from the destination node's arena, so large blocks
    /// count for more and back-pressure reflects real staging memory. `None`
    /// disables byte governance (PR 1 behaviour: handle-count bounds only).
    pub staging_bytes: Option<u64>,
    /// Adaptive re-routing policy of the pipelined executor: whether idle
    /// workers steal queued blocks from overloaded same-stage siblings.
    pub steal_policy: StealPolicy,
    /// Per-term toggles of the unified cost model driving routing
    /// projections, staging quota splits and steal profitability.
    pub cost_model: CostModelConfig,
    /// Online-calibration toggles: whether routing projections consume the
    /// observed-slowdown feedback and the probed topology constants.
    pub calibration: CalibrationConfig,
    /// Fault-tolerance toggles: how much of the recovery ladder (retry,
    /// quarantine, watchdog, degraded restart) engages when injected or real
    /// faults fire. Inert when the topology carries no fault plan.
    pub fault: FaultConfig,
    /// How CPU pipeline instances execute their fused step chain: the
    /// chunked selection-vector lowering (default) or the legacy per-tuple
    /// loop. Result rows are byte-identical in both modes; only the hot-path
    /// shape (and therefore the charged compute work) differs.
    pub kernel_mode: KernelMode,
    /// What to do with the findings of the pre-execution static analysis
    /// pass: reject on errors (default), warn-and-run, or skip the pass.
    pub analysis: AnalysisMode,
    /// Multi-query serving toggles: admission budget and shared worker pool
    /// of the `QueryServer` session layer. Off by default — the single-query
    /// `Proteus::execute` path never consults this group.
    pub serve: ServeConfig,
    /// Feedback-driven plan re-optimization toggles: whether repeated
    /// queries are re-planned from their previous runs' measurements. Off by
    /// default — a disabled group never fingerprints a plan or touches the
    /// feedback cache.
    pub reopt: ReoptConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            target: ExecutionTarget::Hybrid,
            cpu_dop: 24,
            gpu_dop: 2,
            block_capacity: crate::block::DEFAULT_BLOCK_CAPACITY,
            placement: DataPlacement::CpuResident,
            hetexchange_enabled: true,
            scale_weight: 1.0,
            table_weights: Vec::new(),
            execution_mode: ExecutionMode::default(),
            queue_capacity: Some(DEFAULT_QUEUE_CAPACITY),
            staging_bytes: Some(DEFAULT_STAGING_BYTES),
            steal_policy: StealPolicy::default(),
            cost_model: CostModelConfig::default(),
            calibration: CalibrationConfig::default(),
            fault: FaultConfig::default(),
            kernel_mode: KernelMode::default(),
            analysis: AnalysisMode::default(),
            serve: ServeConfig::default(),
            reopt: ReoptConfig::default(),
        }
    }
}

/// Default bound (in blocks) of each pipelined consumer queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 16;

/// Default per-memory-node staging byte budget (64 MiB). Generous relative to
/// physical block sizes (staging charges are physical bytes, not
/// scale-extrapolated ones), so governance costs nothing on the happy path
/// while still bounding runaway staging.
pub const DEFAULT_STAGING_BYTES: u64 = 64 * 1024 * 1024;

/// Estimated worst-case bytes per tuple used when sizing staging floors.
/// Blocks in this workspace carry a handful of 4/8-byte columns — join
/// outputs concatenate probe and build payloads, so 32 bytes per tuple is
/// the planning estimate the staging validation uses (the arenas themselves
/// always charge exact physical bytes).
pub const EST_MAX_TUPLE_BYTES: usize = 32;

impl EngineConfig {
    /// CPU-only configuration with the given degree of parallelism.
    pub fn cpu_only(cpu_dop: usize) -> Self {
        Self { target: ExecutionTarget::CpuOnly, cpu_dop, gpu_dop: 0, ..Self::default() }
    }

    /// GPU-only configuration with the given number of GPUs.
    pub fn gpu_only(gpu_dop: usize) -> Self {
        Self { target: ExecutionTarget::GpuOnly, cpu_dop: 0, gpu_dop, ..Self::default() }
    }

    /// Hybrid configuration using `cpu_dop` cores and `gpu_dop` GPUs.
    pub fn hybrid(cpu_dop: usize, gpu_dop: usize) -> Self {
        Self { target: ExecutionTarget::Hybrid, cpu_dop, gpu_dop, ..Self::default() }
    }

    /// Total degree of parallelism of the main (relational) part of the plan.
    pub fn total_dop(&self) -> usize {
        self.cpu_dop + self.gpu_dop
    }

    /// The scale weight applied to scans of `table`: the per-table override if
    /// one was configured, otherwise the global `scale_weight`.
    pub fn weight_for(&self, table: &str) -> f64 {
        self.table_weights
            .iter()
            .find(|(name, _)| name == table)
            .map(|(_, w)| *w)
            .unwrap_or(self.scale_weight)
    }

    /// Set a per-table weight override.
    pub fn with_table_weight(mut self, table: impl Into<String>, weight: f64) -> Self {
        self.table_weights.push((table.into(), weight));
        self
    }

    /// Select the executor's stage-scheduling mode.
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.execution_mode = mode;
        self
    }

    /// Set (or disable, with `None`) the per-node staging byte budget.
    pub fn with_staging_bytes(mut self, bytes: Option<u64>) -> Self {
        self.staging_bytes = bytes;
        self
    }

    /// Select the pipelined executor's work-stealing policy.
    pub fn with_steal_policy(mut self, policy: StealPolicy) -> Self {
        self.steal_policy = policy;
        self
    }

    /// Select which cost-model terms are active.
    pub fn with_cost_model(mut self, cost_model: CostModelConfig) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Select which calibration inputs feed the cost model.
    pub fn with_calibration(mut self, calibration: CalibrationConfig) -> Self {
        self.calibration = calibration;
        self
    }

    /// Select which fault-recovery paths are active.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Select the CPU kernel execution mode.
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Select what the engine does with static-analysis findings.
    pub fn with_analysis(mut self, mode: AnalysisMode) -> Self {
        self.analysis = mode;
        self
    }

    /// Select the multi-query serving toggles.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Select the feedback-driven re-optimization toggles.
    pub fn with_reopt(mut self, reopt: ReoptConfig) -> Self {
        self.reopt = reopt;
        self
    }

    /// Start building a configuration with construction-time validation.
    /// Unlike the field-struct path (where an inconsistent target/DOP combo
    /// only surfaces when the engine calls [`Self::validate`]),
    /// [`EngineConfigBuilder::build`] rejects invalid combinations — a
    /// `CpuOnly` target with a nonzero `gpu_dop`, a `GpuOnly` target with
    /// CPU workers — at the construction site.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::new()
    }

    /// Estimated peak per-node staging footprint of one query under this
    /// configuration — the byte size of the admission token the serving
    /// layer holds for the query's whole run. Equal to the query's own
    /// per-node staging budget when governance is on (the executor's arenas
    /// cannot lease more than that), the staging floor otherwise.
    pub fn est_serve_footprint_bytes(&self) -> u64 {
        self.staging_bytes.unwrap_or_else(|| self.min_staging_bytes())
    }

    /// Estimated size in bytes of a maximum-size block under this
    /// configuration ([`EST_MAX_TUPLE_BYTES`] per tuple).
    pub fn est_max_block_bytes(&self) -> u64 {
        (self.block_capacity.max(1) * EST_MAX_TUPLE_BYTES) as u64
    }

    /// Smallest valid per-node staging budget: one estimated maximum-size
    /// block per active consumer. Below this a node whose arena hosts every
    /// consumer could not stage even one block per instance, and the
    /// executor's per-queue byte quotas would shrink below a single block —
    /// the precondition of the lease-ordering deadlock-freedom argument
    /// (see DESIGN.md "Staging memory governance").
    pub fn min_staging_bytes(&self) -> u64 {
        self.est_max_block_bytes() * self.total_dop().max(1) as u64
    }

    /// Validate that the configuration is internally consistent.
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::HetError;
        match self.target {
            ExecutionTarget::CpuOnly if self.cpu_dop == 0 => {
                Err(HetError::Config("CpuOnly target requires cpu_dop > 0".into()))
            }
            ExecutionTarget::GpuOnly if self.gpu_dop == 0 => {
                Err(HetError::Config("GpuOnly target requires gpu_dop > 0".into()))
            }
            ExecutionTarget::Hybrid if self.total_dop() == 0 => {
                Err(HetError::Config("Hybrid target requires at least one device".into()))
            }
            _ if self.block_capacity == 0 => {
                Err(HetError::Config("block_capacity must be positive".into()))
            }
            _ if self.scale_weight <= 0.0 => {
                Err(HetError::Config("scale_weight must be positive".into()))
            }
            _ if self.queue_capacity == Some(0) => {
                Err(HetError::Config("queue_capacity must be positive when bounded".into()))
            }
            _ if self.serve.enabled && self.serve.workers == 0 => {
                Err(HetError::Config("serving requires at least one worker".into()))
            }
            _ if self.serve.enabled && self.serve.admission_bytes == Some(0) => {
                Err(HetError::Config("serving admission budget must be positive".into()))
            }
            _ if self.serve.enabled
                && self.serve.effective_admission_bytes() < self.est_serve_footprint_bytes() =>
            {
                Err(HetError::Config(format!(
                    "serving admission budget ({}) cannot admit even one query of this \
                     configuration (estimated peak staging footprint {} bytes per node)",
                    self.serve.effective_admission_bytes(),
                    self.est_serve_footprint_bytes()
                )))
            }
            _ if self.reopt.enabled
                && !(self.reopt.min_gain.is_finite()
                    && (0.0..1.0).contains(&self.reopt.min_gain)) =>
            {
                Err(HetError::Config(format!(
                    "reopt min_gain must be a finite fraction in [0, 1), got {}",
                    self.reopt.min_gain
                )))
            }
            _ if self.staging_bytes.is_some_and(|b| b < self.min_staging_bytes()) => {
                Err(HetError::Config(format!(
                    "staging_bytes ({}) must cover at least one maximum-size block per active \
                     consumer: {} consumers x {} bytes/block (block_capacity {} x {} bytes/tuple) \
                     = {} bytes minimum",
                    self.staging_bytes.unwrap_or(0),
                    self.total_dop().max(1),
                    self.est_max_block_bytes(),
                    self.block_capacity,
                    EST_MAX_TUPLE_BYTES,
                    self.min_staging_bytes()
                )))
            }
            _ => Ok(()),
        }
    }

    /// The configuration this one degrades to when only `cpus` CPU cores and
    /// `gpus` GPUs survive a device loss: DOPs clamp to the survivors, a
    /// GPU-dependent target falls back to CPU-only when every GPU is gone,
    /// and `None` means no degraded plan exists (no survivors can host the
    /// target). This is the clamping logic the engine's degraded-restart
    /// ladder applies between attempts, lifted out of the execute path so the
    /// same rules are visible (and testable) at the configuration layer.
    pub fn degraded_for(&self, cpus: usize, gpus: usize) -> Option<EngineConfig> {
        if cpus == 0 && gpus == 0 {
            return None;
        }
        let mut cfg = self.clone();
        cfg.gpu_dop = cfg.gpu_dop.min(gpus);
        cfg.cpu_dop = cfg.cpu_dop.min(cpus);
        if cfg.gpu_dop == 0
            && matches!(cfg.target, ExecutionTarget::GpuOnly | ExecutionTarget::Hybrid)
        {
            // Every surviving plan must run somewhere: fall back to CPU-only.
            cfg.target = ExecutionTarget::CpuOnly;
            cfg.gpu_dop = 0;
            cfg.cpu_dop = cfg.cpu_dop.max(1).min(cpus);
        }
        if cfg.cpu_dop == 0 && cfg.target == ExecutionTarget::CpuOnly {
            return None;
        }
        Some(cfg)
    }
}

/// Builder for [`EngineConfig`] with construction-time validation.
///
/// The ad-hoc constructors ([`EngineConfig::cpu_only`] and friends) remain as
/// conveniences, but they accept any DOP combination and defer every check to
/// [`EngineConfig::validate`] deep inside the engine. The builder rejects
/// inconsistent combinations — a `CpuOnly` target carrying GPU workers, a
/// `GpuOnly` target carrying CPU workers, a zero-DOP target — when
/// [`Self::build`] is called, so misconfigurations fail at the construction
/// site with the same structured `HetError::Config` the engine would raise.
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// A builder seeded with [`EngineConfig::default`].
    pub fn new() -> Self {
        Self { config: EngineConfig::default() }
    }

    /// Select the execution target. Selecting a single-device target also
    /// normalizes the other class's DOP to zero (mirroring the ad-hoc
    /// constructors), so set DOPs *after* the target.
    pub fn target(mut self, target: ExecutionTarget) -> Self {
        self.config.target = target;
        match target {
            ExecutionTarget::CpuOnly => self.config.gpu_dop = 0,
            ExecutionTarget::GpuOnly => self.config.cpu_dop = 0,
            ExecutionTarget::Hybrid => {}
        }
        self
    }

    /// Set the CPU degree of parallelism.
    pub fn cpu_dop(mut self, dop: usize) -> Self {
        self.config.cpu_dop = dop;
        self
    }

    /// Set the GPU degree of parallelism.
    pub fn gpu_dop(mut self, dop: usize) -> Self {
        self.config.gpu_dop = dop;
        self
    }

    /// Set the block capacity (tuples per block).
    pub fn block_capacity(mut self, capacity: usize) -> Self {
        self.config.block_capacity = capacity;
        self
    }

    /// Set the base-table placement.
    pub fn placement(mut self, placement: DataPlacement) -> Self {
        self.config.placement = placement;
        self
    }

    /// Set the global scale-extrapolation weight.
    pub fn scale_weight(mut self, weight: f64) -> Self {
        self.config.scale_weight = weight;
        self
    }

    /// Add a per-table weight override.
    pub fn table_weight(mut self, table: impl Into<String>, weight: f64) -> Self {
        self.config.table_weights.push((table.into(), weight));
        self
    }

    /// Select the executor's stage-scheduling mode.
    pub fn execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.config.execution_mode = mode;
        self
    }

    /// Set (or unbound, with `None`) the per-queue handle capacity.
    pub fn queue_capacity(mut self, capacity: Option<usize>) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Set (or disable, with `None`) the per-node staging byte budget.
    pub fn staging_bytes(mut self, bytes: Option<u64>) -> Self {
        self.config.staging_bytes = bytes;
        self
    }

    /// Select the pipelined executor's work-stealing policy.
    pub fn steal_policy(mut self, policy: StealPolicy) -> Self {
        self.config.steal_policy = policy;
        self
    }

    /// Select which cost-model terms are active.
    pub fn cost_model(mut self, cost_model: CostModelConfig) -> Self {
        self.config.cost_model = cost_model;
        self
    }

    /// Select which calibration inputs feed the cost model.
    pub fn calibration(mut self, calibration: CalibrationConfig) -> Self {
        self.config.calibration = calibration;
        self
    }

    /// Select which fault-recovery paths are active.
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.config.fault = fault;
        self
    }

    /// Select the CPU kernel execution mode.
    pub fn kernel_mode(mut self, mode: KernelMode) -> Self {
        self.config.kernel_mode = mode;
        self
    }

    /// Select what the engine does with static-analysis findings.
    pub fn analysis(mut self, mode: AnalysisMode) -> Self {
        self.config.analysis = mode;
        self
    }

    /// Select the multi-query serving toggles.
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.config.serve = serve;
        self
    }

    /// Select the feedback-driven re-optimization toggles.
    pub fn reopt(mut self, reopt: ReoptConfig) -> Self {
        self.config.reopt = reopt;
        self
    }

    /// Validate and produce the configuration. Beyond
    /// [`EngineConfig::validate`], the builder rejects DOPs on a device
    /// class the target excludes — combinations the field-struct path
    /// silently carries until the parallelizer ignores them.
    pub fn build(self) -> crate::error::Result<EngineConfig> {
        use crate::error::HetError;
        match self.config.target {
            ExecutionTarget::CpuOnly if self.config.gpu_dop > 0 => {
                return Err(HetError::Config(format!(
                    "CpuOnly target cannot carry gpu_dop = {}; use Hybrid or drop the GPUs",
                    self.config.gpu_dop
                )));
            }
            ExecutionTarget::GpuOnly if self.config.cpu_dop > 0 => {
                return Err(HetError::Config(format!(
                    "GpuOnly target cannot carry cpu_dop = {}; use Hybrid or drop the cores",
                    self.config.cpu_dop
                )));
            }
            _ => {}
        }
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_hybrid() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.target, ExecutionTarget::Hybrid);
        cfg.validate().unwrap();
        assert_eq!(cfg.total_dop(), 26);
    }

    #[test]
    fn constructors_set_targets() {
        assert_eq!(EngineConfig::cpu_only(8).target, ExecutionTarget::CpuOnly);
        assert_eq!(EngineConfig::gpu_only(2).gpu_dop, 2);
        assert_eq!(EngineConfig::hybrid(4, 1).total_dop(), 5);
    }

    #[test]
    fn validation_rejects_inconsistent_configs() {
        assert!(EngineConfig::cpu_only(0).validate().is_err());
        assert!(EngineConfig::gpu_only(0).validate().is_err());
        let cfg = EngineConfig { block_capacity: 0, ..EngineConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = EngineConfig { scale_weight: 0.0, ..EngineConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn staging_budget_must_cover_one_block_per_consumer() {
        // One estimated max-size block per active consumer is the floor.
        let cfg = EngineConfig::hybrid(8, 2);
        let floor = cfg.min_staging_bytes();
        assert_eq!(floor, cfg.est_max_block_bytes() * 10);
        assert!(cfg.clone().with_staging_bytes(Some(floor)).validate().is_ok());
        let err = cfg.clone().with_staging_bytes(Some(floor - 1)).validate().unwrap_err();
        assert_eq!(err.category(), "config");
        assert!(err.to_string().contains("per active consumer"), "descriptive: {err}");
        // Disabling governance is always valid.
        cfg.with_staging_bytes(None).validate().unwrap();
        // The default budget is valid for the default (hybrid 24+2) config.
        EngineConfig::default().validate().unwrap();
    }

    #[test]
    fn stealing_is_on_by_default_and_selectable() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.steal_policy, StealPolicy::TailMostLoaded);
        assert!(cfg.steal_policy.is_enabled());
        let off = cfg.with_steal_policy(StealPolicy::Disabled);
        assert!(!off.steal_policy.is_enabled());
        off.validate().unwrap();
    }

    #[test]
    fn cost_model_defaults_on_and_toggles_individually() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.cost_model, CostModelConfig::default());
        assert!(cfg.cost_model.demand_weighted_quotas);
        assert!(cfg.cost_model.control_plane_term);
        assert!(cfg.cost_model.gate_critical_path);
        assert!(cfg.cost_model.link_congestion_term);
        assert!(cfg.cost_model.vectorized_cost);
        let off = CostModelConfig::disabled();
        assert!(!off.demand_weighted_quotas && !off.link_congestion_term);
        assert!(!off.vectorized_cost);
        let vec_only = CostModelConfig::disabled().with_vectorized_cost(true);
        assert!(vec_only.vectorized_cost && !vec_only.demand_weighted_quotas);
        // Each term toggles independently of the others.
        let one = CostModelConfig::disabled().with_gate_critical_path(true);
        assert!(one.gate_critical_path);
        assert!(!one.control_plane_term && !one.demand_weighted_quotas);
        let cfg = cfg.with_cost_model(off);
        assert_eq!(cfg.cost_model, CostModelConfig::disabled());
        cfg.validate().unwrap();
    }

    #[test]
    fn calibration_defaults_on_and_toggles_individually() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.calibration, CalibrationConfig::default());
        assert!(cfg.calibration.slowdown_feedback);
        assert!(cfg.calibration.measured_constants);
        assert!(cfg.calibration.steal_feedback);
        let off = CalibrationConfig::disabled();
        assert!(!off.slowdown_feedback && !off.measured_constants && !off.steal_feedback);
        // Each input toggles independently of the others.
        let one = CalibrationConfig::disabled().with_slowdown_feedback(true);
        assert!(one.slowdown_feedback && !one.measured_constants && !one.steal_feedback);
        let other = CalibrationConfig::disabled().with_measured_constants(true);
        assert!(!other.slowdown_feedback && other.measured_constants);
        let third = CalibrationConfig::disabled().with_steal_feedback(true);
        assert!(third.steal_feedback && !third.slowdown_feedback);
        let cfg = cfg.with_calibration(off);
        assert_eq!(cfg.calibration, CalibrationConfig::disabled());
        cfg.validate().unwrap();
    }

    #[test]
    fn fault_recovery_defaults_on_and_toggles_individually() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.fault, FaultConfig::default());
        assert!(cfg.fault.transient_retry && cfg.fault.quarantine);
        assert!(cfg.fault.watchdog && cfg.fault.degraded_restart);
        let off = FaultConfig::disabled();
        assert!(!off.transient_retry && !off.quarantine);
        assert!(!off.watchdog && !off.degraded_restart);
        let one = FaultConfig::disabled().with_quarantine(true);
        assert!(one.quarantine && !one.transient_retry && !one.watchdog);
        let two = FaultConfig::disabled().with_watchdog(true).with_transient_retry(true);
        assert!(two.watchdog && two.transient_retry && !two.degraded_restart);
        let three = FaultConfig::default().with_degraded_restart(false);
        assert!(!three.degraded_restart && three.quarantine);
        let cfg = cfg.with_fault(off);
        assert_eq!(cfg.fault, FaultConfig::disabled());
        cfg.validate().unwrap();
    }

    #[test]
    fn serving_defaults_off_and_toggles_independently() {
        // Default off: a plain config never engages the serving layer.
        let cfg = EngineConfig::default();
        assert_eq!(cfg.serve, ServeConfig::disabled());
        assert!(!cfg.serve.enabled);
        cfg.validate().unwrap();
        // Switched on: defaults are a valid pool and budget.
        let on = EngineConfig::default().with_serve(ServeConfig::serving());
        assert!(on.serve.enabled);
        assert_eq!(on.serve.workers, DEFAULT_SERVE_WORKERS);
        assert_eq!(on.serve.effective_admission_bytes(), DEFAULT_SERVE_ADMISSION_BYTES);
        on.validate().unwrap();
        // Knobs toggle independently.
        let tuned = ServeConfig::serving().with_workers(2).with_admission_bytes(Some(1 << 30));
        assert!(tuned.enabled && tuned.workers == 2);
        assert_eq!(tuned.effective_admission_bytes(), 1 << 30);
        // Invalid serving configs are rejected — but only when enabled.
        let zero_workers =
            EngineConfig::default().with_serve(ServeConfig::serving().with_workers(0));
        assert_eq!(zero_workers.validate().unwrap_err().category(), "config");
        let no_budget = EngineConfig::default()
            .with_serve(ServeConfig::serving().with_admission_bytes(Some(0)));
        assert_eq!(no_budget.validate().unwrap_err().category(), "config");
        let off_zero_workers =
            EngineConfig::default().with_serve(ServeConfig::disabled().with_workers(0));
        off_zero_workers.validate().unwrap();
        // A budget that cannot admit even one query is rejected.
        let starved = EngineConfig::default()
            .with_serve(ServeConfig::serving().with_admission_bytes(Some(1024)));
        let err = starved.validate().unwrap_err();
        assert!(err.to_string().contains("cannot admit"), "descriptive: {err}");
    }

    #[test]
    fn priority_classes_rank_and_weigh() {
        assert_eq!(Priority::default(), Priority::Normal);
        assert!(Priority::High.rank() < Priority::Normal.rank());
        assert!(Priority::Normal.rank() < Priority::Low.rank());
        assert!(Priority::High.weight() > Priority::Normal.weight());
        assert!(Priority::Normal.weight() > Priority::Low.weight());
        assert_eq!(Priority::High.label(), "high");
        assert_eq!(Priority::Low.label(), "low");
    }

    #[test]
    fn serve_footprint_follows_the_staging_budget() {
        let cfg = EngineConfig::hybrid(8, 2);
        assert_eq!(cfg.est_serve_footprint_bytes(), DEFAULT_STAGING_BYTES);
        let tight = cfg.clone().with_staging_bytes(Some(cfg.min_staging_bytes()));
        assert_eq!(tight.est_serve_footprint_bytes(), cfg.min_staging_bytes());
        let ungoverned = cfg.with_staging_bytes(None);
        assert_eq!(ungoverned.est_serve_footprint_bytes(), ungoverned.min_staging_bytes());
    }

    #[test]
    fn per_table_weights_override_the_global_weight() {
        let cfg = EngineConfig { scale_weight: 100.0, ..EngineConfig::default() };
        let cfg = cfg.with_table_weight("date", 1.0).with_table_weight("part", 7.5);
        assert_eq!(cfg.weight_for("lineorder"), 100.0);
        assert_eq!(cfg.weight_for("date"), 1.0);
        assert_eq!(cfg.weight_for("part"), 7.5);
        cfg.validate().unwrap();
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(ExecutionTarget::CpuOnly.label(), "Proteus CPUs");
        assert_eq!(ExecutionTarget::Hybrid.label(), "Proteus Hybrid");
    }

    #[test]
    fn reopt_defaults_off_and_toggles_independently() {
        // Default off: a plain config never engages the reoptimizer.
        let cfg = EngineConfig::default();
        assert_eq!(cfg.reopt, ReoptConfig::disabled());
        assert!(!cfg.reopt.enabled);
        cfg.validate().unwrap();
        // Switched on: both axes searched, default gain bar.
        let on = EngineConfig::default().with_reopt(ReoptConfig::enabled());
        assert!(on.reopt.enabled && on.reopt.search_target && on.reopt.search_dop);
        assert_eq!(on.reopt.min_gain, DEFAULT_REOPT_MIN_GAIN);
        on.validate().unwrap();
        // Axes toggle independently.
        let tuned = ReoptConfig::enabled().with_search_target(false).with_min_gain(0.2);
        assert!(tuned.enabled && !tuned.search_target && tuned.search_dop);
        assert_eq!(tuned.min_gain, 0.2);
        // Invalid gain bars are rejected — but only when enabled.
        let bad = EngineConfig::default().with_reopt(ReoptConfig::enabled().with_min_gain(1.5));
        assert_eq!(bad.validate().unwrap_err().category(), "config");
        let nan =
            EngineConfig::default().with_reopt(ReoptConfig::enabled().with_min_gain(f64::NAN));
        assert!(nan.validate().is_err());
        let off_bad =
            EngineConfig::default().with_reopt(ReoptConfig::disabled().with_min_gain(9.0));
        off_bad.validate().unwrap();
    }

    #[test]
    fn builder_rejects_invalid_target_dop_combinations() {
        // A consistent build passes and matches the ad-hoc constructor.
        let built =
            EngineConfig::builder().target(ExecutionTarget::CpuOnly).cpu_dop(8).build().unwrap();
        assert_eq!(built, EngineConfig::cpu_only(8));
        // Cross-class DOPs are rejected at construction, not deep in the
        // engine: CpuOnly cannot carry GPU workers and vice versa.
        let err = EngineConfig::builder()
            .target(ExecutionTarget::CpuOnly)
            .cpu_dop(8)
            .gpu_dop(2)
            .build()
            .unwrap_err();
        assert_eq!(err.category(), "config");
        assert!(err.to_string().contains("gpu_dop"), "descriptive: {err}");
        let err = EngineConfig::builder()
            .target(ExecutionTarget::GpuOnly)
            .gpu_dop(2)
            .cpu_dop(4)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cpu_dop"), "descriptive: {err}");
        // Zero-DOP targets fail the shared validation.
        assert!(EngineConfig::builder()
            .target(ExecutionTarget::GpuOnly)
            .gpu_dop(0)
            .build()
            .is_err());
        // Selecting a single-device target normalizes the other class.
        let normalized =
            EngineConfig::builder().target(ExecutionTarget::GpuOnly).gpu_dop(1).build().unwrap();
        assert_eq!(normalized.cpu_dop, 0);
        // The full knob surface is reachable through the builder.
        let tuned = EngineConfig::builder()
            .target(ExecutionTarget::Hybrid)
            .cpu_dop(4)
            .gpu_dop(1)
            .block_capacity(512)
            .scale_weight(10.0)
            .table_weight("dim", 2.0)
            .execution_mode(ExecutionMode::Pipelined)
            .queue_capacity(Some(8))
            .staging_bytes(None)
            .steal_policy(StealPolicy::Disabled)
            .cost_model(CostModelConfig::disabled())
            .calibration(CalibrationConfig::disabled())
            .fault(FaultConfig::disabled())
            .kernel_mode(KernelMode::TupleAtATime)
            .analysis(AnalysisMode::Warn)
            .serve(ServeConfig::serving())
            .reopt(ReoptConfig::enabled())
            .placement(DataPlacement::CpuResident)
            .build()
            .unwrap();
        assert_eq!(tuned.block_capacity, 512);
        assert!(tuned.reopt.enabled && tuned.serve.enabled);
        assert_eq!(tuned.weight_for("dim"), 2.0);
    }

    #[test]
    fn degraded_for_clamps_to_survivors() {
        let hybrid = EngineConfig::hybrid(8, 2);
        // No survivors at all: no degraded plan.
        assert!(hybrid.degraded_for(0, 0).is_none());
        // GPUs gone: hybrid falls back to CPU-only on the surviving cores.
        let cpu_fallback = hybrid.degraded_for(4, 0).unwrap();
        assert_eq!(cpu_fallback.target, ExecutionTarget::CpuOnly);
        assert_eq!((cpu_fallback.cpu_dop, cpu_fallback.gpu_dop), (4, 0));
        cpu_fallback.validate().unwrap();
        // Partial survivors clamp without changing the target.
        let clamped = hybrid.degraded_for(24, 1).unwrap();
        assert_eq!(clamped.target, ExecutionTarget::Hybrid);
        assert_eq!((clamped.cpu_dop, clamped.gpu_dop), (8, 1));
        // A CPU-only plan with no surviving cores has nowhere to run.
        assert!(EngineConfig::cpu_only(8).degraded_for(0, 2).is_none());
        // GPU-only with GPUs gone but cores alive falls back to the cores.
        let gpu_fallback = EngineConfig::gpu_only(2).degraded_for(6, 0).unwrap();
        assert_eq!(gpu_fallback.target, ExecutionTarget::CpuOnly);
        assert_eq!((gpu_fallback.cpu_dop, gpu_fallback.gpu_dop), (1, 0));
        gpu_fallback.validate().unwrap();
    }

    #[test]
    fn kernel_mode_defaults_vectorized_and_is_selectable() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.kernel_mode, KernelMode::Vectorized);
        assert!(cfg.kernel_mode.is_vectorized());
        assert_eq!(cfg.kernel_mode.label(), "vectorized");
        let legacy = cfg.with_kernel_mode(KernelMode::TupleAtATime);
        assert!(!legacy.kernel_mode.is_vectorized());
        assert_eq!(legacy.kernel_mode.label(), "tuple-at-a-time");
        legacy.validate().unwrap();
    }
}
