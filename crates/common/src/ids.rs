//! Strongly-typed identifiers used throughout the workspace.
//!
//! Keeping the identifiers as distinct newtypes (instead of bare `usize`s)
//! prevents the classic bug family where a memory-node index is passed where a
//! table index was expected — a mistake that is very easy to make in a system
//! that juggles devices, memory nodes, pipelines and blocks at the same time.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub usize);

        impl $name {
            /// Construct an identifier from its raw index.
            pub const fn new(raw: usize) -> Self {
                Self(raw)
            }

            /// The raw index wrapped by the identifier.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of a memory node: a CPU socket's DRAM or one GPU's device memory.
    MemoryNodeId,
    "mem"
);
id_type!(
    /// Identifier of a table registered in the catalog.
    TableId,
    "table"
);
id_type!(
    /// Identifier of a column within a table.
    ColumnId,
    "col"
);
id_type!(
    /// Identifier of a data block leased from a block manager.
    BlockId,
    "block"
);
id_type!(
    /// Identifier of a generated pipeline (the unit of JIT compilation).
    PipelineId,
    "pipeline"
);
id_type!(
    /// Identifier of a query submitted to the engine.
    QueryId,
    "query"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_raw_index() {
        let id = BlockId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(BlockId::from(42), id);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(MemoryNodeId::new(3).to_string(), "mem3");
        assert_eq!(PipelineId::new(9).to_string(), "pipeline9");
        assert_eq!(QueryId::new(0).to_string(), "query0");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(TableId::new(1));
        set.insert(TableId::new(1));
        set.insert(TableId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ColumnId::new(1) < ColumnId::new(2));
    }
}
