//! Scalar data types and values.
//!
//! The reproduction targets the Star Schema Benchmark, whose columns are
//! integers, dates (stored as `yyyymmdd` integers, as in the original dbgen),
//! decimals (stored as scaled i64), and low-cardinality strings. Strings are
//! dictionary-encoded at load time (see [`crate::column::DictionaryBuilder`]),
//! so query execution only ever touches fixed-width values — the same design
//! the paper's columnar engines use.

use std::fmt;

/// Physical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer (keys, dates, small measures, dictionary codes).
    Int32,
    /// 64-bit signed integer (large measures, revenue sums).
    Int64,
    /// 64-bit IEEE float (only used by a few derived benchmark metrics).
    Float64,
    /// Dictionary-encoded string; the physical representation is an `Int32`
    /// code, ordered so that range predicates on the original strings map to
    /// range predicates on the codes.
    Dictionary,
}

impl DataType {
    /// Width of one value of this type in bytes, as materialized in a block.
    pub const fn byte_width(self) -> usize {
        match self {
            DataType::Int32 | DataType::Dictionary => 4,
            DataType::Int64 | DataType::Float64 => 8,
        }
    }

    /// Whether the physical representation is a 32-bit integer.
    pub const fn is_int32_repr(self) -> bool {
        matches!(self, DataType::Int32 | DataType::Dictionary)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Int32 => "INT32",
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Dictionary => "DICT",
        };
        f.write_str(name)
    }
}

/// A single scalar value; used at the edges of the system (query results,
/// literals in expressions, test fixtures) — never on the per-tuple hot path,
/// which operates on typed column slices directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int32(i32),
    Int64(i64),
    Float64(f64),
    /// A dictionary code together with (optionally) its decoded string.
    Str(String),
    Null,
}

impl Value {
    /// The data type this value would occupy in a column, if representable.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Dictionary),
            Value::Null => None,
        }
    }

    /// Interpret the value as i64, widening 32-bit integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as f64, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(DataType::Int32.byte_width(), 4);
        assert_eq!(DataType::Dictionary.byte_width(), 4);
        assert_eq!(DataType::Int64.byte_width(), 8);
        assert_eq!(DataType::Float64.byte_width(), 8);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(7i32).as_i64(), Some(7));
        assert_eq!(Value::from(7i64).as_f64(), Some(7.0));
        assert_eq!(Value::from("MFGR#12").as_str(), Some("MFGR#12"));
        assert_eq!(Value::Null.as_i64(), None);
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DataType::Dictionary.to_string(), "DICT");
        assert_eq!(Value::Int64(11).to_string(), "11");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
