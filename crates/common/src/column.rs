//! Typed column vectors and dictionary encoding.
//!
//! Columns are the unit of storage (`hetex-storage` keeps tables as columns
//! split into NUMA-resident segments) and blocks are built out of column
//! slices. Strings are dictionary-encoded into ordered `i32` codes so that the
//! execution engine only ever processes fixed-width data, exactly like the
//! columnar engines the paper evaluates.

use crate::error::{HetError, Result};
use crate::types::{DataType, Value};
use std::collections::HashMap;

/// Physical storage for one column (or one column slice inside a block).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int32(Vec<i32>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
}

impl ColumnData {
    /// Create an empty column of the given type with the given capacity.
    /// Dictionary columns are physically `Int32`.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Int32 | DataType::Dictionary => {
                ColumnData::Int32(Vec::with_capacity(capacity))
            }
            DataType::Int64 => ColumnData::Int64(Vec::with_capacity(capacity)),
            DataType::Float64 => ColumnData::Float64(Vec::with_capacity(capacity)),
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int32(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
        }
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the stored values in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Int32(v) => v.len() * 4,
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
        }
    }

    /// The physical data type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
        }
    }

    /// Value at `idx` widened to i64 (floats are rejected).
    pub fn get_i64(&self, idx: usize) -> Option<i64> {
        match self {
            ColumnData::Int32(v) => v.get(idx).map(|x| *x as i64),
            ColumnData::Int64(v) => v.get(idx).copied(),
            ColumnData::Float64(_) => None,
        }
    }

    /// Value at `idx` as f64.
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        match self {
            ColumnData::Int32(v) => v.get(idx).map(|x| *x as f64),
            ColumnData::Int64(v) => v.get(idx).map(|x| *x as f64),
            ColumnData::Float64(v) => v.get(idx).copied(),
        }
    }

    /// Value at `idx` boxed as a [`Value`].
    pub fn get_value(&self, idx: usize) -> Option<Value> {
        match self {
            ColumnData::Int32(v) => v.get(idx).map(|x| Value::Int32(*x)),
            ColumnData::Int64(v) => v.get(idx).map(|x| Value::Int64(*x)),
            ColumnData::Float64(v) => v.get(idx).map(|x| Value::Float64(*x)),
        }
    }

    /// Append an i64, narrowing to the physical type.
    pub fn push_i64(&mut self, value: i64) {
        match self {
            ColumnData::Int32(v) => v.push(value as i32),
            ColumnData::Int64(v) => v.push(value),
            ColumnData::Float64(v) => v.push(value as f64),
        }
    }

    /// Append an f64 value (only valid on Float64 columns).
    pub fn push_f64(&mut self, value: f64) -> Result<()> {
        match self {
            ColumnData::Float64(v) => {
                v.push(value);
                Ok(())
            }
            _ => Err(HetError::Schema("push_f64 on an integer column".into())),
        }
    }

    /// Copy the value at `idx` from `src` into `self`; both columns must have
    /// the same physical type.
    pub fn push_from(&mut self, src: &ColumnData, idx: usize) -> Result<()> {
        match (self, src) {
            (ColumnData::Int32(dst), ColumnData::Int32(s)) => {
                dst.push(s[idx]);
                Ok(())
            }
            (ColumnData::Int64(dst), ColumnData::Int64(s)) => {
                dst.push(s[idx]);
                Ok(())
            }
            (ColumnData::Float64(dst), ColumnData::Float64(s)) => {
                dst.push(s[idx]);
                Ok(())
            }
            _ => Err(HetError::Schema("push_from with mismatched column types".into())),
        }
    }

    /// Borrow as an `i32` slice (panics in debug if the type differs).
    pub fn as_i32(&self) -> Result<&[i32]> {
        match self {
            ColumnData::Int32(v) => Ok(v),
            other => Err(HetError::Schema(format!(
                "expected Int32 column, found {:?}",
                other.data_type()
            ))),
        }
    }

    /// Borrow as an `i64` slice.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            ColumnData::Int64(v) => Ok(v),
            other => Err(HetError::Schema(format!(
                "expected Int64 column, found {:?}",
                other.data_type()
            ))),
        }
    }

    /// Borrow as an `f64` slice.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            ColumnData::Float64(v) => Ok(v),
            other => Err(HetError::Schema(format!(
                "expected Float64 column, found {:?}",
                other.data_type()
            ))),
        }
    }

    /// Retain capacity but remove all values.
    pub fn clear(&mut self) {
        match self {
            ColumnData::Int32(v) => v.clear(),
            ColumnData::Int64(v) => v.clear(),
            ColumnData::Float64(v) => v.clear(),
        }
    }

    /// A slice copy of rows `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> ColumnData {
        match self {
            ColumnData::Int32(v) => ColumnData::Int32(v[start..end].to_vec()),
            ColumnData::Int64(v) => ColumnData::Int64(v[start..end].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[start..end].to_vec()),
        }
    }
}

/// A named column: a schema field plus its data.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Logical data type (may be `Dictionary` even though data is `Int32`).
    pub data_type: DataType,
    /// Physical values.
    pub data: ColumnData,
}

impl Column {
    /// Create a column from parts.
    pub fn new(name: impl Into<String>, data_type: DataType, data: ColumnData) -> Self {
        Self { name: name.into(), data_type, data }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Order-preserving dictionary encoder for string columns.
///
/// The SSB string domains (regions, nations, categories, brands, priorities)
/// are known up front, so the builder is usually constructed from a sorted
/// domain, which makes the assigned codes order-preserving: a predicate such as
/// `p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'` (Q2.2's string inequality)
/// becomes a range predicate over the codes.
#[derive(Debug, Clone, Default)]
pub struct DictionaryBuilder {
    values: Vec<String>,
    index: HashMap<String, i32>,
}

impl DictionaryBuilder {
    /// Empty dictionary; codes are assigned in first-seen order by [`Self::insert`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an order-preserving dictionary from a full domain. The domain is
    /// sorted and deduplicated, so code order equals lexicographic order.
    pub fn from_domain<I, S>(domain: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values: Vec<String> = domain.into_iter().map(Into::into).collect();
        values.sort();
        values.dedup();
        let index = values.iter().enumerate().map(|(i, v)| (v.clone(), i as i32)).collect();
        Self { values, index }
    }

    /// Code for `value`, inserting it (first-seen order) if absent.
    pub fn insert(&mut self, value: &str) -> i32 {
        if let Some(code) = self.index.get(value) {
            return *code;
        }
        let code = self.values.len() as i32;
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), code);
        code
    }

    /// Code for `value` if it is in the dictionary.
    pub fn encode(&self, value: &str) -> Option<i32> {
        self.index.get(value).copied()
    }

    /// Original string for a code.
    pub fn decode(&self, code: i32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no values have been added.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest code whose string is `>= value` (for translating string range
    /// predicates into code ranges). Only meaningful for order-preserving
    /// dictionaries built via [`Self::from_domain`].
    pub fn lower_bound(&self, value: &str) -> i32 {
        self.values.partition_point(|v| v.as_str() < value) as i32
    }

    /// Largest code whose string is `<= value`, or -1 if none.
    pub fn upper_bound(&self, value: &str) -> i32 {
        self.values.partition_point(|v| v.as_str() <= value) as i32 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_data_push_and_get() {
        let mut c = ColumnData::with_capacity(DataType::Int32, 4);
        c.push_i64(7);
        c.push_i64(-3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get_i64(1), Some(-3));
        assert_eq!(c.get_f64(0), Some(7.0));
        assert_eq!(c.get_value(0), Some(Value::Int32(7)));
        assert_eq!(c.byte_size(), 8);
    }

    #[test]
    fn column_data_type_checks() {
        let c = ColumnData::Int64(vec![1, 2]);
        assert!(c.as_i64().is_ok());
        assert!(c.as_i32().is_err());
        let mut f = ColumnData::with_capacity(DataType::Float64, 1);
        assert!(f.push_f64(1.5).is_ok());
        let mut i = ColumnData::with_capacity(DataType::Int32, 1);
        assert!(i.push_f64(1.5).is_err());
    }

    #[test]
    fn column_data_slice_and_clear() {
        let c = ColumnData::Int32(vec![1, 2, 3, 4, 5]);
        assert_eq!(c.slice(1, 3), ColumnData::Int32(vec![2, 3]));
        let mut c = c;
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn push_from_requires_same_type() {
        let src = ColumnData::Int32(vec![9, 8]);
        let mut dst = ColumnData::with_capacity(DataType::Int32, 2);
        dst.push_from(&src, 1).unwrap();
        assert_eq!(dst.get_i64(0), Some(8));
        let mut wrong = ColumnData::with_capacity(DataType::Int64, 2);
        assert!(wrong.push_from(&src, 0).is_err());
    }

    #[test]
    fn dictionary_order_preserving() {
        let dict = DictionaryBuilder::from_domain(["MFGR#22", "MFGR#12", "MFGR#21"]);
        assert_eq!(dict.len(), 3);
        let c12 = dict.encode("MFGR#12").unwrap();
        let c21 = dict.encode("MFGR#21").unwrap();
        let c22 = dict.encode("MFGR#22").unwrap();
        assert!(c12 < c21 && c21 < c22);
        assert_eq!(dict.decode(c21), Some("MFGR#21"));
    }

    #[test]
    fn dictionary_range_bounds() {
        let dict = DictionaryBuilder::from_domain(["a", "c", "e", "g"]);
        assert_eq!(dict.lower_bound("c"), 1);
        assert_eq!(dict.lower_bound("d"), 2);
        assert_eq!(dict.upper_bound("e"), 2);
        assert_eq!(dict.upper_bound("0"), -1);
    }

    #[test]
    fn dictionary_insert_first_seen() {
        let mut dict = DictionaryBuilder::new();
        assert_eq!(dict.insert("x"), 0);
        assert_eq!(dict.insert("y"), 1);
        assert_eq!(dict.insert("x"), 0);
        assert!(dict.encode("z").is_none());
    }
}
