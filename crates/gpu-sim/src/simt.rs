//! The SIMT thread hierarchy: launch configurations, thread contexts and
//! grid-stride loops.
//!
//! The GPU device provider (in `hetex-jit`) lowers `threadIdInWorker` to
//! [`ThreadCtx::global_id`] and `#threadsInWorker` to
//! [`ThreadCtx::threads_in_grid`], exactly mirroring how the paper's GPU
//! provider translates those calls for NVPTX. Kernels iterate their input with
//! a [`GridStride`] loop, the canonical CUDA idiom the generated pipeline 9 of
//! Listing 1 uses (`for i = threadIdInWorker to N-1 with step #threadsInWorker`).

/// Warp width of the simulated GPU (NVIDIA GPUs execute 32 lanes in lock-step).
pub const WARP_SIZE: usize = 32;

/// Grid and thread-block dimensions of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_dim: usize,
    /// Number of threads per block.
    pub block_dim: usize,
}

impl LaunchConfig {
    /// A launch configuration, validated to be non-empty.
    pub fn new(grid_dim: usize, block_dim: usize) -> Self {
        assert!(grid_dim > 0 && block_dim > 0, "empty launch configuration");
        Self { grid_dim, block_dim }
    }

    /// The configuration the engine uses by default. §7 of the paper notes
    /// that modern compilers/GPUs make hand-tuned "magic numbers" largely
    /// obsolete, so we pick one reasonable shape and keep it.
    pub fn default_for_device() -> Self {
        Self { grid_dim: 80, block_dim: 128 }
    }

    /// Total number of threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }

    /// Total number of warps in the grid (rounded up per block).
    pub fn total_warps(&self) -> usize {
        self.grid_dim * self.block_dim.div_ceil(WARP_SIZE)
    }
}

/// Identity of one virtual GPU thread within a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Index of the thread's block within the grid.
    pub block_idx: usize,
    /// Index of the thread within its block.
    pub thread_idx: usize,
    /// The launch configuration.
    pub config: LaunchConfig,
}

impl ThreadCtx {
    /// Grid-wide thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub fn global_id(&self) -> usize {
        self.block_idx * self.config.block_dim + self.thread_idx
    }

    /// Total number of threads in the grid (`gridDim.x * blockDim.x`).
    pub fn threads_in_grid(&self) -> usize {
        self.config.total_threads()
    }

    /// Lane index within the warp.
    pub fn lane(&self) -> usize {
        self.thread_idx % WARP_SIZE
    }

    /// Grid-wide warp id.
    pub fn warp_id(&self) -> usize {
        self.global_id() / WARP_SIZE
    }

    /// True for the first lane of each warp — the "neighborhood leader" that
    /// pushes the warp-local partial aggregate to the device-global state.
    pub fn is_neighborhood_leader(&self) -> bool {
        self.lane() == 0
    }

    /// A grid-stride iterator over `[0, n)`: this thread visits
    /// `global_id, global_id + total_threads, …`, the standard way a kernel
    /// cooperatively scans a block of tuples with coalesced accesses.
    pub fn grid_stride(&self, n: usize) -> GridStride {
        GridStride { next: self.global_id(), stride: self.threads_in_grid(), end: n }
    }
}

/// Iterator produced by [`ThreadCtx::grid_stride`].
#[derive(Debug, Clone)]
pub struct GridStride {
    next: usize,
    stride: usize,
    end: usize,
}

impl Iterator for GridStride {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.next >= self.end {
            return None;
        }
        let current = self.next;
        self.next += self.stride;
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn launch_config_totals() {
        let cfg = LaunchConfig::new(4, 64);
        assert_eq!(cfg.total_threads(), 256);
        assert_eq!(cfg.total_warps(), 4 * 2);
        let odd = LaunchConfig::new(2, 48);
        assert_eq!(odd.total_warps(), 2 * 2);
    }

    #[test]
    #[should_panic(expected = "empty launch configuration")]
    fn empty_launch_config_panics() {
        LaunchConfig::new(0, 32);
    }

    #[test]
    fn thread_identity() {
        let cfg = LaunchConfig::new(2, 64);
        let t = ThreadCtx { block_idx: 1, thread_idx: 33, config: cfg };
        assert_eq!(t.global_id(), 97);
        assert_eq!(t.threads_in_grid(), 128);
        assert_eq!(t.lane(), 1);
        assert_eq!(t.warp_id(), 3);
        assert!(!t.is_neighborhood_leader());
        let leader = ThreadCtx { block_idx: 0, thread_idx: 32, config: cfg };
        assert!(leader.is_neighborhood_leader());
    }

    #[test]
    fn grid_stride_covers_every_index_exactly_once() {
        let cfg = LaunchConfig::new(2, 16);
        let n = 1000;
        let mut seen = HashSet::new();
        for block_idx in 0..cfg.grid_dim {
            for thread_idx in 0..cfg.block_dim {
                let t = ThreadCtx { block_idx, thread_idx, config: cfg };
                for i in t.grid_stride(n) {
                    assert!(seen.insert(i), "index {i} visited twice");
                }
            }
        }
        assert_eq!(seen.len(), n);
        assert!(seen.iter().all(|&i| i < n));
    }

    #[test]
    fn grid_stride_handles_fewer_rows_than_threads() {
        let cfg = LaunchConfig::new(4, 128);
        let t = ThreadCtx { block_idx: 3, thread_idx: 127, config: cfg };
        // Thread id 511 sees nothing when there are only 100 rows.
        assert_eq!(t.grid_stride(100).count(), 0);
        let t0 = ThreadCtx { block_idx: 0, thread_idx: 5, config: cfg };
        assert_eq!(t0.grid_stride(100).collect::<Vec<_>>(), vec![5]);
    }
}
