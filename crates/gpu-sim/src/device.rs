//! The simulated GPU device.
//!
//! [`GpuDevice`] is what the cpu2gpu operator launches kernels on. A kernel is
//! an ordinary Rust closure invoked once per virtual SIMT thread with its
//! [`ThreadCtx`]; the device executes the grid on a small pool of host threads
//! (so device-scoped atomics and the neighborhood reducer are genuinely
//! exercised under concurrency) and reports [`LaunchStats`] that the cost
//! model prices.

use crate::memory::DeviceMemory;
use crate::simt::{LaunchConfig, ThreadCtx};
use hetex_common::MemoryNodeId;
use hetex_topology::{DeviceId, DeviceProfile};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Statistics of the kernels launched on a device (functional counters, not
/// timings — timing comes from the cost model in `hetex-topology`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Number of kernels launched.
    pub launches: u64,
    /// Total virtual threads executed.
    pub threads: u64,
    /// Total warps executed.
    pub warps: u64,
}

/// A software GPU: SIMT execution over host threads plus device memory.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    id: DeviceId,
    profile: DeviceProfile,
    memory: DeviceMemory,
    host_parallelism: usize,
    launches: Arc<AtomicU64>,
    threads: Arc<AtomicU64>,
    warps: Arc<AtomicU64>,
}

impl GpuDevice {
    /// Create a device from its topology profile.
    pub fn new(id: DeviceId, profile: DeviceProfile) -> Self {
        let memory = DeviceMemory::new(profile.local_memory, profile.memory_capacity);
        let host_parallelism =
            std::thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(2);
        Self {
            id,
            profile,
            memory,
            host_parallelism,
            launches: Arc::new(AtomicU64::new(0)),
            threads: Arc::new(AtomicU64::new(0)),
            warps: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The device id in the server topology.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's performance profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The device-memory pool.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// The memory node holding this device's memory.
    pub fn memory_node(&self) -> MemoryNodeId {
        self.profile.local_memory
    }

    /// Launch a kernel: `body` is invoked once per virtual thread of the grid.
    ///
    /// The virtual threads are partitioned across a handful of host threads;
    /// within one host thread they run sequentially, across host threads they
    /// run concurrently, so all device-visible state must use device atomics —
    /// the same discipline real kernels need.
    pub fn launch<F>(&self, config: LaunchConfig, body: F) -> LaunchStats
    where
        F: Fn(&ThreadCtx) + Send + Sync,
    {
        let total_threads = config.total_threads();
        let chunk = total_threads.div_ceil(self.host_parallelism.max(1));
        std::thread::scope(|scope| {
            let body = &body;
            let mut handles = Vec::new();
            for worker in 0..self.host_parallelism {
                let start = worker * chunk;
                if start >= total_threads {
                    break;
                }
                let end = (start + chunk).min(total_threads);
                handles.push(scope.spawn(move || {
                    for flat in start..end {
                        let ctx = ThreadCtx {
                            block_idx: flat / config.block_dim,
                            thread_idx: flat % config.block_dim,
                            config,
                        };
                        body(&ctx);
                    }
                }));
            }
            for h in handles {
                h.join().expect("simulated GPU worker panicked");
            }
        });
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.threads.fetch_add(total_threads as u64, Ordering::Relaxed);
        self.warps.fetch_add(config.total_warps() as u64, Ordering::Relaxed);
        LaunchStats {
            launches: 1,
            threads: total_threads as u64,
            warps: config.total_warps() as u64,
        }
    }

    /// Cumulative statistics over the device's lifetime.
    pub fn stats(&self) -> LaunchStats {
        LaunchStats {
            launches: self.launches.load(Ordering::Relaxed),
            threads: self.threads.load(Ordering::Relaxed),
            warps: self.warps.load(Ordering::Relaxed),
        }
    }
}

/// A convenience constructor used by tests and examples: a standalone GTX
/// 1080-like device that is not part of a larger topology.
pub fn standalone_gpu() -> GpuDevice {
    let profile = DeviceProfile::paper_gpu(0, MemoryNodeId::new(0));
    GpuDevice::new(DeviceId::new(0), profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::DeviceAtomicI64;
    use crate::reduce::NeighborhoodReducer;
    use crate::simt::WARP_SIZE;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn launch_runs_every_thread_exactly_once() {
        let gpu = standalone_gpu();
        let counter = AtomicUsize::new(0);
        let cfg = LaunchConfig::new(8, 64);
        let stats = gpu.launch(cfg, |_ctx| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 512);
        assert_eq!(stats.threads, 512);
        assert_eq!(stats.launches, 1);
        assert_eq!(gpu.stats().launches, 1);
    }

    #[test]
    fn grid_stride_sum_kernel_matches_sequential_sum() {
        let gpu = standalone_gpu();
        let data: Vec<i64> = (0..100_000).map(|i| i % 97).collect();
        let expected: i64 = data.iter().sum();
        let acc = DeviceAtomicI64::new(0);
        let cfg = LaunchConfig::new(16, 128);
        gpu.launch(cfg, |ctx| {
            let mut local = 0i64;
            for i in ctx.grid_stride(data.len()) {
                local += data[i];
            }
            acc.fetch_add(local);
        });
        assert_eq!(acc.load(), expected);
    }

    #[test]
    fn filtered_sum_with_neighborhood_reduce_matches_listing_one() {
        // This mirrors pipeline 9 of Listing 1: scan, filter (t.a > 42),
        // thread-local accumulate, neighborhood reduce, leader atomic.
        let gpu = standalone_gpu();
        let a: Vec<i64> = (0..50_000).map(|i| i % 100).collect();
        let b: Vec<i64> = (0..50_000).map(|i| i * 3).collect();
        let expected: i64 = a.iter().zip(&b).filter(|(av, _)| **av > 42).map(|(_, bv)| *bv).sum();

        let cfg = LaunchConfig::new(8, 64);
        let reducer = NeighborhoodReducer::new(cfg.total_warps(), WARP_SIZE);
        let acc = DeviceAtomicI64::new(0);
        gpu.launch(cfg, |ctx| {
            let mut local = 0i64;
            for i in ctx.grid_stride(a.len()) {
                if a[i] > 42 {
                    local += b[i];
                }
            }
            reducer.contribute(ctx.warp_id(), local, &acc);
        });
        assert_eq!(acc.load(), expected);
        // One global atomic per warp, not per thread.
        assert_eq!(reducer.global_atomics(), cfg.total_warps());
    }

    #[test]
    fn device_memory_capacity_matches_profile() {
        let gpu = standalone_gpu();
        assert_eq!(gpu.memory().capacity(), 8 * (1 << 30));
        assert_eq!(gpu.memory_node(), MemoryNodeId::new(0));
        assert!(gpu.memory().alloc(9 * (1 << 30)).is_err());
    }

    #[test]
    fn stats_accumulate_across_launches() {
        let gpu = standalone_gpu();
        let cfg = LaunchConfig::new(2, 32);
        gpu.launch(cfg, |_| {});
        gpu.launch(cfg, |_| {});
        let stats = gpu.stats();
        assert_eq!(stats.launches, 2);
        assert_eq!(stats.threads, 128);
        assert_eq!(stats.warps, 4);
    }
}
