//! Device memory accounting.
//!
//! The simulated GPU has the same hard memory capacity as the paper's
//! GTX 1080 (8 GB). [`DeviceMemory`] tracks allocations against that capacity
//! so that callers experience the same failure modes the paper reports:
//! a working set that does not fit must be streamed over PCIe (Figure 5), and
//! an engine that insists on materializing oversized state on the device gets
//! an out-of-memory error (DBMS G's Q4.3 failure at SF1000).
//!
//! The actual bytes live in ordinary host memory (the data structures of the
//! engine); this type only does the accounting.

use hetex_common::{HetError, MemoryNodeId, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One tracked allocation; freeing it returns the bytes to the pool.
#[derive(Debug)]
pub struct DeviceAllocation {
    bytes: u64,
    pool: Arc<PoolInner>,
    released: bool,
}

#[derive(Debug)]
struct PoolInner {
    node: MemoryNodeId,
    capacity: u64,
    used: AtomicU64,
    high_water: Mutex<u64>,
}

impl DeviceAllocation {
    /// Size of the allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Explicitly release the allocation (also happens on drop).
    pub fn release(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        if !self.released {
            self.pool.used.fetch_sub(self.bytes, Ordering::Relaxed);
            self.released = true;
        }
    }
}

impl Drop for DeviceAllocation {
    fn drop(&mut self) {
        self.release_inner();
    }
}

/// Capacity-limited allocator for one GPU's device memory.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    inner: Arc<PoolInner>,
}

impl DeviceMemory {
    /// A device-memory pool of `capacity` bytes living on memory node `node`.
    pub fn new(node: MemoryNodeId, capacity: u64) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                node,
                capacity,
                used: AtomicU64::new(0),
                high_water: Mutex::new(0),
            }),
        }
    }

    /// The memory node this pool represents.
    pub fn node(&self) -> MemoryNodeId {
        self.inner.node
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity().saturating_sub(self.used())
    }

    /// Largest observed usage (diagnostics for EXPERIMENTS.md).
    pub fn high_water(&self) -> u64 {
        *self.inner.high_water.lock()
    }

    /// Allocate `bytes`, failing if the device does not have room.
    pub fn alloc(&self, bytes: u64) -> Result<DeviceAllocation> {
        // Optimistically reserve, then back out on overflow. This keeps the
        // fast path a single atomic, matching how little work a real device
        // allocator amortizes per allocation.
        let prev = self.inner.used.fetch_add(bytes, Ordering::Relaxed);
        let new_used = prev + bytes;
        if new_used > self.inner.capacity {
            self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(HetError::Memory(format!(
                "device memory {} exhausted: requested {bytes} B, {} B of {} B in use",
                self.inner.node, prev, self.inner.capacity
            )));
        }
        let mut hw = self.inner.high_water.lock();
        if new_used > *hw {
            *hw = new_used;
        }
        Ok(DeviceAllocation { bytes, pool: Arc::clone(&self.inner), released: false })
    }

    /// True if an allocation of `bytes` could currently succeed.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> DeviceMemory {
        DeviceMemory::new(MemoryNodeId::new(2), 1000)
    }

    #[test]
    fn alloc_and_release_round_trip() {
        let mem = pool();
        assert_eq!(mem.capacity(), 1000);
        let a = mem.alloc(400).unwrap();
        assert_eq!(mem.used(), 400);
        assert_eq!(mem.available(), 600);
        assert!(mem.fits(600));
        assert!(!mem.fits(601));
        a.release();
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.high_water(), 400);
    }

    #[test]
    fn drop_releases_automatically() {
        let mem = pool();
        {
            let _a = mem.alloc(999).unwrap();
            assert_eq!(mem.used(), 999);
        }
        assert_eq!(mem.used(), 0);
    }

    #[test]
    fn over_allocation_fails_and_leaves_state_consistent() {
        let mem = pool();
        let _a = mem.alloc(800).unwrap();
        let err = mem.alloc(300).unwrap_err();
        assert_eq!(err.category(), "memory");
        assert_eq!(mem.used(), 800);
        // A smaller allocation still succeeds.
        let _b = mem.alloc(200).unwrap();
        assert_eq!(mem.available(), 0);
    }

    #[test]
    fn concurrent_allocations_never_exceed_capacity() {
        use std::thread;
        let mem = DeviceMemory::new(MemoryNodeId::new(3), 10_000);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mem = mem.clone();
                thread::spawn(move || {
                    let mut ok = 0;
                    for _ in 0..1000 {
                        if let Ok(a) = mem.alloc(7) {
                            ok += 1;
                            drop(a);
                        }
                    }
                    ok
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mem.used(), 0);
        assert!(mem.high_water() <= 10_000);
    }
}
