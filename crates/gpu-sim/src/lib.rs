//! # hetex-gpu-sim
//!
//! A software stand-in for the NVIDIA GPUs the paper runs on.
//!
//! No GPU (and no CUDA) is available in this environment, so this crate
//! provides the pieces of the CUDA programming model that HetExchange's
//! generated code actually relies on, implemented on host threads:
//!
//! * [`simt`] — kernels, launch configurations and the SIMT thread hierarchy
//!   (grid → thread block → warp → lane) with grid-stride loops;
//! * [`device::GpuDevice`] — a device you can launch kernels on; execution is
//!   data-parallel across a small host thread pool, and every launch reports
//!   statistics (threads, warps, launches) that feed the cost model;
//! * [`memory::DeviceMemory`] — a capacity-limited device-memory allocator
//!   (8 GB per GTX 1080), so "out of device memory" failures behave like the
//!   real thing (DBMS G's Q4.3 failure at SF1000 depends on this);
//! * [`atomic`] — device-scoped atomics (the GPU provider lowers
//!   `workerScopedAtomic` to these);
//! * [`reduce::NeighborhoodReducer`] — warp-level ("neighborhood") reductions,
//!   used so that only one atomic per warp reaches the device-global state,
//!   exactly like Listing 1's generated kernel;
//! * [`occupancy`] — a register-pressure → occupancy model, used to reproduce
//!   the paper's observation that DBMS G's kernels allocate twice the
//!   registers and therefore underutilize the GPU.
//!
//! The *functional* result of a kernel is exact (it runs real Rust closures on
//! real data); the *performance* of the simulated GPU is modeled by
//! `hetex-topology`'s cost model, not by the wall-clock time of this crate.

pub mod atomic;
pub mod device;
pub mod memory;
pub mod occupancy;
pub mod reduce;
pub mod simt;

pub use atomic::{DeviceAtomicF64, DeviceAtomicI64, DeviceCounter};
pub use device::{GpuDevice, LaunchStats};
pub use memory::{DeviceAllocation, DeviceMemory};
pub use occupancy::OccupancyModel;
pub use reduce::NeighborhoodReducer;
pub use simt::{GridStride, LaunchConfig, ThreadCtx};
