//! Warp-level ("neighborhood") reductions.
//!
//! In the paper's generated GPU code (Listing 1, lines 27–29) each thread
//! first reduces its thread-local accumulator within its warp
//! (`neighborhood_reduce`), and only the warp leader issues the device-scoped
//! atomic. That turns thousands of global atomics into a few dozen.
//!
//! Our simulated kernel threads execute asynchronously on host threads, so a
//! literal lock-step shuffle is not available. [`NeighborhoodReducer`]
//! preserves the semantics and the *cost shape* instead: every lane deposits
//! its value into a per-warp accumulator, and the last lane of the warp to
//! arrive flushes the warp total with a single device atomic. The number of
//! global atomics is therefore exactly one per active warp, which is what the
//! cost model charges.

use crate::atomic::DeviceAtomicI64;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

/// Accumulates per-warp partial sums and flushes one atomic per warp.
#[derive(Debug)]
pub struct NeighborhoodReducer {
    warp_partials: Vec<AtomicI64>,
    warp_pending: Vec<AtomicUsize>,
    flushes: AtomicUsize,
}

impl NeighborhoodReducer {
    /// A reducer for a launch with `total_warps` warps, where each warp will
    /// contribute exactly `lanes_per_warp` values.
    pub fn new(total_warps: usize, lanes_per_warp: usize) -> Self {
        Self {
            warp_partials: (0..total_warps).map(|_| AtomicI64::new(0)).collect(),
            warp_pending: (0..total_warps).map(|_| AtomicUsize::new(lanes_per_warp)).collect(),
            flushes: AtomicUsize::new(0),
        }
    }

    /// Contribute a lane-local value for `warp_id`; when the warp is complete
    /// the warp total is added to `target` with a single device atomic.
    pub fn contribute(&self, warp_id: usize, value: i64, target: &DeviceAtomicI64) {
        let partial = &self.warp_partials[warp_id];
        partial.fetch_add(value, Ordering::Relaxed);
        let remaining = self.warp_pending[warp_id].fetch_sub(1, Ordering::AcqRel) - 1;
        if remaining == 0 {
            let total = partial.swap(0, Ordering::AcqRel);
            target.fetch_add(total);
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of device-scoped atomics issued so far (one per completed warp).
    pub fn global_atomics(&self) -> usize {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Number of warps tracked by this reducer.
    pub fn warps(&self) -> usize {
        self.warp_partials.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn warp_totals_reach_target_with_one_atomic_per_warp() {
        let warps = 4;
        let lanes = 8;
        let reducer = NeighborhoodReducer::new(warps, lanes);
        let target = DeviceAtomicI64::new(0);
        for warp in 0..warps {
            for lane in 0..lanes {
                reducer.contribute(warp, (warp * lanes + lane) as i64, &target);
            }
        }
        let expected: i64 = (0..(warps * lanes) as i64).sum();
        assert_eq!(target.load(), expected);
        assert_eq!(reducer.global_atomics(), warps);
        assert_eq!(reducer.warps(), warps);
    }

    #[test]
    fn concurrent_contributions_are_not_lost() {
        let warps = 16;
        let lanes = 32;
        let reducer = Arc::new(NeighborhoodReducer::new(warps, lanes));
        let target = Arc::new(DeviceAtomicI64::new(0));
        let mut handles = Vec::new();
        // Each host thread plays the role of a subset of warps.
        for chunk in 0..4 {
            let reducer = Arc::clone(&reducer);
            let target = Arc::clone(&target);
            handles.push(thread::spawn(move || {
                for warp in (chunk * 4)..(chunk * 4 + 4) {
                    for _lane in 0..lanes {
                        reducer.contribute(warp, 1, &target);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(target.load(), (warps * lanes) as i64);
        assert_eq!(reducer.global_atomics(), warps);
    }
}
