//! Register-pressure → occupancy model.
//!
//! §6.1 explains the performance gap between Proteus GPU and DBMS G with
//! register usage: "every thread block that DBMS G triggers on the GPU devices
//! allocates double the number of GPU registers than Proteus GPU. Thus, DBMS G
//! launches fewer simultaneous execution units and underutilizes the large
//! number of available GPU hardware threads."
//!
//! [`OccupancyModel`] reproduces that relationship: given the registers each
//! thread of a kernel uses, it computes the fraction of the GPU's resident
//! thread capacity that can actually be kept in flight. The baseline DBMS G
//! engine asks for twice the registers per thread and therefore gets roughly
//! half the occupancy, which the cost model turns into lower effective
//! bandwidth for latency-bound work.

/// Occupancy model for one GPU (register file size per SM and resident-thread
/// limits loosely follow the GTX 1080 / Pascal generation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyModel {
    /// 32-bit registers available per streaming multiprocessor.
    pub registers_per_sm: u32,
    /// Maximum resident threads per streaming multiprocessor.
    pub max_threads_per_sm: u32,
}

impl Default for OccupancyModel {
    fn default() -> Self {
        Self { registers_per_sm: 65_536, max_threads_per_sm: 2_048 }
    }
}

impl OccupancyModel {
    /// The default Pascal-like model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of the GPU's resident-thread capacity achievable by a kernel
    /// whose threads each use `registers_per_thread` registers. Clamped to
    /// (0, 1].
    pub fn occupancy(&self, registers_per_thread: u32) -> f64 {
        if registers_per_thread == 0 {
            return 1.0;
        }
        let register_limited = self.registers_per_sm / registers_per_thread;
        let resident = register_limited.min(self.max_threads_per_sm);
        (resident as f64 / self.max_threads_per_sm as f64).clamp(1.0 / 64.0, 1.0)
    }

    /// Registers per thread typical of Proteus' fused pipelines (the paper's
    /// generated kernels are lean; ~32 registers keeps full occupancy).
    pub const PROTEUS_REGISTERS: u32 = 32;

    /// Registers per thread for DBMS G: double Proteus', per §6.1.
    pub const DBMS_G_REGISTERS: u32 = 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proteus_kernels_reach_full_occupancy() {
        let m = OccupancyModel::new();
        assert_eq!(m.occupancy(OccupancyModel::PROTEUS_REGISTERS), 1.0);
        assert_eq!(m.occupancy(0), 1.0);
    }

    #[test]
    fn doubling_registers_halves_occupancy() {
        let m = OccupancyModel::new();
        let proteus = m.occupancy(OccupancyModel::PROTEUS_REGISTERS);
        let dbms_g = m.occupancy(OccupancyModel::DBMS_G_REGISTERS);
        assert!((dbms_g - proteus / 2.0).abs() < 1e-9, "dbms_g {dbms_g} proteus {proteus}");
    }

    #[test]
    fn occupancy_is_monotone_and_clamped() {
        let m = OccupancyModel::new();
        let mut last = 2.0;
        for regs in [8u32, 16, 32, 64, 128, 256, 4096] {
            let o = m.occupancy(regs);
            assert!(o <= last, "occupancy must not increase with register use");
            assert!(o > 0.0 && o <= 1.0);
            last = o;
        }
        // Extremely register-hungry kernels are clamped, not zeroed.
        assert!(m.occupancy(1_000_000) >= 1.0 / 64.0);
    }
}
