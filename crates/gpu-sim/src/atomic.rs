//! Device-scoped atomics.
//!
//! The GPU device provider lowers `workerScopedAtomic<T, Op>` to these types.
//! They are real host atomics (the simulated kernel threads genuinely run in
//! parallel on host threads), wrapped so that the rest of the system talks
//! about "device atomics" rather than `std::sync::atomic` directly — which is
//! also where the cost model hooks the per-atomic charge.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// A 64-bit signed integer with device-scoped atomic add/min/max.
#[derive(Debug, Default)]
pub struct DeviceAtomicI64 {
    value: AtomicI64,
}

impl DeviceAtomicI64 {
    /// A new atomic initialized to `value`.
    pub fn new(value: i64) -> Self {
        Self { value: AtomicI64::new(value) }
    }

    /// Atomically add `delta` and return the previous value.
    pub fn fetch_add(&self, delta: i64) -> i64 {
        self.value.fetch_add(delta, Ordering::Relaxed)
    }

    /// Atomically take the minimum with `candidate`.
    pub fn fetch_min(&self, candidate: i64) -> i64 {
        self.value.fetch_min(candidate, Ordering::Relaxed)
    }

    /// Atomically take the maximum with `candidate`.
    pub fn fetch_max(&self, candidate: i64) -> i64 {
        self.value.fetch_max(candidate, Ordering::Relaxed)
    }

    /// The current value.
    pub fn load(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrite the value (only used when initializing state).
    pub fn store(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed)
    }
}

/// A 64-bit float with device-scoped atomic add (CAS loop, like `atomicAdd`
/// on doubles for pre-Pascal GPUs).
#[derive(Debug, Default)]
pub struct DeviceAtomicF64 {
    bits: AtomicU64,
}

impl DeviceAtomicF64 {
    /// A new atomic initialized to `value`.
    pub fn new(value: f64) -> Self {
        Self { bits: AtomicU64::new(value.to_bits()) }
    }

    /// Atomically add `delta` and return the previous value.
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return f64::from_bits(current),
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Overwrite the value.
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed)
    }
}

/// A monotonically increasing counter, used for claiming output slots
/// (e.g. the write cursor of a packed output block produced on the GPU).
#[derive(Debug, Default)]
pub struct DeviceCounter {
    value: AtomicUsize,
}

impl DeviceCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically claim `n` consecutive slots; returns the first claimed index.
    pub fn claim(&self, n: usize) -> usize {
        self.value.fetch_add(n, Ordering::Relaxed)
    }

    /// The number of slots claimed so far.
    pub fn current(&self) -> usize {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn i64_atomic_ops() {
        let a = DeviceAtomicI64::new(10);
        assert_eq!(a.fetch_add(5), 10);
        assert_eq!(a.load(), 15);
        a.fetch_min(3);
        assert_eq!(a.load(), 3);
        a.fetch_max(100);
        assert_eq!(a.load(), 100);
        a.store(-1);
        assert_eq!(a.load(), -1);
    }

    #[test]
    fn f64_atomic_add_is_exact_for_integers() {
        let a = DeviceAtomicF64::new(0.0);
        a.fetch_add(1.5);
        a.fetch_add(2.5);
        assert_eq!(a.load(), 4.0);
        a.store(7.25);
        assert_eq!(a.load(), 7.25);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let a = Arc::new(DeviceAtomicI64::new(0));
        let f = Arc::new(DeviceAtomicF64::new(0.0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            let f = Arc::clone(&f);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    a.fetch_add(1);
                    f.fetch_add(1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(), 80_000);
        assert_eq!(f.load(), 80_000.0);
    }

    #[test]
    fn counter_claims_disjoint_ranges() {
        let c = Arc::new(DeviceCounter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                let mut starts = Vec::new();
                for _ in 0..1000 {
                    starts.push(c.claim(3));
                }
                starts
            }));
        }
        let mut all: Vec<usize> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "claimed ranges must not overlap");
        assert_eq!(c.current(), 12_000);
        c.reset();
        assert_eq!(c.current(), 0);
    }
}
