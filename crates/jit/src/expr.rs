//! Scalar expressions evaluated inside compiled pipelines.
//!
//! Expressions operate over the pipeline's *registers*: the values of the
//! current tuple, kept in a small array exactly like the register-pipelined
//! values a compiled engine keeps in CPU registers. Column references are
//! resolved to register indexes at plan time (this is the "specialization"
//! part of our JIT substitute), so evaluation is a tight match on an enum with
//! no name lookups or type dispatch.
//!
//! All SSB columns are integers after dictionary encoding, so expressions are
//! evaluated in `i64`; booleans are represented as 0/1.

use hetex_common::{HetError, Result};

/// A scalar expression over the current tuple's registers.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The value of register `i` (a column of the pipeline's input layout).
    Col(usize),
    /// A literal.
    Lit(i64),
    /// Arithmetic.
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// Integer division (used by derived SSB expressions such as year from
    /// a yyyymmdd date key).
    Div(Box<Expr>, Box<Expr>),
    /// Comparisons, producing 0/1.
    Eq(Box<Expr>, Box<Expr>),
    Ne(Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
    Le(Box<Expr>, Box<Expr>),
    Gt(Box<Expr>, Box<Expr>),
    Ge(Box<Expr>, Box<Expr>),
    /// Boolean connectives over 0/1 operands.
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// Inclusive range check, the shape of most SSB predicates.
    Between(Box<Expr>, i64, i64),
    /// Membership in a small literal list (e.g. `d_yearmonthnum IN (...)`).
    InList(Box<Expr>, Vec<i64>),
    /// A multiplicative hash of the operand, used by hash-pack and
    /// hash-based routing.
    Hash(Box<Expr>),
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Shorthand for a literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(v)
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other))
    }

    /// `self > v`.
    pub fn gt_lit(self, v: i64) -> Expr {
        Expr::Gt(Box::new(self), Box::new(Expr::Lit(v)))
    }

    /// `self < v`.
    pub fn lt_lit(self, v: i64) -> Expr {
        Expr::Lt(Box::new(self), Box::new(Expr::Lit(v)))
    }

    /// `lo <= self <= hi`.
    pub fn between(self, lo: i64, hi: i64) -> Expr {
        Expr::Between(Box::new(self), lo, hi)
    }

    /// `self IN (list)`.
    pub fn in_list(self, list: Vec<i64>) -> Expr {
        Expr::InList(Box::new(self), list)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// Evaluate over the given registers.
    #[inline]
    pub fn eval(&self, regs: &[i64]) -> i64 {
        match self {
            Expr::Col(i) => regs[*i],
            Expr::Lit(v) => *v,
            Expr::Add(a, b) => a.eval(regs) + b.eval(regs),
            Expr::Sub(a, b) => a.eval(regs) - b.eval(regs),
            Expr::Mul(a, b) => a.eval(regs) * b.eval(regs),
            Expr::Div(a, b) => {
                let d = b.eval(regs);
                if d == 0 {
                    0
                } else {
                    a.eval(regs) / d
                }
            }
            Expr::Eq(a, b) => (a.eval(regs) == b.eval(regs)) as i64,
            Expr::Ne(a, b) => (a.eval(regs) != b.eval(regs)) as i64,
            Expr::Lt(a, b) => (a.eval(regs) < b.eval(regs)) as i64,
            Expr::Le(a, b) => (a.eval(regs) <= b.eval(regs)) as i64,
            Expr::Gt(a, b) => (a.eval(regs) > b.eval(regs)) as i64,
            Expr::Ge(a, b) => (a.eval(regs) >= b.eval(regs)) as i64,
            Expr::And(a, b) => ((a.eval(regs) != 0) && (b.eval(regs) != 0)) as i64,
            Expr::Or(a, b) => ((a.eval(regs) != 0) || (b.eval(regs) != 0)) as i64,
            Expr::Not(a) => (a.eval(regs) == 0) as i64,
            Expr::Between(a, lo, hi) => {
                let v = a.eval(regs);
                (v >= *lo && v <= *hi) as i64
            }
            Expr::InList(a, list) => {
                let v = a.eval(regs);
                list.contains(&v) as i64
            }
            Expr::Hash(a) => hash_i64(a.eval(regs)),
        }
    }

    /// Evaluate as a boolean predicate.
    #[inline]
    pub fn eval_bool(&self, regs: &[i64]) -> bool {
        self.eval(regs) != 0
    }

    /// Column-at-a-time evaluation over the selected lanes of a chunk.
    ///
    /// `cols` are the chunk's register columns, `sel` the surviving selection
    /// (row indexes into the columns). Writes one dense value per selected
    /// lane into `out`: `out[j]` is the value at row `sel[j]`. Intermediate
    /// results are rented from `pool`, so a whole step chain evaluates with
    /// no per-tuple (and, steady-state, no per-chunk) allocation. The inner
    /// loops are branch-free over the lane dimension — the autovectorizable
    /// shape the vectorized lowering exists for. Semantically identical to
    /// [`Self::eval`] per lane; `And`/`Or` evaluate both sides (expressions
    /// are pure, so eager evaluation cannot change results).
    pub fn eval_batch(
        &self,
        cols: &[Vec<i64>],
        sel: &[u32],
        out: &mut Vec<i64>,
        pool: &mut ScratchPool,
    ) {
        out.clear();
        match self {
            Expr::Col(i) => {
                let src = &cols[*i];
                out.extend(sel.iter().map(|&r| src[r as usize]));
            }
            Expr::Lit(v) => out.resize(sel.len(), *v),
            Expr::Add(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| x + y),
            Expr::Sub(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| x - y),
            Expr::Mul(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| x * y),
            Expr::Div(a, b) => {
                binary_batch(a, b, cols, sel, out, pool, |x, y| if y == 0 { 0 } else { x / y })
            }
            Expr::Eq(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| (x == y) as i64),
            Expr::Ne(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| (x != y) as i64),
            Expr::Lt(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| (x < y) as i64),
            Expr::Le(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| (x <= y) as i64),
            Expr::Gt(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| (x > y) as i64),
            Expr::Ge(a, b) => binary_batch(a, b, cols, sel, out, pool, |x, y| (x >= y) as i64),
            Expr::And(a, b) => {
                binary_batch(a, b, cols, sel, out, pool, |x, y| ((x != 0) && (y != 0)) as i64)
            }
            Expr::Or(a, b) => {
                binary_batch(a, b, cols, sel, out, pool, |x, y| ((x != 0) || (y != 0)) as i64)
            }
            Expr::Not(a) => {
                a.eval_batch(cols, sel, out, pool);
                for v in out.iter_mut() {
                    *v = (*v == 0) as i64;
                }
            }
            Expr::Between(a, lo, hi) => {
                a.eval_batch(cols, sel, out, pool);
                for v in out.iter_mut() {
                    *v = (*v >= *lo && *v <= *hi) as i64;
                }
            }
            Expr::InList(a, list) => {
                a.eval_batch(cols, sel, out, pool);
                for v in out.iter_mut() {
                    *v = list.contains(v) as i64;
                }
            }
            Expr::Hash(a) => {
                a.eval_batch(cols, sel, out, pool);
                for v in out.iter_mut() {
                    *v = hash_i64(*v);
                }
            }
        }
    }

    /// The highest register index referenced, if any — used to validate that
    /// an expression fits a pipeline's input layout.
    pub fn max_register(&self) -> Option<usize> {
        match self {
            Expr::Col(i) => Some(*i),
            Expr::Lit(_) => None,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => match (a.max_register(), b.max_register()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
            Expr::Not(a) | Expr::Between(a, _, _) | Expr::InList(a, _) | Expr::Hash(a) => {
                a.max_register()
            }
        }
    }

    /// Validate that every referenced register exists in a layout of `width`
    /// registers.
    pub fn check_width(&self, width: usize) -> Result<()> {
        match self.max_register() {
            Some(max) if max >= width => Err(HetError::Codegen(format!(
                "expression references register {max}, pipeline input has {width}"
            ))),
            _ => Ok(()),
        }
    }

    /// Rough number of simple operations one evaluation performs; feeds the
    /// cost model's `ops` counter.
    pub fn op_count(&self) -> f64 {
        match self {
            Expr::Col(_) | Expr::Lit(_) => 0.25,
            Expr::Not(a) | Expr::Hash(a) => 1.0 + a.op_count(),
            Expr::Between(a, _, _) => 2.0 + a.op_count(),
            Expr::InList(a, list) => list.len() as f64 * 0.5 + a.op_count(),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => 1.0 + a.op_count() + b.op_count(),
        }
    }
}

/// Evaluate both operands of a binary expression into dense lane buffers and
/// combine them with `op` in one tight loop.
#[inline]
fn binary_batch<F: Fn(i64, i64) -> i64>(
    a: &Expr,
    b: &Expr,
    cols: &[Vec<i64>],
    sel: &[u32],
    out: &mut Vec<i64>,
    pool: &mut ScratchPool,
    op: F,
) {
    let mut rhs = pool.acquire();
    a.eval_batch(cols, sel, out, pool);
    b.eval_batch(cols, sel, &mut rhs, pool);
    for (l, r) in out.iter_mut().zip(&rhs) {
        *l = op(*l, *r);
    }
    pool.release(rhs);
}

/// A pool of reusable `i64` column buffers for chunk-local scratch.
///
/// Batch evaluation of a nested expression needs one buffer per concurrently
/// live operand; the pool hands buffers out and takes them back so the
/// steady-state chunk loop performs no heap allocation at all (buffers grow
/// to the chunk size once and are reused for the rest of the block).
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Vec<Vec<i64>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rent a buffer (empty, but with whatever capacity it last grew to).
    pub fn acquire(&mut self) -> Vec<i64> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a buffer to the pool.
    pub fn release(&mut self, buf: Vec<i64>) {
        self.free.push(buf);
    }
}

/// Multiplicative (Fibonacci) hash over an i64, also used by hash-pack and
/// the hash routing policy so that partition assignment is consistent across
/// operators.
#[inline]
pub fn hash_i64(v: i64) -> i64 {
    let x = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (x >> 1) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_comparisons() {
        let regs = [10, 3, -5];
        assert_eq!(Expr::col(0).eval(&regs), 10);
        assert_eq!(Expr::lit(7).eval(&regs), 7);
        assert_eq!(Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1))).eval(&regs), 13);
        assert_eq!(Expr::col(0).sub(Expr::col(2)).eval(&regs), 15);
        assert_eq!(Expr::col(0).mul(Expr::col(1)).eval(&regs), 30);
        assert_eq!(Expr::Div(Box::new(Expr::col(0)), Box::new(Expr::lit(3))).eval(&regs), 3);
        assert_eq!(Expr::Div(Box::new(Expr::col(0)), Box::new(Expr::lit(0))).eval(&regs), 0);
        assert_eq!(Expr::col(0).gt_lit(9).eval(&regs), 1);
        assert_eq!(Expr::col(0).lt_lit(9).eval(&regs), 0);
        assert_eq!(Expr::col(1).eq(Expr::lit(3)).eval(&regs), 1);
    }

    #[test]
    fn boolean_connectives() {
        let regs = [50, 1993];
        let pred = Expr::col(0).between(26, 35).or(Expr::col(1).eq(Expr::lit(1993)));
        assert!(pred.eval_bool(&regs));
        let both = Expr::col(0).gt_lit(40).and(Expr::col(1).gt_lit(2000));
        assert!(!both.eval_bool(&regs));
        assert_eq!(Expr::Not(Box::new(Expr::lit(0))).eval(&regs), 1);
        assert_eq!(Expr::Ne(Box::new(Expr::col(0)), Box::new(Expr::lit(50))).eval(&regs), 0);
        assert_eq!(Expr::Le(Box::new(Expr::col(0)), Box::new(Expr::lit(50))).eval(&regs), 1);
        assert_eq!(Expr::Ge(Box::new(Expr::col(0)), Box::new(Expr::lit(51))).eval(&regs), 0);
    }

    #[test]
    fn between_and_in_list_match_ssb_predicates() {
        // Q1.1: d_year = 1993 AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25
        let regs = [1993, 2, 20];
        let pred = Expr::col(0)
            .eq(Expr::lit(1993))
            .and(Expr::col(1).between(1, 3))
            .and(Expr::col(2).lt_lit(25));
        assert!(pred.eval_bool(&regs));
        let q = Expr::col(1).in_list(vec![2, 4, 6]);
        assert!(q.eval_bool(&regs));
        assert!(!Expr::col(1).in_list(vec![5, 7]).eval_bool(&regs));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let a = hash_i64(1);
        let b = hash_i64(2);
        assert_ne!(a, b);
        assert_eq!(a, hash_i64(1));
        assert!(a >= 0 && b >= 0, "hash must be non-negative for modulo routing");
        let h = Expr::Hash(Box::new(Expr::col(0)));
        assert_eq!(h.eval(&[1]), a);
    }

    #[test]
    fn max_register_and_width_check() {
        let e = Expr::col(3).eq(Expr::col(1)).and(Expr::lit(1));
        assert_eq!(e.max_register(), Some(3));
        assert!(e.check_width(4).is_ok());
        assert!(e.check_width(3).is_err());
        assert_eq!(Expr::lit(5).max_register(), None);
        assert!(Expr::lit(5).check_width(0).is_ok());
    }

    #[test]
    fn eval_batch_matches_scalar_eval_lane_for_lane() {
        // Every operator, evaluated over a sparse selection, must agree with
        // the scalar interpreter on each selected lane.
        let cols: Vec<Vec<i64>> = vec![
            (0..64).collect(),
            (0..64).map(|i| (i * 7) % 13 - 6).collect(),
            (0..64).map(|i| i % 3).collect(),
        ];
        let sel: Vec<u32> = (0..64).filter(|i| i % 5 != 0).collect();
        let exprs = vec![
            Expr::col(0),
            Expr::lit(-3),
            Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1))),
            Expr::col(0).sub(Expr::col(2)),
            Expr::col(1).mul(Expr::col(1)),
            Expr::Div(Box::new(Expr::col(0)), Box::new(Expr::col(2))), // hits y == 0 lanes
            Expr::col(0).eq(Expr::lit(21)),
            Expr::Ne(Box::new(Expr::col(2)), Box::new(Expr::lit(1))),
            Expr::col(1).lt_lit(0).and(Expr::col(0).gt_lit(10)),
            Expr::col(1).gt_lit(3).or(Expr::col(2).eq(Expr::lit(0))),
            Expr::Not(Box::new(Expr::col(2))),
            Expr::Le(Box::new(Expr::col(1)), Box::new(Expr::col(2)))
                .and(Expr::Ge(Box::new(Expr::col(0)), Box::new(Expr::lit(7)))),
            Expr::col(0).between(10, 40),
            Expr::col(2).in_list(vec![0, 2]),
            Expr::Hash(Box::new(Expr::col(0))),
        ];
        let mut pool = ScratchPool::new();
        let mut out = Vec::new();
        for expr in &exprs {
            expr.eval_batch(&cols, &sel, &mut out, &mut pool);
            assert_eq!(out.len(), sel.len(), "{expr:?}");
            for (j, &row) in sel.iter().enumerate() {
                let regs: Vec<i64> = cols.iter().map(|c| c[row as usize]).collect();
                assert_eq!(out[j], expr.eval(&regs), "{expr:?} lane {j} (row {row})");
            }
        }
    }

    #[test]
    fn op_count_grows_with_complexity() {
        let simple = Expr::col(0).gt_lit(5);
        let complex = Expr::col(0)
            .between(1, 3)
            .and(Expr::col(1).in_list(vec![1, 2, 3, 4, 5, 6, 7, 8]))
            .and(Expr::col(2).eq(Expr::lit(9)));
        assert!(complex.op_count() > simple.op_count());
    }
}
