//! The CPU lowering: a single-threaded, tuple-at-a-time loop.
//!
//! This is the right-hand side of Figure 3 as specialized by the CPU provider:
//! `threadIdInWorker = 0`, `#threadsInWorker = 1`, the neighborhood reduction
//! disappears, and the worker-scoped atomic degenerates to one atomic merge of
//! the block-local partial aggregates per block. Task parallelism comes from
//! running many instances of this lowering on different cores — never from
//! parallelism inside the generated code, exactly like morsel-driven CPU
//! engines.

use crate::expr::Expr;
use crate::ir::{AggSpec, Step, TerminalStep};
use crate::pipeline::{BlockCounters, CompiledPipeline, ExecCtx};
use crate::state::SharedState;
use hetex_common::{BlockHandle, Result};
use std::collections::HashMap;

/// Apply the transform steps to one tuple, invoking `emit` for every tuple
/// that reaches the terminal (a probe with several matches fans out).
/// Shared by the CPU and GPU lowerings — the "operator blueprint" both
/// providers specialize.
pub(crate) fn apply_transforms<E>(
    steps: &[Step],
    state: &SharedState,
    regs: Vec<i64>,
    probes: &mut u64,
    matches: &mut u64,
    emit: &mut E,
) -> Result<()>
where
    E: FnMut(Vec<i64>) -> Result<()>,
{
    apply_from(steps, 0, state, regs, probes, matches, emit)
}

fn apply_from<E>(
    steps: &[Step],
    idx: usize,
    state: &SharedState,
    regs: Vec<i64>,
    probes: &mut u64,
    matches: &mut u64,
    emit: &mut E,
) -> Result<()>
where
    E: FnMut(Vec<i64>) -> Result<()>,
{
    if idx == steps.len() {
        return emit(regs);
    }
    match &steps[idx] {
        Step::Filter { predicate } => {
            if predicate.eval_bool(&regs) {
                apply_from(steps, idx + 1, state, regs, probes, matches, emit)?;
            }
            Ok(())
        }
        Step::Map { exprs } => {
            let mapped: Vec<i64> = exprs.iter().map(|e| e.eval(&regs)).collect();
            apply_from(steps, idx + 1, state, mapped, probes, matches, emit)
        }
        Step::HashJoinProbe { key, slot, .. } => {
            let k = key.eval(&regs);
            *probes += 1;
            let table = state.hash_table(*slot)?;
            let mut found: Vec<Vec<i64>> = Vec::new();
            table.probe(k, |payload| found.push(payload.to_vec()));
            *matches += found.len() as u64;
            for payload in found {
                let mut widened = regs.clone();
                widened.extend_from_slice(&payload);
                apply_from(steps, idx + 1, state, widened, probes, matches, emit)?;
            }
            Ok(())
        }
    }
}

/// Evaluate the pack layout for one tuple.
pub(crate) fn eval_row(exprs: &[Expr], regs: &[i64]) -> Vec<i64> {
    exprs.iter().map(|e| e.eval(regs)).collect()
}

/// Partition index of a tuple under a hash-pack terminal.
pub(crate) fn partition_of(expr: &Expr, regs: &[i64], partitions: usize) -> usize {
    (expr.eval(regs).unsigned_abs() % partitions.max(1) as u64) as usize
}

/// Process one block with the CPU specialization.
pub(crate) fn process_block(
    pipeline: &CompiledPipeline,
    block: &BlockHandle,
    state: &SharedState,
    ctx: &mut ExecCtx,
) -> Result<(Vec<BlockHandle>, BlockCounters)> {
    let rows = block.rows();
    let data = block.block();
    let columns = data.columns();
    let mut counters = BlockCounters {
        rows_in: rows as u64,
        bytes_in: data.byte_size() as u64,
        ..Default::default()
    };

    // Block-local terminal state (the CPU provider's "thread-local variables").
    let mut partials: Vec<i64> = match pipeline.terminal() {
        TerminalStep::Reduce { aggs, .. } => aggs.iter().map(|a| a.func.identity()).collect(),
        _ => Vec::new(),
    };
    let mut local_groups: HashMap<Vec<i64>, Vec<i64>> = HashMap::new();
    let mut outputs: Vec<BlockHandle> = Vec::new();

    let mut probes = 0u64;
    let mut probe_matches = 0u64;
    let mut rows_terminal = 0u64;
    let mut rows_emitted = 0u64;
    let mut bytes_out = 0u64;
    let mut build_inserts = 0u64;

    let steps = pipeline.steps();
    let terminal = pipeline.terminal();

    for row in 0..rows {
        let regs: Vec<i64> = columns.iter().map(|c| c.get_i64(row).unwrap_or(0)).collect();
        apply_transforms(steps, state, regs, &mut probes, &mut probe_matches, &mut |r| {
            rows_terminal += 1;
            match terminal {
                TerminalStep::Pack { exprs, partition_by, partitions } => {
                    let out_row = eval_row(exprs, &r);
                    let p = partition_by
                        .as_ref()
                        .map(|e| partition_of(e, &r, *partitions))
                        .unwrap_or(0);
                    let width = out_row.len();
                    let bucket = ctx.open_partitions.entry(p).or_default();
                    bucket.push(out_row);
                    if bucket.len() >= ctx.out_capacity {
                        let full = ctx.open_partitions.remove(&p).unwrap_or_default();
                        rows_emitted += full.len() as u64;
                        bytes_out += (full.len() * width * 8) as u64;
                        let tag = partition_by.as_ref().map(|_| p);
                        outputs.push(ctx.build_block(&full, tag)?);
                    }
                }
                TerminalStep::HashJoinBuild { key, payload, slot } => {
                    let k = key.eval(&r);
                    let row_payload = eval_row(payload, &r);
                    state.hash_table(*slot)?.insert(k, row_payload);
                    build_inserts += 1;
                }
                TerminalStep::Reduce { aggs, .. } => {
                    accumulate_local(aggs, &r, &mut partials);
                }
                TerminalStep::GroupBy { keys, aggs, .. } => {
                    let key = eval_row(keys, &r);
                    let entry = local_groups
                        .entry(key)
                        .or_insert_with(|| aggs.iter().map(|a| a.func.identity()).collect());
                    accumulate_local(aggs, &r, entry);
                }
            }
            Ok(())
        })?;
    }

    // Merge the block-local partials into shared state: this is the
    // `workerScopedAtomic` of the CPU provider — one synchronization per
    // block, not per tuple.
    match terminal {
        TerminalStep::Reduce { aggs, slot } => {
            state.accumulators(*slot)?.merge_partials(&partials);
            counters.atomics += aggs.len() as u64;
        }
        TerminalStep::GroupBy { slot, .. } => {
            if !local_groups.is_empty() {
                state.group_by(*slot)?.merge_batch(local_groups.drain());
                counters.atomics += 1;
            }
        }
        TerminalStep::HashJoinBuild { .. } => {
            counters.atomics += build_inserts;
        }
        TerminalStep::Pack { .. } => {}
    }

    counters.probes = probes;
    counters.probe_matches = probe_matches;
    counters.rows_terminal = rows_terminal;
    counters.rows_emitted = rows_emitted;
    counters.bytes_out = bytes_out;
    Ok((outputs, counters))
}

/// Accumulate one tuple into block-local aggregate partials.
pub(crate) fn accumulate_local(aggs: &[AggSpec], regs: &[i64], partials: &mut [i64]) {
    for (i, agg) in aggs.iter().enumerate() {
        let value = agg.expr.eval(regs);
        partials[i] = agg.func.accumulate(partials[i], value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use hetex_common::{
        Block, BlockId, BlockMeta, ColumnData, KernelMode, MemoryNodeId, PipelineId,
    };
    use hetex_topology::DeviceKind;

    fn block_of(a: Vec<i64>, b: Vec<i64>) -> BlockHandle {
        let rows = a.len();
        let block = Block::new(vec![ColumnData::Int64(a), ColumnData::Int64(b)], rows).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0)))
    }

    // These tests pin the *tuple-at-a-time* lowering (the dispatch default is
    // vectorized; `lower_cpu_vec`'s differential tests cover that path).
    fn taat_ctx(node: usize, capacity: usize) -> ExecCtx {
        ExecCtx::cpu(MemoryNodeId::new(node), capacity).with_kernel_mode(KernelMode::TupleAtATime)
    }

    #[test]
    fn filtered_sum_matches_reference() {
        // SELECT SUM(b) FROM t WHERE a > 42 — the paper's running example.
        let a: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let b: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let expected: i64 = a.iter().zip(&b).filter(|(av, _)| **av > 42).map(|(_, bv)| *bv).sum();

        let mut state = SharedState::new();
        let slot = state.add_accumulators(&[AggSpec::sum(Expr::col(1))]);
        let pipeline = CompiledPipeline::new(
            PipelineId::new(9),
            DeviceKind::CpuCore,
            2,
            vec![Step::Filter { predicate: Expr::col(0).gt_lit(42) }],
            TerminalStep::Reduce { aggs: vec![AggSpec::sum(Expr::col(1))], slot },
        )
        .unwrap();
        let mut ctx = taat_ctx(0, 64);
        let out = pipeline.process_block(&block_of(a, b), &state, &mut ctx).unwrap();
        assert!(out.blocks.is_empty());
        assert_eq!(state.accumulators(slot).unwrap().values(), vec![expected]);
        assert_eq!(out.counters.rows_in, 1000);
        assert!(out.counters.rows_terminal < 1000);
        assert_eq!(out.counters.atomics, 1);
        assert!(out.work.bytes_scanned > 0.0);
    }

    #[test]
    fn build_then_probe_joins_correctly() {
        let mut state = SharedState::new();
        let ht = state.add_hash_table(1);
        let acc = state.add_accumulators(&[AggSpec::count(), AggSpec::sum(Expr::col(3))]);

        // Build side: keys 0..10, payload = key * 100.
        let build = CompiledPipeline::new(
            PipelineId::new(1),
            DeviceKind::CpuCore,
            2,
            vec![],
            TerminalStep::HashJoinBuild {
                key: Expr::col(0),
                payload: vec![Expr::col(1)],
                slot: ht,
            },
        )
        .unwrap();
        let build_block = block_of((0..10).collect(), (0..10).map(|i| i * 100).collect());
        let mut bctx = taat_ctx(0, 64);
        build.process_block(&build_block, &state, &mut bctx).unwrap();
        assert_eq!(state.hash_table(ht).unwrap().len(), 10);

        // Probe side: keys 0..1000 (only 0..10 match); count matches and sum payloads.
        let probe = CompiledPipeline::new(
            PipelineId::new(2),
            DeviceKind::CpuCore,
            2,
            vec![Step::HashJoinProbe { key: Expr::col(0), slot: ht, payload_width: 1 }],
            TerminalStep::Reduce {
                aggs: vec![AggSpec::count(), AggSpec::sum(Expr::col(2))],
                slot: acc,
            },
        )
        .unwrap();
        let probe_block = block_of((0..1000).collect(), vec![0; 1000]);
        let mut pctx = taat_ctx(0, 64);
        let out = probe.process_block(&probe_block, &state, &mut pctx).unwrap();
        assert_eq!(out.counters.probes, 1000);
        assert_eq!(out.counters.probe_matches, 10);
        let values = state.accumulators(acc).unwrap().values();
        assert_eq!(values[0], 10);
        assert_eq!(values[1], (0..10).map(|i| i * 100).sum::<i64>());
        assert!(out.work.random_bytes > 0.0, "probes are random accesses");
    }

    #[test]
    fn one_to_many_probe_fans_out() {
        let mut state = SharedState::new();
        let ht = state.add_hash_table(1);
        // Two build tuples share key 7.
        state.hash_table(ht).unwrap().insert(7, vec![70]);
        state.hash_table(ht).unwrap().insert(7, vec![71]);
        let acc = state.add_accumulators(&[AggSpec::count()]);
        let probe = CompiledPipeline::new(
            PipelineId::new(3),
            DeviceKind::CpuCore,
            2,
            vec![Step::HashJoinProbe { key: Expr::col(0), slot: ht, payload_width: 1 }],
            TerminalStep::Reduce { aggs: vec![AggSpec::count()], slot: acc },
        )
        .unwrap();
        let mut ctx = taat_ctx(0, 64);
        let out =
            probe.process_block(&block_of(vec![7, 8, 7], vec![0, 0, 0]), &state, &mut ctx).unwrap();
        assert_eq!(out.counters.probe_matches, 4);
        assert_eq!(state.accumulators(acc).unwrap().values(), vec![4]);
    }

    #[test]
    fn hash_pack_produces_homogeneous_blocks() {
        let state = SharedState::new();
        let pipeline = CompiledPipeline::new(
            PipelineId::new(5),
            DeviceKind::CpuCore,
            2,
            vec![],
            TerminalStep::Pack {
                exprs: vec![Expr::col(0), Expr::col(1)],
                partition_by: Some(Expr::col(0)),
                partitions: 4,
            },
        )
        .unwrap();
        let mut ctx = taat_ctx(0, 8);
        let a: Vec<i64> = (0..100).collect();
        let b: Vec<i64> = (0..100).map(|i| i * 2).collect();
        let mut out = pipeline.process_block(&block_of(a, b), &state, &mut ctx).unwrap();
        let tail = pipeline.finalize_instance(&mut ctx).unwrap();
        out.blocks.extend(tail.blocks);
        let total_rows: usize = out.blocks.iter().map(BlockHandle::rows).sum();
        assert_eq!(total_rows, 100);
        // Every block is tagged and hash-homogeneous.
        for handle in &out.blocks {
            let p = handle.meta().hash_partition.expect("hash-pack must tag blocks");
            let keys = handle.block().column(0).unwrap();
            for i in 0..handle.rows() {
                let key = keys.get_i64(i).unwrap();
                assert_eq!(key.unsigned_abs() % 4, p);
            }
        }
    }

    #[test]
    fn group_by_accumulates_per_key() {
        let mut state = SharedState::new();
        let aggs = vec![AggSpec::sum(Expr::col(1)), AggSpec::count()];
        let slot = state.add_group_by(&aggs);
        let pipeline = CompiledPipeline::new(
            PipelineId::new(6),
            DeviceKind::CpuCore,
            2,
            vec![],
            TerminalStep::GroupBy { keys: vec![Expr::col(0)], aggs: aggs.clone(), slot },
        )
        .unwrap();
        let mut ctx = taat_ctx(0, 64);
        let a: Vec<i64> = (0..100).map(|i| i % 5).collect();
        let b: Vec<i64> = (0..100).collect();
        pipeline.process_block(&block_of(a, b), &state, &mut ctx).unwrap();
        let groups = state.group_by(slot).unwrap().snapshot();
        assert_eq!(groups.len(), 5);
        for (key, values) in groups {
            let expected_sum: i64 = (0..100).filter(|i| i % 5 == key[0]).sum();
            assert_eq!(values, vec![expected_sum, 20]);
        }
    }

    #[test]
    fn map_step_projects_and_derives() {
        let mut state = SharedState::new();
        let slot = state.add_accumulators(&[AggSpec::sum(Expr::col(0))]);
        // revenue = a * b, then sum.
        let pipeline = CompiledPipeline::new(
            PipelineId::new(7),
            DeviceKind::CpuCore,
            2,
            vec![Step::Map { exprs: vec![Expr::col(0).mul(Expr::col(1))] }],
            TerminalStep::Reduce { aggs: vec![AggSpec::sum(Expr::col(0))], slot },
        )
        .unwrap();
        let mut ctx = taat_ctx(0, 64);
        pipeline
            .process_block(&block_of(vec![2, 3, 4], vec![10, 10, 10]), &state, &mut ctx)
            .unwrap();
        assert_eq!(state.accumulators(slot).unwrap().values(), vec![90]);
    }
}
