//! The code-generation context driven by the produce()/consume() traversal.
//!
//! §4.1: operators are code-generation modules exposing `produce()` and
//! `consume()`. The traversal itself lives with the plan operators (in
//! `hetex-engine`); what this module provides is the context those methods
//! write into: the pipeline currently being generated, the pipelines already
//! sealed by a pipeline breaker, and the shared state slots (hash tables,
//! accumulators) that pipelines reference across breaker boundaries.
//!
//! A HetExchange or blocking operator "breaks" the current pipeline by calling
//! [`CodegenContext::finish_pipeline`]; the next `produce()` below it starts a
//! fresh one with [`CodegenContext::begin_pipeline`], possibly for a different
//! device (that is what the device-crossing operators do).

use crate::ir::{AggSpec, StateSlot, Step, TerminalStep};
use crate::pipeline::CompiledPipeline;
use crate::state::SharedState;
use hetex_common::{HetError, PipelineId, Result};
use hetex_topology::DeviceKind;

/// A pipeline under construction.
#[derive(Debug)]
struct PipelineBuilder {
    device: DeviceKind,
    input_width: usize,
    steps: Vec<Step>,
}

/// Collects pipelines and shared state while the plan is traversed.
#[derive(Debug, Default)]
pub struct CodegenContext {
    state: SharedState,
    pipelines: Vec<CompiledPipeline>,
    current: Option<PipelineBuilder>,
    next_id: usize,
}

impl CodegenContext {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start generating a new pipeline for `device` whose input blocks carry
    /// `input_width` columns. Fails if a pipeline is already open — a plan
    /// operator forgot to break it.
    pub fn begin_pipeline(&mut self, device: DeviceKind, input_width: usize) -> Result<()> {
        if self.current.is_some() {
            return Err(HetError::Codegen(
                "begin_pipeline while another pipeline is still open".into(),
            ));
        }
        self.current = Some(PipelineBuilder { device, input_width, steps: Vec::new() });
        Ok(())
    }

    /// True if a pipeline is currently being generated.
    pub fn has_open_pipeline(&self) -> bool {
        self.current.is_some()
    }

    /// The device of the pipeline being generated.
    pub fn current_device(&self) -> Result<DeviceKind> {
        self.current
            .as_ref()
            .map(|b| b.device)
            .ok_or_else(|| HetError::Codegen("no open pipeline".into()))
    }

    /// Number of registers currently flowing through the open pipeline.
    pub fn current_width(&self) -> Result<usize> {
        let builder =
            self.current.as_ref().ok_or_else(|| HetError::Codegen("no open pipeline".into()))?;
        Ok(builder.steps.iter().fold(builder.input_width, |w, s| s.output_width(w)))
    }

    /// Append a fused step to the open pipeline (what a non-breaking
    /// operator's `consume()` emits).
    pub fn push_step(&mut self, step: Step) -> Result<()> {
        let width = self.current_width()?;
        step.check_width(width)?;
        self.current.as_mut().expect("checked by current_width").steps.push(step);
        Ok(())
    }

    /// Seal the open pipeline with a terminal step (what a pipeline breaker's
    /// `consume()` emits) and return the compiled pipeline's id.
    pub fn finish_pipeline(&mut self, terminal: TerminalStep) -> Result<PipelineId> {
        let builder = self
            .current
            .take()
            .ok_or_else(|| HetError::Codegen("finish_pipeline with no open pipeline".into()))?;
        let id = PipelineId::new(self.next_id);
        self.next_id += 1;
        let compiled = CompiledPipeline::new(
            id,
            builder.device,
            builder.input_width,
            builder.steps,
            terminal,
        )?;
        self.pipelines.push(compiled);
        Ok(id)
    }

    /// Register a join hash table shared across pipelines.
    pub fn add_hash_table(&mut self, payload_width: usize) -> StateSlot {
        self.state.add_hash_table(payload_width)
    }

    /// Register ungrouped aggregate accumulators.
    pub fn add_accumulators(&mut self, aggs: &[AggSpec]) -> StateSlot {
        self.state.add_accumulators(aggs)
    }

    /// Register a group-by table.
    pub fn add_group_by(&mut self, aggs: &[AggSpec]) -> StateSlot {
        self.state.add_group_by(aggs)
    }

    /// Pipelines generated so far.
    pub fn pipelines(&self) -> &[CompiledPipeline] {
        &self.pipelines
    }

    /// A generated pipeline by id.
    pub fn pipeline(&self, id: PipelineId) -> Result<&CompiledPipeline> {
        self.pipelines
            .iter()
            .find(|p| p.id() == id)
            .ok_or_else(|| HetError::Codegen(format!("unknown pipeline {id}")))
    }

    /// Finish code generation, returning the pipelines and the shared state.
    /// Fails if a pipeline was left open.
    pub fn seal(self) -> Result<(Vec<CompiledPipeline>, SharedState)> {
        if self.current.is_some() {
            return Err(HetError::Codegen("code generation ended with an open pipeline".into()));
        }
        Ok((self.pipelines, self.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn build_a_two_pipeline_plan() {
        // Build side pipeline (CPU), then probe+reduce pipeline (GPU) — the
        // skeleton of the paper's running example.
        let mut ctx = CodegenContext::new();
        let ht = ctx.add_hash_table(1);
        let acc = ctx.add_accumulators(&[AggSpec::sum(Expr::col(2))]);

        ctx.begin_pipeline(DeviceKind::CpuCore, 2).unwrap();
        ctx.push_step(Step::Filter { predicate: Expr::col(0).gt_lit(0) }).unwrap();
        let build_id = ctx
            .finish_pipeline(TerminalStep::HashJoinBuild {
                key: Expr::col(0),
                payload: vec![Expr::col(1)],
                slot: ht,
            })
            .unwrap();

        ctx.begin_pipeline(DeviceKind::Gpu, 2).unwrap();
        assert_eq!(ctx.current_device().unwrap(), DeviceKind::Gpu);
        assert_eq!(ctx.current_width().unwrap(), 2);
        ctx.push_step(Step::HashJoinProbe { key: Expr::col(0), slot: ht, payload_width: 1 })
            .unwrap();
        assert_eq!(ctx.current_width().unwrap(), 3);
        let probe_id = ctx
            .finish_pipeline(TerminalStep::Reduce {
                aggs: vec![AggSpec::sum(Expr::col(2))],
                slot: acc,
            })
            .unwrap();

        assert_ne!(build_id, probe_id);
        assert!(ctx.pipeline(build_id).is_ok());
        let (pipelines, state) = ctx.seal().unwrap();
        assert_eq!(pipelines.len(), 2);
        assert_eq!(state.len(), 2);
        assert_eq!(pipelines[0].device(), DeviceKind::CpuCore);
        assert_eq!(pipelines[1].device(), DeviceKind::Gpu);
    }

    #[test]
    fn nested_begin_and_dangling_pipelines_are_errors() {
        let mut ctx = CodegenContext::new();
        ctx.begin_pipeline(DeviceKind::CpuCore, 1).unwrap();
        assert!(ctx.begin_pipeline(DeviceKind::Gpu, 1).is_err());
        assert!(ctx.has_open_pipeline());
        // Sealing with an open pipeline is a codegen bug.
        assert!(ctx.seal().is_err());
    }

    #[test]
    fn steps_are_width_checked_during_generation() {
        let mut ctx = CodegenContext::new();
        ctx.begin_pipeline(DeviceKind::CpuCore, 2).unwrap();
        let bad = ctx.push_step(Step::Filter { predicate: Expr::col(7).gt_lit(0) });
        assert!(bad.is_err());
        // Width checks also apply to terminals.
        let bad_terminal = ctx.finish_pipeline(TerminalStep::Pack {
            exprs: vec![Expr::col(9)],
            partition_by: None,
            partitions: 1,
        });
        assert!(bad_terminal.is_err());
    }

    #[test]
    fn operations_without_open_pipeline_fail() {
        let mut ctx = CodegenContext::new();
        assert!(ctx.current_width().is_err());
        assert!(ctx.current_device().is_err());
        assert!(ctx.push_step(Step::Filter { predicate: Expr::lit(1) }).is_err());
        assert!(ctx
            .finish_pipeline(TerminalStep::Pack {
                exprs: vec![],
                partition_by: None,
                partitions: 1
            })
            .is_err());
        assert!(ctx.pipeline(PipelineId::new(0)).is_err());
    }
}
