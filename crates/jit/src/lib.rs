//! # hetex-jit
//!
//! The "JIT compilation" layer of the reproduction.
//!
//! The paper generates LLVM IR per pipeline and lowers it to x86 or PTX
//! depending on the *device provider* the pipeline was instantiated with
//! (Table 1, Figure 3). LLVM and CUDA are not available here, so this crate
//! substitutes machine-code generation with **plan-time specialization**: a
//! pipeline is described by a small IR of fused steps ([`ir::Step`]) built via
//! the classic produce()/consume() traversal ([`codegen`]), and "compilation"
//! resolves column offsets, constants and state slots up front and selects a
//! device-specific *lowering*:
//!
//! * [`lower_cpu`] — a single-threaded, tuple-at-a-time loop with thread-local
//!   accumulators, the shape of Figure 3's CPU specialization;
//! * [`lower_cpu_vec`] — a chunked, selection-vector CPU lowering (the default,
//!   see [`hetex_common::KernelMode`]): filters refine a `u32` selection index
//!   array in tight autovectorizable loops, expressions evaluate
//!   column-at-a-time into pooled scratch, and terminals consume the surviving
//!   selection in one pass — same IR, same rows, fewer per-tuple dispatches;
//! * [`lower_gpu`] — a SIMT kernel on the simulated GPU (`hetex-gpu-sim`) with
//!   a grid-stride loop, thread-local accumulators, warp-level "neighborhood"
//!   reduction and one device atomic per warp — the shape of Listing 1's
//!   pipeline 9.
//!
//! Both lowerings interpret the *same* step IR, which is exactly the paper's
//! "one operator blueprint, two specializations" property: relational
//! operators never contain device-specific code; the [`provider::DeviceProvider`]
//! supplies `threadIdInWorker`, `#threadsInWorker`, state allocation and
//! worker-scoped atomics.

pub mod codegen;
pub mod expr;
pub mod ir;
pub mod lower_cpu;
pub mod lower_cpu_vec;
pub mod lower_gpu;
pub mod pipeline;
pub mod provider;
pub mod state;

pub use codegen::CodegenContext;
pub use expr::{Expr, ScratchPool};
pub use ir::{AggFunc, AggSpec, StateSlot, Step, TerminalStep};
pub use lower_cpu_vec::{refine_selection, VEC_CHUNK};
pub use pipeline::{BlockCounters, CompiledPipeline, ExecCtx, PipelineOutput};
pub use provider::{CpuProvider, DeviceProvider, GpuProvider};
pub use state::{SharedState, StateObject};
