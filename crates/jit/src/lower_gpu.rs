//! The GPU lowering: a SIMT kernel over the simulated GPU.
//!
//! This is the left-hand side of Figure 3 as specialized by the GPU provider
//! and the shape of Listing 1's pipeline 9: `threadIdInWorker` becomes the
//! grid-wide thread id, `#threadsInWorker` the grid size, tuples are visited
//! with a grid-stride loop, aggregates are accumulated in thread-local
//! registers, reduced per warp ("neighborhood") and flushed with one
//! device-scoped atomic per warp.
//!
//! The kernel body interprets the same step IR as the CPU lowering
//! (`lower_cpu::apply_transforms`), which is the "single blueprint, two
//! specializations" property HetExchange gets from device providers.

use crate::ir::TerminalStep;
use crate::lower_cpu::{accumulate_local, apply_transforms, eval_row, partition_of};
use crate::pipeline::{BlockCounters, CompiledPipeline, ExecCtx};
use crate::state::SharedState;
use hetex_common::{BlockHandle, HetError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process one block with the GPU specialization.
pub(crate) fn process_block(
    pipeline: &CompiledPipeline,
    block: &BlockHandle,
    state: &SharedState,
    ctx: &mut ExecCtx,
) -> Result<(Vec<BlockHandle>, BlockCounters)> {
    let gpu = ctx
        .gpu
        .clone()
        .ok_or_else(|| HetError::Execution("GPU pipeline executed without a GPU device".into()))?;
    let rows = block.rows();
    let data = block.block();
    let columns = data.columns();
    let config = ctx.launch_config;

    // Shared (device-visible) counters, updated once per virtual thread.
    let probes = AtomicU64::new(0);
    let probe_matches = AtomicU64::new(0);
    let rows_terminal = AtomicU64::new(0);
    let first_error: Mutex<Option<HetError>> = Mutex::new(None);
    // Packed output rows produced by the kernel, gathered per partition.
    let packed: Mutex<HashMap<usize, Vec<Vec<i64>>>> = Mutex::new(HashMap::new());

    let steps = pipeline.steps();
    let terminal = pipeline.terminal();

    gpu.launch(config, |thread| {
        // Thread-local state (the registers of Listing 1, lines 22/26).
        let mut local_partials: Vec<i64> = match terminal {
            TerminalStep::Reduce { aggs, .. } => aggs.iter().map(|a| a.func.identity()).collect(),
            _ => Vec::new(),
        };
        let mut local_groups: HashMap<Vec<i64>, Vec<i64>> = HashMap::new();
        let mut local_packed: Vec<(usize, Vec<i64>)> = Vec::new();
        let mut local_probes = 0u64;
        let mut local_matches = 0u64;
        let mut local_terminal = 0u64;

        for i in thread.grid_stride(rows) {
            let regs: Vec<i64> = columns.iter().map(|c| c.get_i64(i).unwrap_or(0)).collect();
            let result = apply_transforms(
                steps,
                state,
                regs,
                &mut local_probes,
                &mut local_matches,
                &mut |r| {
                    local_terminal += 1;
                    match terminal {
                        TerminalStep::Pack { exprs, partition_by, partitions } => {
                            let out_row = eval_row(exprs, &r);
                            let p = partition_by
                                .as_ref()
                                .map(|e| partition_of(e, &r, *partitions))
                                .unwrap_or(0);
                            local_packed.push((p, out_row));
                        }
                        TerminalStep::HashJoinBuild { key, payload, slot } => {
                            let k = key.eval(&r);
                            state.hash_table(*slot)?.insert(k, eval_row(payload, &r));
                        }
                        TerminalStep::Reduce { aggs, .. } => {
                            accumulate_local(aggs, &r, &mut local_partials);
                        }
                        TerminalStep::GroupBy { keys, aggs, .. } => {
                            let key = eval_row(keys, &r);
                            let entry = local_groups.entry(key).or_insert_with(|| {
                                aggs.iter().map(|a| a.func.identity()).collect()
                            });
                            accumulate_local(aggs, &r, entry);
                        }
                    }
                    Ok(())
                },
            );
            if let Err(e) = result {
                let mut slot = first_error.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
                return;
            }
        }

        // Flush thread-local state into device-shared state. Warp leaders in
        // the generated code do this after a neighborhood reduction; the
        // functional effect is identical, and the cost model charges one
        // atomic per warp below.
        let flush = (|| -> Result<()> {
            match terminal {
                TerminalStep::Reduce { slot, .. } => {
                    state.accumulators(*slot)?.merge_partials(&local_partials);
                }
                TerminalStep::GroupBy { slot, .. } => {
                    if !local_groups.is_empty() {
                        state.group_by(*slot)?.merge_batch(local_groups.drain());
                    }
                }
                TerminalStep::Pack { .. } => {
                    if !local_packed.is_empty() {
                        let mut shared = packed.lock();
                        for (p, row) in local_packed.drain(..) {
                            shared.entry(p).or_default().push(row);
                        }
                    }
                }
                TerminalStep::HashJoinBuild { .. } => {}
            }
            Ok(())
        })();
        if let Err(e) = flush {
            let mut slot = first_error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }

        probes.fetch_add(local_probes, Ordering::Relaxed);
        probe_matches.fetch_add(local_matches, Ordering::Relaxed);
        rows_terminal.fetch_add(local_terminal, Ordering::Relaxed);
    });

    if let Some(err) = first_error.lock().take() {
        return Err(err);
    }

    let rows_terminal = rows_terminal.load(Ordering::Relaxed);
    let mut counters = BlockCounters {
        rows_in: rows as u64,
        bytes_in: data.byte_size() as u64,
        probes: probes.load(Ordering::Relaxed),
        probe_matches: probe_matches.load(Ordering::Relaxed),
        rows_terminal,
        launches: 1,
        ..Default::default()
    };

    // One device atomic per active warp (per aggregate), the neighborhood-
    // reduction discipline of Listing 1.
    let active_warps =
        config.total_warps().min(rows.div_ceil(hetex_gpu_sim::simt::WARP_SIZE).max(1)) as u64;
    counters.atomics = match terminal {
        TerminalStep::Reduce { aggs, .. } => active_warps * aggs.len() as u64,
        TerminalStep::GroupBy { .. } => active_warps,
        TerminalStep::HashJoinBuild { .. } => rows_terminal,
        TerminalStep::Pack { .. } => 0,
    };

    // Move the kernel's packed rows into the instance's open partitions and
    // flush the partitions that filled up.
    let mut outputs = Vec::new();
    let packed = packed.into_inner();
    if !packed.is_empty() {
        let tagged = matches!(terminal, TerminalStep::Pack { partition_by: Some(_), .. });
        for (p, rows) in packed {
            let mut bucket = ctx.open_partitions.remove(&p).unwrap_or_default();
            bucket.extend(rows);
            while bucket.len() >= ctx.out_capacity {
                let rest = bucket.split_off(ctx.out_capacity);
                let full = std::mem::replace(&mut bucket, rest);
                counters.rows_emitted += full.len() as u64;
                counters.bytes_out += (full.len() * full[0].len() * 8) as u64;
                let handle = ctx.build_block(&full, if tagged { Some(p) } else { None })?;
                outputs.push(handle);
            }
            if !bucket.is_empty() {
                ctx.open_partitions.insert(p, bucket);
            }
        }
    }

    Ok((outputs, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::{AggSpec, StateSlot, Step};
    use crate::pipeline::ExecCtx;
    use hetex_common::{Block, BlockId, BlockMeta, ColumnData, MemoryNodeId, PipelineId};
    use hetex_gpu_sim::device::standalone_gpu;
    use hetex_topology::DeviceKind;
    use std::sync::Arc;

    fn block_of(a: Vec<i64>, b: Vec<i64>) -> BlockHandle {
        let rows = a.len();
        let block = Block::new(vec![ColumnData::Int64(a), ColumnData::Int64(b)], rows).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0)))
    }

    fn gpu_ctx(capacity: usize) -> ExecCtx {
        ExecCtx::gpu(Arc::new(standalone_gpu()), capacity)
    }

    #[test]
    fn gpu_filtered_sum_matches_cpu_result() {
        let a: Vec<i64> = (0..20_000).map(|i| i % 100).collect();
        let b: Vec<i64> = (0..20_000).map(|i| i * 7).collect();
        let expected: i64 = a.iter().zip(&b).filter(|(av, _)| **av > 42).map(|(_, bv)| *bv).sum();

        let mut state = SharedState::new();
        let slot = state.add_accumulators(&[AggSpec::sum(Expr::col(1))]);
        let pipeline = CompiledPipeline::new(
            PipelineId::new(9),
            DeviceKind::Gpu,
            2,
            vec![Step::Filter { predicate: Expr::col(0).gt_lit(42) }],
            TerminalStep::Reduce { aggs: vec![AggSpec::sum(Expr::col(1))], slot },
        )
        .unwrap();
        let mut ctx = gpu_ctx(1024);
        let out = pipeline.process_block(&block_of(a, b), &state, &mut ctx).unwrap();
        assert_eq!(state.accumulators(slot).unwrap().values(), vec![expected]);
        assert_eq!(out.counters.launches, 1);
        assert!(out.counters.atomics > 0);
        assert!(out.work.kernel_launches == 1);
    }

    #[test]
    fn gpu_requires_a_device() {
        let mut state = SharedState::new();
        let slot = state.add_accumulators(&[AggSpec::count()]);
        let pipeline = CompiledPipeline::new(
            PipelineId::new(8),
            DeviceKind::Gpu,
            2,
            vec![],
            TerminalStep::Reduce { aggs: vec![AggSpec::count()], slot },
        )
        .unwrap();
        // A CPU context has no GPU attached.
        let mut ctx = ExecCtx::cpu(MemoryNodeId::new(0), 64);
        let err = pipeline.process_block(&block_of(vec![1], vec![2]), &state, &mut ctx);
        assert!(err.is_err());
    }

    #[test]
    fn gpu_probe_matches_reference_join() {
        let mut state = SharedState::new();
        let ht = state.add_hash_table(1);
        for k in 0..50 {
            state.hash_table(ht).unwrap().insert(k, vec![k * 1000]);
        }
        let acc = state.add_accumulators(&[AggSpec::count(), AggSpec::sum(Expr::col(2))]);
        let pipeline = CompiledPipeline::new(
            PipelineId::new(10),
            DeviceKind::Gpu,
            2,
            vec![Step::HashJoinProbe { key: Expr::col(0), slot: ht, payload_width: 1 }],
            TerminalStep::Reduce {
                aggs: vec![AggSpec::count(), AggSpec::sum(Expr::col(2))],
                slot: acc,
            },
        )
        .unwrap();
        let keys: Vec<i64> = (0..10_000).map(|i| i % 200).collect();
        let expected_matches = keys.iter().filter(|k| **k < 50).count() as i64;
        let expected_sum: i64 = keys.iter().filter(|k| **k < 50).map(|k| k * 1000).sum();
        let mut ctx = gpu_ctx(1024);
        let out =
            pipeline.process_block(&block_of(keys, vec![0; 10_000]), &state, &mut ctx).unwrap();
        assert_eq!(out.counters.probes, 10_000);
        assert_eq!(out.counters.probe_matches as i64, expected_matches);
        assert_eq!(state.accumulators(acc).unwrap().values(), vec![expected_matches, expected_sum]);
    }

    #[test]
    fn gpu_pack_emits_all_surviving_rows() {
        let state = SharedState::new();
        let pipeline = CompiledPipeline::new(
            PipelineId::new(11),
            DeviceKind::Gpu,
            2,
            vec![Step::Filter { predicate: Expr::col(0).lt_lit(500) }],
            TerminalStep::Pack {
                exprs: vec![Expr::col(0), Expr::col(1)],
                partition_by: None,
                partitions: 1,
            },
        )
        .unwrap();
        let a: Vec<i64> = (0..2000).collect();
        let b: Vec<i64> = (0..2000).map(|i| i + 1).collect();
        let mut ctx = gpu_ctx(128);
        let mut out = pipeline.process_block(&block_of(a, b), &state, &mut ctx).unwrap();
        out.blocks.extend(pipeline.finalize_instance(&mut ctx).unwrap().blocks);
        let rows: usize = out.blocks.iter().map(BlockHandle::rows).sum();
        assert_eq!(rows, 500);
        // Every emitted row satisfies the filter and keeps b = a + 1.
        for handle in &out.blocks {
            let block = handle.block();
            for i in 0..handle.rows() {
                let a = block.column(0).unwrap().get_i64(i).unwrap();
                let b = block.column(1).unwrap().get_i64(i).unwrap();
                assert!(a < 500);
                assert_eq!(b, a + 1);
            }
        }
    }

    #[test]
    fn gpu_group_by_matches_reference() {
        let mut state = SharedState::new();
        let aggs = vec![AggSpec::sum(Expr::col(1))];
        let slot = state.add_group_by(&aggs);
        let pipeline = CompiledPipeline::new(
            PipelineId::new(12),
            DeviceKind::Gpu,
            2,
            vec![],
            TerminalStep::GroupBy { keys: vec![Expr::col(0)], aggs, slot },
        )
        .unwrap();
        let a: Vec<i64> = (0..10_000).map(|i| i % 7).collect();
        let b: Vec<i64> = (0..10_000).collect();
        let mut ctx = gpu_ctx(1024);
        pipeline.process_block(&block_of(a, b), &state, &mut ctx).unwrap();
        let groups = state.group_by(slot).unwrap().snapshot();
        assert_eq!(groups.len(), 7);
        for (key, values) in groups {
            let expected: i64 = (0..10_000i64).filter(|i| i % 7 == key[0]).sum();
            assert_eq!(values, vec![expected]);
        }
    }

    #[test]
    fn bad_state_slot_surfaces_as_error_not_panic() {
        let state = SharedState::new();
        let pipeline = CompiledPipeline::new(
            PipelineId::new(13),
            DeviceKind::Gpu,
            1,
            vec![],
            TerminalStep::Reduce { aggs: vec![AggSpec::count()], slot: StateSlot(7) },
        )
        .unwrap();
        let block = Block::new(vec![ColumnData::Int64(vec![1, 2, 3])], 3).unwrap();
        let handle = BlockHandle::new(block, BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0)));
        let mut ctx = gpu_ctx(8);
        let err = pipeline.process_block(&handle, &state, &mut ctx);
        assert!(err.is_err());
    }
}
