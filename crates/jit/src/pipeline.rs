//! Compiled pipelines and their execution context.
//!
//! A [`CompiledPipeline`] is the product of "JIT compilation": the fused,
//! specialized form of the operators between two pipeline breakers. Its
//! behaviour is identical on every device; *how* it is executed differs per
//! device and is implemented by the lowerings (`lower_cpu`, `lower_gpu`),
//! selected by the pipeline's device kind.
//!
//! Processing a block returns the produced output blocks plus
//! [`BlockCounters`] describing what actually happened (rows, probes,
//! matches, emitted rows). The counters are converted into a
//! [`WorkProfile`](hetex_topology::WorkProfile) — scaled by the block's
//! weight — which the executor prices with the cost model and charges to the
//! worker's resource clock.

use crate::ir::{Step, TerminalStep};
use crate::lower_cpu;
use crate::lower_cpu_vec::{self, VEC_CHUNK};
use crate::lower_gpu;
use crate::state::SharedState;
use hetex_common::{
    Block, BlockHandle, BlockId, BlockMeta, ColumnData, HetError, KernelMode, MemoryNodeId,
    PipelineId, Result,
};
use hetex_gpu_sim::{GpuDevice, LaunchConfig};
use hetex_topology::{DeviceKind, WorkProfile};
use std::collections::HashMap;
use std::sync::Arc;

/// Functional counters for one processed block (or one finalize call).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockCounters {
    /// Tuples read from the input block.
    pub rows_in: u64,
    /// Tuples that reached the terminal step.
    pub rows_terminal: u64,
    /// Tuples emitted into output blocks.
    pub rows_emitted: u64,
    /// Hash-table probes performed.
    pub probes: u64,
    /// Probe matches found.
    pub probe_matches: u64,
    /// Device-scoped atomic updates performed.
    pub atomics: u64,
    /// Kernel launches performed (GPU lowering only).
    pub launches: u64,
    /// Physical input bytes.
    pub bytes_in: u64,
    /// Physical output bytes.
    pub bytes_out: u64,
}

impl BlockCounters {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &BlockCounters) {
        self.rows_in += other.rows_in;
        self.rows_terminal += other.rows_terminal;
        self.rows_emitted += other.rows_emitted;
        self.probes += other.probes;
        self.probe_matches += other.probe_matches;
        self.atomics += other.atomics;
        self.launches += other.launches;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
    }
}

/// The result of processing one block (or finalizing an instance).
#[derive(Debug, Default)]
pub struct PipelineOutput {
    /// Output block handles produced.
    pub blocks: Vec<BlockHandle>,
    /// Counters describing the work done.
    pub counters: BlockCounters,
    /// The modeled work, already scaled by the input block's weight.
    pub work: WorkProfile,
}

/// Per-instance execution context: which device the instance runs on, where
/// its outputs live, and the partially filled output blocks of the pack
/// terminal (flushed by `finalize_instance`).
#[derive(Debug)]
pub struct ExecCtx {
    /// The device kind this instance runs on.
    pub device: DeviceKind,
    /// The simulated GPU, for GPU instances.
    pub gpu: Option<Arc<GpuDevice>>,
    /// Kernel launch configuration used by the GPU lowering.
    pub launch_config: LaunchConfig,
    /// Capacity (tuples) of produced output blocks.
    pub out_capacity: usize,
    /// Memory node output blocks are produced on (local to this instance).
    pub out_node: MemoryNodeId,
    /// How CPU instances execute the step chain (vectorized chunks vs the
    /// legacy per-tuple loop). Ignored by the GPU lowering.
    pub kernel_mode: KernelMode,
    /// Partially filled pack outputs, keyed by partition.
    pub(crate) open_partitions: HashMap<usize, Vec<Vec<i64>>>,
    /// Weight inherited by produced blocks (set from the last input block).
    pub(crate) current_weight: f64,
    next_block_id: usize,
}

impl ExecCtx {
    /// A CPU execution context producing blocks on `out_node`.
    pub fn cpu(out_node: MemoryNodeId, out_capacity: usize) -> Self {
        Self {
            device: DeviceKind::CpuCore,
            gpu: None,
            launch_config: LaunchConfig::new(1, 1),
            out_capacity,
            out_node,
            kernel_mode: KernelMode::default(),
            open_partitions: HashMap::new(),
            current_weight: 1.0,
            next_block_id: 0,
        }
    }

    /// A GPU execution context bound to a simulated device.
    pub fn gpu(device: Arc<GpuDevice>, out_capacity: usize) -> Self {
        let out_node = device.memory_node();
        Self {
            device: DeviceKind::Gpu,
            gpu: Some(device),
            launch_config: LaunchConfig::default_for_device(),
            out_capacity,
            out_node,
            kernel_mode: KernelMode::default(),
            open_partitions: HashMap::new(),
            current_weight: 1.0,
            next_block_id: 0,
        }
    }

    /// Select the CPU kernel execution mode for this instance.
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Allocate the next output block id for this instance.
    pub(crate) fn next_block_id(&mut self) -> BlockId {
        let id = BlockId::new(self.next_block_id);
        self.next_block_id += 1;
        id
    }

    /// Build an output block handle from row-major tuples.
    pub(crate) fn build_block(
        &mut self,
        rows: &[Vec<i64>],
        partition: Option<usize>,
    ) -> Result<BlockHandle> {
        let width = rows.first().map(Vec::len).unwrap_or(0);
        let mut columns: Vec<Vec<i64>> = vec![Vec::with_capacity(rows.len()); width];
        for row in rows {
            if row.len() != width {
                return Err(HetError::Execution("ragged packed output".into()));
            }
            for (c, v) in row.iter().enumerate() {
                columns[c].push(*v);
            }
        }
        let block = Block::new(columns.into_iter().map(ColumnData::Int64).collect(), rows.len())?;
        let mut meta = BlockMeta::new(self.next_block_id(), self.out_node);
        meta.weight = self.current_weight;
        meta.hash_partition = partition.map(|p| p as u64);
        Ok(BlockHandle::new(block, meta))
    }
}

/// A device-specialized, fused pipeline.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    id: PipelineId,
    device: DeviceKind,
    input_width: usize,
    steps: Vec<Step>,
    terminal: TerminalStep,
}

impl CompiledPipeline {
    /// Compile a pipeline, validating that register references are within the
    /// width flowing through each step.
    pub fn new(
        id: PipelineId,
        device: DeviceKind,
        input_width: usize,
        steps: Vec<Step>,
        terminal: TerminalStep,
    ) -> Result<Self> {
        let mut width = input_width;
        for step in &steps {
            step.check_width(width)?;
            width = step.output_width(width);
        }
        terminal.check_width(width)?;
        Ok(Self { id, device, input_width, steps, terminal })
    }

    /// The pipeline's identifier.
    pub fn id(&self) -> PipelineId {
        self.id
    }

    /// The device kind the pipeline was compiled for.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// Number of registers of the input layout.
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// The transform steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The terminal step.
    pub fn terminal(&self) -> &TerminalStep {
        &self.terminal
    }

    /// Number of registers flowing into the terminal step.
    pub fn terminal_width(&self) -> usize {
        self.steps.iter().fold(self.input_width, |w, s| s.output_width(w))
    }

    /// Process one input block on this instance.
    pub fn process_block(
        &self,
        block: &BlockHandle,
        state: &SharedState,
        ctx: &mut ExecCtx,
    ) -> Result<PipelineOutput> {
        if block.block().width() != self.input_width {
            return Err(HetError::Execution(format!(
                "pipeline {} expects {} input columns, block has {}",
                self.id,
                self.input_width,
                block.block().width()
            )));
        }
        ctx.current_weight = block.meta().weight;
        let (blocks, counters) = match (self.device, ctx.kernel_mode) {
            (DeviceKind::CpuCore, KernelMode::Vectorized) => {
                lower_cpu_vec::process_block(self, block, state, ctx)?
            }
            (DeviceKind::CpuCore, KernelMode::TupleAtATime) => {
                lower_cpu::process_block(self, block, state, ctx)?
            }
            // The GPU lowering has exactly one shape: a grid-stride kernel
            // already amortizes dispatch, so the kernel mode is a CPU knob.
            (DeviceKind::Gpu, _) => lower_gpu::process_block(self, block, state, ctx)?,
        };
        let work = self.work_profile_for(&counters, ctx.current_weight, self.charge_mode(ctx));
        Ok(PipelineOutput { blocks, counters, work })
    }

    /// The kernel mode this pipeline's work is charged (and executed) under:
    /// the context's mode on CPU, always tuple-at-a-time on the GPU (whose
    /// kernel shape — and therefore cost shape — is unchanged).
    fn charge_mode(&self, ctx: &ExecCtx) -> KernelMode {
        match self.device {
            DeviceKind::CpuCore => ctx.kernel_mode,
            DeviceKind::Gpu => KernelMode::TupleAtATime,
        }
    }

    /// Flush this instance's partially filled pack outputs.
    pub fn finalize_instance(&self, ctx: &mut ExecCtx) -> Result<PipelineOutput> {
        let mut blocks = Vec::new();
        let mut counters = BlockCounters::default();
        let partitions: Vec<usize> = ctx.open_partitions.keys().copied().collect();
        for p in partitions {
            let rows = ctx.open_partitions.remove(&p).unwrap_or_default();
            if rows.is_empty() {
                continue;
            }
            counters.rows_emitted += rows.len() as u64;
            counters.bytes_out += (rows.len() * rows[0].len() * 8) as u64;
            let partition = match &self.terminal {
                TerminalStep::Pack { partition_by: Some(_), .. } => Some(p),
                _ => None,
            };
            blocks.push(ctx.build_block(&rows, partition)?);
        }
        let work = self.work_profile_for(&counters, ctx.current_weight, self.charge_mode(ctx));
        Ok(PipelineOutput { blocks, counters, work })
    }

    /// Emit the results held in shared state (reduce / group-by terminals).
    /// Must be called exactly once per pipeline, after every instance has
    /// finished, by the executor.
    pub fn emit_state_results(
        &self,
        state: &SharedState,
        ctx: &mut ExecCtx,
    ) -> Result<PipelineOutput> {
        let mut rows: Vec<Vec<i64>> = Vec::new();
        match &self.terminal {
            TerminalStep::Reduce { slot, .. } => {
                rows.push(state.accumulators(*slot)?.values());
            }
            TerminalStep::GroupBy { slot, .. } => {
                for (key, values) in state.group_by(*slot)?.snapshot() {
                    let mut row = key;
                    row.extend(values);
                    rows.push(row);
                }
            }
            TerminalStep::Pack { .. } | TerminalStep::HashJoinBuild { .. } => {}
        }
        let mut counters = BlockCounters::default();
        let mut blocks = Vec::new();
        if !rows.is_empty() {
            counters.rows_emitted = rows.len() as u64;
            counters.bytes_out = (rows.len() * rows[0].len() * 8) as u64;
            blocks.push(ctx.build_block(&rows, None)?);
        }
        let work = self.work_profile(&counters, 1.0);
        Ok(PipelineOutput { blocks, counters, work })
    }

    /// Convert functional counters into modeled work, scaled by `weight`,
    /// priced with the tuple-at-a-time kernel shape (the historical charge;
    /// also the GPU pipelines' shape).
    pub fn work_profile(&self, counters: &BlockCounters, weight: f64) -> WorkProfile {
        self.work_profile_for(counters, weight, KernelMode::TupleAtATime)
    }

    /// Convert functional counters into modeled work, scaled by `weight` and
    /// priced for `mode`'s kernel shape.
    ///
    /// Tuple-at-a-time charges one dispatch op per input tuple (the branchy
    /// per-tuple step match plus register handling) on top of the
    /// interpreted expression ops. Vectorized replaces that with
    /// [`VEC_TUPLE_DISPATCH_OPS`] per tuple (selection-vector bookkeeping)
    /// plus [`VEC_CHUNK_OVERHEAD_OPS`] per [`VEC_CHUNK`]-tuple chunk (chunk
    /// setup/gather amortized across a thousand tuples), and the per-step
    /// ops themselves shrink via
    /// [`Step::ops_per_tuple_for`] / [`TerminalStep::ops_per_tuple_for`].
    /// Memory terms (scan/write/random bytes) are identical in both modes —
    /// vectorization changes how tuples are dispatched, not how many bytes
    /// move.
    pub fn work_profile_for(
        &self,
        counters: &BlockCounters,
        weight: f64,
        mode: KernelMode,
    ) -> WorkProfile {
        let transform_ops: f64 = self.steps.iter().map(|s| s.ops_per_tuple_for(mode)).sum();
        let terminal_ops = self.terminal.ops_per_tuple_for(mode);
        let probe_random_bytes: f64 = self
            .steps
            .iter()
            .map(|s| match s {
                Step::HashJoinProbe { payload_width, .. } => 16.0 + 8.0 * *payload_width as f64,
                _ => 0.0,
            })
            .sum::<f64>()
            / self.steps.iter().filter(|s| matches!(s, Step::HashJoinProbe { .. })).count().max(1)
                as f64;

        let rows_in = counters.rows_in as f64;
        let rows_terminal = counters.rows_terminal as f64;
        let dispatch_ops = match mode {
            KernelMode::TupleAtATime => rows_in,
            KernelMode::Vectorized => {
                let chunks = counters.rows_in.div_ceil(VEC_CHUNK as u64) as f64;
                rows_in * VEC_TUPLE_DISPATCH_OPS + chunks * VEC_CHUNK_OVERHEAD_OPS
            }
        };
        let ops = dispatch_ops + rows_in * transform_ops + rows_terminal * terminal_ops;
        let random = counters.probes as f64 * probe_random_bytes
            + rows_terminal * self.terminal.random_bytes_per_tuple();

        let mut work = WorkProfile::new()
            .scan(counters.bytes_in as f64)
            .write(counters.bytes_out as f64)
            .random(random)
            .compute(rows_in, if rows_in > 0.0 { ops / rows_in } else { 0.0 })
            .atomic(counters.atomics as f64);
        work.kernel_launches = counters.launches;
        work.scaled(weight.max(0.0)).with_launches(counters.launches)
    }
}

/// Per-tuple dispatch charge of the vectorized CPU lowering: maintaining the
/// selection vector and flag lanes costs a fraction of an op per tuple —
/// versus the full op the tuple-at-a-time interpreter pays for its per-tuple
/// step dispatch and register `Vec` handling.
pub const VEC_TUPLE_DISPATCH_OPS: f64 = 0.125;

/// Fixed per-chunk overhead of the vectorized lowering (gather setup,
/// selection reset, scratch bookkeeping), amortized over [`VEC_CHUNK`]
/// tuples — ~0.03 ops/tuple at full chunks.
pub const VEC_CHUNK_OVERHEAD_OPS: f64 = 32.0;

/// Helper trait so `scaled` keeps the launch count (launches are fixed
/// overheads — a physically smaller block standing in for a larger one is
/// still launched once).
trait WithLaunches {
    fn with_launches(self, launches: u64) -> WorkProfile;
}

impl WithLaunches for WorkProfile {
    fn with_launches(mut self, launches: u64) -> WorkProfile {
        self.kernel_launches = launches;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::{AggSpec, StateSlot};

    fn input_block(rows: usize) -> BlockHandle {
        let a: Vec<i64> = (0..rows as i64).collect();
        let b: Vec<i64> = (0..rows as i64).map(|i| i * 2).collect();
        let block = Block::new(vec![ColumnData::Int64(a), ColumnData::Int64(b)], rows).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0)))
    }

    #[test]
    fn pipeline_validates_register_widths() {
        let bad = CompiledPipeline::new(
            PipelineId::new(1),
            DeviceKind::CpuCore,
            2,
            vec![Step::Filter { predicate: Expr::col(5).gt_lit(0) }],
            TerminalStep::Pack { exprs: vec![Expr::col(0)], partition_by: None, partitions: 1 },
        );
        assert!(bad.is_err());

        // A probe widens the register file, so later steps may reference the
        // appended payload registers.
        let ok = CompiledPipeline::new(
            PipelineId::new(2),
            DeviceKind::CpuCore,
            2,
            vec![
                Step::HashJoinProbe { key: Expr::col(0), slot: StateSlot(0), payload_width: 1 },
                Step::Filter { predicate: Expr::col(2).gt_lit(0) },
            ],
            TerminalStep::Reduce { aggs: vec![AggSpec::count()], slot: StateSlot(1) },
        );
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().terminal_width(), 3);
    }

    #[test]
    fn rejects_blocks_of_wrong_width() {
        let p = CompiledPipeline::new(
            PipelineId::new(3),
            DeviceKind::CpuCore,
            3,
            vec![],
            TerminalStep::Reduce { aggs: vec![AggSpec::count()], slot: StateSlot(0) },
        )
        .unwrap();
        let mut state = SharedState::new();
        state.add_accumulators(&[AggSpec::count()]);
        let mut ctx = ExecCtx::cpu(MemoryNodeId::new(0), 16);
        let err = p.process_block(&input_block(10), &state, &mut ctx);
        assert!(err.is_err());
    }

    #[test]
    fn work_profile_scales_with_weight_but_not_launches() {
        let p = CompiledPipeline::new(
            PipelineId::new(4),
            DeviceKind::Gpu,
            2,
            vec![Step::Filter { predicate: Expr::col(0).gt_lit(10) }],
            TerminalStep::Reduce { aggs: vec![AggSpec::sum(Expr::col(1))], slot: StateSlot(0) },
        )
        .unwrap();
        let counters = BlockCounters {
            rows_in: 1000,
            rows_terminal: 500,
            bytes_in: 16_000,
            atomics: 4,
            launches: 1,
            ..Default::default()
        };
        let w1 = p.work_profile(&counters, 1.0);
        let w10 = p.work_profile(&counters, 10.0);
        assert!((w10.bytes_scanned - 10.0 * w1.bytes_scanned).abs() < 1e-6);
        assert!((w10.ops - 10.0 * w1.ops).abs() < 1e-6);
        assert_eq!(w1.kernel_launches, 1);
        assert_eq!(w10.kernel_launches, 1);
    }

    #[test]
    fn vectorized_charge_is_cheaper_on_cpu_and_unchanged_on_gpu() {
        let cpu = CompiledPipeline::new(
            PipelineId::new(11),
            DeviceKind::CpuCore,
            2,
            vec![Step::Filter {
                predicate: Expr::col(0).between(5, 500).and(Expr::col(1).gt_lit(3)),
            }],
            TerminalStep::Reduce { aggs: vec![AggSpec::sum(Expr::col(1))], slot: StateSlot(0) },
        )
        .unwrap();
        let counters = BlockCounters {
            rows_in: 10_000,
            rows_terminal: 4_000,
            bytes_in: 160_000,
            atomics: 1,
            ..Default::default()
        };
        let taat = cpu.work_profile_for(&counters, 1.0, KernelMode::TupleAtATime);
        let vec = cpu.work_profile_for(&counters, 1.0, KernelMode::Vectorized);
        assert!(vec.ops < taat.ops, "vectorized ops {} !< tuple-at-a-time {}", vec.ops, taat.ops);
        // Memory terms do not change: vectorization moves no extra bytes.
        assert_eq!(vec.bytes_scanned, taat.bytes_scanned);
        assert_eq!(vec.random_bytes, taat.random_bytes);
        // The legacy entry point stays the tuple-at-a-time charge.
        assert_eq!(cpu.work_profile(&counters, 1.0).ops, taat.ops);

        // A GPU pipeline charges the same work regardless of the context's
        // kernel mode (charge_mode pins it to the kernel's one shape).
        let gpu = CompiledPipeline::new(
            PipelineId::new(12),
            DeviceKind::Gpu,
            2,
            vec![Step::Filter { predicate: Expr::col(0).gt_lit(10) }],
            TerminalStep::Reduce { aggs: vec![AggSpec::count()], slot: StateSlot(0) },
        )
        .unwrap();
        let mut ctx = ExecCtx::cpu(MemoryNodeId::new(0), 16);
        assert_eq!(gpu.charge_mode(&ctx), KernelMode::TupleAtATime);
        ctx.kernel_mode = KernelMode::TupleAtATime;
        assert_eq!(cpu.charge_mode(&ctx), KernelMode::TupleAtATime);
    }

    #[test]
    fn cpu_dispatch_selects_the_kernel_mode() {
        // The same pipeline + block under both ExecCtx kernel modes produces
        // identical state results (the lowerings are functionally equal).
        let run = |mode: KernelMode| {
            let mut state = SharedState::new();
            let slot = state.add_accumulators(&[AggSpec::sum(Expr::col(1)), AggSpec::count()]);
            let p = CompiledPipeline::new(
                PipelineId::new(13),
                DeviceKind::CpuCore,
                2,
                vec![Step::Filter { predicate: Expr::col(0).gt_lit(400) }],
                TerminalStep::Reduce {
                    aggs: vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
                    slot,
                },
            )
            .unwrap();
            let mut ctx = ExecCtx::cpu(MemoryNodeId::new(0), 64).with_kernel_mode(mode);
            let out = p.process_block(&input_block(2000), &state, &mut ctx).unwrap();
            (state.accumulators(slot).unwrap().values(), out.work.ops)
        };
        let (vec_rows, vec_ops) = run(KernelMode::Vectorized);
        let (taat_rows, taat_ops) = run(KernelMode::TupleAtATime);
        assert_eq!(vec_rows, taat_rows);
        assert!(vec_ops < taat_ops, "vectorized must be charged fewer ops");
    }

    #[test]
    fn exec_ctx_builds_tagged_blocks() {
        let mut ctx = ExecCtx::cpu(MemoryNodeId::new(1), 8);
        ctx.current_weight = 2.0;
        let rows = vec![vec![1, 2], vec![3, 4]];
        let h = ctx.build_block(&rows, Some(5)).unwrap();
        assert_eq!(h.rows(), 2);
        assert_eq!(h.meta().location, MemoryNodeId::new(1));
        assert_eq!(h.meta().hash_partition, Some(5));
        assert!((h.meta().weight - 2.0).abs() < f64::EPSILON);
        // ids increment per instance
        let h2 = ctx.build_block(&rows, None).unwrap();
        assert_ne!(h.meta().id, h2.meta().id);
        // ragged rows error
        assert!(ctx.build_block(&[vec![1, 2], vec![3]], None).is_err());
    }
}
