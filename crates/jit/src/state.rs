//! Shared query state: hash tables, aggregate accumulators, group-by tables.
//!
//! State objects are what the paper's *memory managers* serve (§4.3). They are
//! shared between every instance of the pipelines that reference them —
//! regardless of the device the instance runs on — because they are the one
//! place where the lack of global cache coherence matters. We keep state in
//! host memory protected by device-scoped atomics / short critical sections;
//! the *cost* of those synchronizations is what the cost model charges (one
//! atomic per CPU block, one per GPU warp), mirroring how the paper minimizes
//! global atomics with neighborhood reductions.

use crate::ir::{AggFunc, AggSpec, StateSlot};
use hetex_common::{HetError, Result};
use hetex_gpu_sim::DeviceAtomicI64;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;

/// A hash table built by the build side of an equi-join.
#[derive(Debug, Default)]
pub struct JoinHashTable {
    map: RwLock<HashMap<i64, Vec<Vec<i64>>>>,
    rows: DeviceAtomicI64,
}

impl JoinHashTable {
    /// An empty hash table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one build tuple.
    pub fn insert(&self, key: i64, payload: Vec<i64>) {
        self.map.write().entry(key).or_default().push(payload);
        self.rows.fetch_add(1);
    }

    /// Visit the payloads matching `key`.
    pub fn probe<F: FnMut(&[i64])>(&self, key: i64, mut visit: F) -> usize {
        let guard = self.map.read();
        match guard.get(&key) {
            Some(rows) => {
                for row in rows {
                    visit(row);
                }
                rows.len()
            }
            None => 0,
        }
    }

    /// Number of build tuples inserted.
    pub fn len(&self) -> usize {
        self.rows.load() as usize
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.read().len()
    }

    /// Approximate size of the table in bytes (for state-memory accounting).
    pub fn approx_bytes(&self, payload_width: usize) -> u64 {
        (self.len() as u64) * (16 + 8 * payload_width as u64)
    }
}

/// Ungrouped aggregate accumulators, updated with device-scoped atomics.
#[derive(Debug)]
pub struct Accumulators {
    funcs: Vec<AggFunc>,
    values: Vec<DeviceAtomicI64>,
}

impl Accumulators {
    /// Accumulators matching `aggs`.
    pub fn new(aggs: &[AggSpec]) -> Self {
        Self {
            funcs: aggs.iter().map(|a| a.func).collect(),
            values: aggs.iter().map(|a| DeviceAtomicI64::new(a.func.identity())).collect(),
        }
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no accumulators.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merge a vector of partial values (one per aggregate) with one atomic
    /// update each — this is what the worker-scoped atomic of Listing 1 does.
    pub fn merge_partials(&self, partials: &[i64]) {
        debug_assert_eq!(partials.len(), self.values.len());
        for ((func, acc), partial) in self.funcs.iter().zip(&self.values).zip(partials) {
            match func {
                AggFunc::Sum | AggFunc::Count => {
                    acc.fetch_add(*partial);
                }
                AggFunc::Min => {
                    acc.fetch_min(*partial);
                }
                AggFunc::Max => {
                    acc.fetch_max(*partial);
                }
            }
        }
    }

    /// Snapshot of the accumulator values.
    pub fn values(&self) -> Vec<i64> {
        self.values.iter().map(DeviceAtomicI64::load).collect()
    }

    /// The aggregate functions.
    pub fn funcs(&self) -> &[AggFunc] {
        &self.funcs
    }
}

/// A grouped aggregation table.
#[derive(Debug)]
pub struct GroupByTable {
    funcs: Vec<AggFunc>,
    groups: Mutex<HashMap<Vec<i64>, Vec<i64>>>,
}

impl GroupByTable {
    /// A table whose values follow `aggs`.
    pub fn new(aggs: &[AggSpec]) -> Self {
        Self { funcs: aggs.iter().map(|a| a.func).collect(), groups: Mutex::new(HashMap::new()) }
    }

    /// Merge a batch of partial `(key, values)` pairs. Batching keeps the
    /// critical section per block/warp rather than per tuple, matching the
    /// granularity at which the generated code synchronizes.
    pub fn merge_batch(&self, partials: impl IntoIterator<Item = (Vec<i64>, Vec<i64>)>) {
        let mut groups = self.groups.lock();
        for (key, values) in partials {
            match groups.get_mut(&key) {
                Some(acc) => {
                    for ((func, a), v) in self.funcs.iter().zip(acc.iter_mut()).zip(&values) {
                        *a = func.merge(*a, *v);
                    }
                }
                None => {
                    groups.insert(key, values);
                }
            }
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.lock().len()
    }

    /// True if no groups exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all `(key, values)` pairs, sorted by key for determinism.
    pub fn snapshot(&self) -> Vec<(Vec<i64>, Vec<i64>)> {
        let mut rows: Vec<(Vec<i64>, Vec<i64>)> =
            self.groups.lock().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        rows.sort();
        rows
    }

    /// The aggregate functions.
    pub fn funcs(&self) -> &[AggFunc] {
        &self.funcs
    }
}

/// One shared state object referenced by a [`StateSlot`].
#[derive(Debug)]
pub enum StateObject {
    /// A join hash table (with the payload width the probe side expects).
    HashTable { table: JoinHashTable, payload_width: usize },
    /// Ungrouped aggregate accumulators.
    Accumulators(Accumulators),
    /// A grouped aggregation table.
    GroupBy(GroupByTable),
}

/// All state objects of one query.
#[derive(Debug, Default)]
pub struct SharedState {
    slots: Vec<StateObject>,
}

impl SharedState {
    /// An empty state set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a state object, returning its slot.
    pub fn push(&mut self, object: StateObject) -> StateSlot {
        self.slots.push(object);
        StateSlot(self.slots.len() - 1)
    }

    /// Add a join hash table whose payloads have `payload_width` columns.
    pub fn add_hash_table(&mut self, payload_width: usize) -> StateSlot {
        self.push(StateObject::HashTable { table: JoinHashTable::new(), payload_width })
    }

    /// Add accumulators for `aggs`.
    pub fn add_accumulators(&mut self, aggs: &[AggSpec]) -> StateSlot {
        self.push(StateObject::Accumulators(Accumulators::new(aggs)))
    }

    /// Add a group-by table for `aggs`.
    pub fn add_group_by(&mut self, aggs: &[AggSpec]) -> StateSlot {
        self.push(StateObject::GroupBy(GroupByTable::new(aggs)))
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no state has been registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The raw state object in `slot`, if any — structural inspection for
    /// static analysis (the typed accessors below are what executors use).
    pub fn object(&self, slot: StateSlot) -> Option<&StateObject> {
        self.slots.get(slot.index())
    }

    /// The hash table in `slot`.
    pub fn hash_table(&self, slot: StateSlot) -> Result<&JoinHashTable> {
        match self.slots.get(slot.index()) {
            Some(StateObject::HashTable { table, .. }) => Ok(table),
            Some(_) => {
                Err(HetError::Execution(format!("state slot {} is not a hash table", slot.index())))
            }
            None => Err(HetError::Execution(format!("unknown state slot {}", slot.index()))),
        }
    }

    /// The accumulators in `slot`.
    pub fn accumulators(&self, slot: StateSlot) -> Result<&Accumulators> {
        match self.slots.get(slot.index()) {
            Some(StateObject::Accumulators(acc)) => Ok(acc),
            Some(_) => Err(HetError::Execution(format!(
                "state slot {} is not an accumulator set",
                slot.index()
            ))),
            None => Err(HetError::Execution(format!("unknown state slot {}", slot.index()))),
        }
    }

    /// The group-by table in `slot`.
    pub fn group_by(&self, slot: StateSlot) -> Result<&GroupByTable> {
        match self.slots.get(slot.index()) {
            Some(StateObject::GroupBy(g)) => Ok(g),
            Some(_) => Err(HetError::Execution(format!(
                "state slot {} is not a group-by table",
                slot.index()
            ))),
            None => Err(HetError::Execution(format!("unknown state slot {}", slot.index()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn hash_table_insert_and_probe() {
        let t = JoinHashTable::new();
        assert!(t.is_empty());
        t.insert(10, vec![1, 100]);
        t.insert(10, vec![2, 200]);
        t.insert(20, vec![3, 300]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.distinct_keys(), 2);
        let mut seen = Vec::new();
        let matches = t.probe(10, |row| seen.push(row.to_vec()));
        assert_eq!(matches, 2);
        assert_eq!(seen.len(), 2);
        assert_eq!(t.probe(99, |_| panic!("no match expected")), 0);
        assert!(t.approx_bytes(2) > 0);
    }

    #[test]
    fn accumulators_merge_partials_atomically() {
        let aggs = vec![
            AggSpec::sum(Expr::col(0)),
            AggSpec::count(),
            AggSpec::min(Expr::col(0)),
            AggSpec::max(Expr::col(0)),
        ];
        let acc = Accumulators::new(&aggs);
        assert_eq!(acc.len(), 4);
        acc.merge_partials(&[100, 3, 5, 50]);
        acc.merge_partials(&[50, 2, 1, 99]);
        assert_eq!(acc.values(), vec![150, 5, 1, 99]);
        assert_eq!(acc.funcs()[1], AggFunc::Count);
    }

    #[test]
    fn concurrent_accumulator_merges() {
        use std::sync::Arc;
        use std::thread;
        let acc = Arc::new(Accumulators::new(&[AggSpec::sum(Expr::col(0)), AggSpec::count()]));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let acc = Arc::clone(&acc);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        acc.merge_partials(&[2, 1]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(acc.values(), vec![16_000, 8_000]);
    }

    #[test]
    fn group_by_merges_partials_per_key() {
        let aggs = vec![AggSpec::sum(Expr::col(0)), AggSpec::max(Expr::col(0))];
        let g = GroupByTable::new(&aggs);
        assert!(g.is_empty());
        g.merge_batch(vec![(vec![1997, 1], vec![100, 10]), (vec![1998, 1], vec![50, 5])]);
        g.merge_batch(vec![(vec![1997, 1], vec![25, 99])]);
        assert_eq!(g.len(), 2);
        let rows = g.snapshot();
        assert_eq!(rows[0], (vec![1997, 1], vec![125, 99]));
        assert_eq!(rows[1], (vec![1998, 1], vec![50, 5]));
    }

    #[test]
    fn shared_state_slot_dispatch() {
        let mut state = SharedState::new();
        assert!(state.is_empty());
        let ht = state.add_hash_table(2);
        let acc = state.add_accumulators(&[AggSpec::count()]);
        let gb = state.add_group_by(&[AggSpec::sum(Expr::col(0))]);
        assert_eq!(state.len(), 3);
        assert!(state.hash_table(ht).is_ok());
        assert!(state.accumulators(acc).is_ok());
        assert!(state.group_by(gb).is_ok());
        // Wrong-type and out-of-range accesses fail loudly.
        assert!(state.hash_table(acc).is_err());
        assert!(state.accumulators(gb).is_err());
        assert!(state.group_by(ht).is_err());
        assert!(state.hash_table(StateSlot(99)).is_err());
    }
}
