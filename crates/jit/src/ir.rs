//! The pipeline IR: the fused steps a compiled pipeline executes per tuple.
//!
//! A pipeline is a sequence of *transform* steps (filter, map, hash-join
//! probe) terminated by exactly one *terminal* step (pack an output block,
//! build a hash table, update an aggregate). HetExchange operators are
//! pipeline breakers, so this IR never contains them — they sit *between*
//! pipelines, which is exactly the paper's decomposition (Figure 2c).
//!
//! The IR is device-agnostic. The CPU and GPU lowerings interpret the same
//! steps; only how rows are distributed over workers and how terminal state is
//! updated differs (Figure 3).

use crate::expr::Expr;
use hetex_common::{HetError, KernelMode, Result};

/// Discount applied to expression op counts under the vectorized lowering:
/// column-at-a-time tight loops over dense lanes amortize the interpreter's
/// per-node dispatch and let the compiler autovectorize, so one nominal
/// "simple operation" costs about half what the per-tuple interpreter pays.
/// Hash-table work (probe/build/group-by lookups) is *not* discounted — it is
/// per-tuple random access in either mode.
pub const VEC_OP_DISCOUNT: f64 = 0.5;

/// Ops charged per surviving lane for refining the selection vector at a
/// filter (one flag test + one compacting index write).
pub const VEC_SELECTION_OPS: f64 = 0.25;

/// Index of a shared state object (hash table, accumulator set, group-by
/// table) created for the query; see [`crate::state::SharedState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateSlot(pub usize);

impl StateSlot {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Aggregate functions supported by reduce / group-by steps. All of them are
/// decomposable, so partial aggregates computed per device can be merged by a
/// final aggregation pipeline (the paper's union router into pipeline 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Min,
    Max,
}

impl AggFunc {
    /// Neutral element of the aggregate.
    pub fn identity(self) -> i64 {
        match self {
            AggFunc::Sum | AggFunc::Count => 0,
            AggFunc::Min => i64::MAX,
            AggFunc::Max => i64::MIN,
        }
    }

    /// Combine an accumulator with a new input value.
    #[inline]
    pub fn accumulate(self, acc: i64, value: i64) -> i64 {
        match self {
            AggFunc::Sum => acc + value,
            AggFunc::Count => acc + 1,
            AggFunc::Min => acc.min(value),
            AggFunc::Max => acc.max(value),
        }
    }

    /// Merge two partial accumulators.
    #[inline]
    pub fn merge(self, a: i64, b: i64) -> i64 {
        match self {
            AggFunc::Sum | AggFunc::Count => a + b,
            AggFunc::Min => a.min(b),
            AggFunc::Max => a.max(b),
        }
    }
}

/// One aggregate: a function applied to an expression over the input tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregated expression (ignored for `Count`).
    pub expr: Expr,
    /// The aggregate function.
    pub func: AggFunc,
}

impl AggSpec {
    /// `SUM(expr)`.
    pub fn sum(expr: Expr) -> Self {
        Self { expr, func: AggFunc::Sum }
    }

    /// `COUNT(*)`.
    pub fn count() -> Self {
        Self { expr: Expr::Lit(1), func: AggFunc::Count }
    }

    /// `MIN(expr)`.
    pub fn min(expr: Expr) -> Self {
        Self { expr, func: AggFunc::Min }
    }

    /// `MAX(expr)`.
    pub fn max(expr: Expr) -> Self {
        Self { expr, func: AggFunc::Max }
    }
}

/// A non-terminal, fused step of a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Drop tuples for which the predicate evaluates to false.
    Filter { predicate: Expr },
    /// Replace the register file with the given expressions (projection /
    /// derived columns).
    Map { exprs: Vec<Expr> },
    /// Probe the hash table in `slot` with `key`; matching build payloads are
    /// appended to the registers. Tuples without a match are dropped
    /// (equi-join semantics); a key matching several build tuples fans out.
    HashJoinProbe {
        key: Expr,
        slot: StateSlot,
        /// Number of payload columns the build side stored (the probe's
        /// output width is input width + payload width).
        payload_width: usize,
    },
}

impl Step {
    /// Number of registers after this step, given the width before it.
    pub fn output_width(&self, input_width: usize) -> usize {
        match self {
            Step::Filter { .. } => input_width,
            Step::Map { exprs } => exprs.len(),
            Step::HashJoinProbe { payload_width, .. } => input_width + payload_width,
        }
    }

    /// Approximate simple-operation count per tuple reaching this step,
    /// assuming the per-tuple (tuple-at-a-time) dispatch shape.
    pub fn ops_per_tuple(&self) -> f64 {
        self.ops_per_tuple_for(KernelMode::TupleAtATime)
    }

    /// Like [`Self::ops_per_tuple`], but priced for the given kernel mode:
    /// under [`KernelMode::Vectorized`] expression work is discounted by
    /// [`VEC_OP_DISCOUNT`] (dense column-at-a-time loops) while per-tuple
    /// random hash work keeps its full charge.
    pub fn ops_per_tuple_for(&self, mode: KernelMode) -> f64 {
        match mode {
            KernelMode::TupleAtATime => match self {
                Step::Filter { predicate } => predicate.op_count(),
                Step::Map { exprs } => exprs.iter().map(Expr::op_count).sum(),
                Step::HashJoinProbe { key, .. } => key.op_count() + 4.0,
            },
            KernelMode::Vectorized => match self {
                Step::Filter { predicate } => {
                    predicate.op_count() * VEC_OP_DISCOUNT + VEC_SELECTION_OPS
                }
                Step::Map { exprs } => {
                    exprs.iter().map(Expr::op_count).sum::<f64>() * VEC_OP_DISCOUNT
                }
                Step::HashJoinProbe { key, .. } => key.op_count() * VEC_OP_DISCOUNT + 4.0,
            },
        }
    }

    /// Validate register references against the width flowing into this step.
    pub fn check_width(&self, input_width: usize) -> Result<()> {
        match self {
            Step::Filter { predicate } => predicate.check_width(input_width),
            Step::Map { exprs } => exprs.iter().try_for_each(|e| e.check_width(input_width)),
            Step::HashJoinProbe { key, .. } => key.check_width(input_width),
        }
    }
}

/// The terminal step of a pipeline — the materialization point that makes the
/// pipeline a pipeline (HetExchange operators and blocking relational
/// operators are pipeline breakers).
#[derive(Debug, Clone, PartialEq)]
pub enum TerminalStep {
    /// Pack surviving tuples into output blocks of the pipeline's output
    /// layout; this is the generated-code half of the pack / hash-pack
    /// operator.
    Pack {
        /// Expressions defining the output columns.
        exprs: Vec<Expr>,
        /// For hash-pack: partition every tuple by this expression so each
        /// output block is hash-homogeneous, and tag the block handle with the
        /// partition id. `None` produces plain packed blocks.
        partition_by: Option<Expr>,
        /// Number of partitions when `partition_by` is set.
        partitions: usize,
    },
    /// Build the hash table in `slot` keyed by `key` with the given payload
    /// columns (the blocking side of a hash join).
    HashJoinBuild { key: Expr, payload: Vec<Expr>, slot: StateSlot },
    /// Update ungrouped aggregate accumulators in `slot`.
    Reduce { aggs: Vec<AggSpec>, slot: StateSlot },
    /// Update a grouped aggregation table in `slot`.
    GroupBy { keys: Vec<Expr>, aggs: Vec<AggSpec>, slot: StateSlot },
}

impl TerminalStep {
    /// Approximate simple-operation count per tuple reaching the terminal,
    /// assuming the per-tuple (tuple-at-a-time) dispatch shape.
    pub fn ops_per_tuple(&self) -> f64 {
        self.ops_per_tuple_for(KernelMode::TupleAtATime)
    }

    /// Like [`Self::ops_per_tuple`], but priced for the given kernel mode:
    /// vectorized terminals evaluate their expressions column-at-a-time
    /// (discounted by [`VEC_OP_DISCOUNT`]) and accumulate in tight dense
    /// loops, while hash-table inserts/updates stay per-tuple random work.
    pub fn ops_per_tuple_for(&self, mode: KernelMode) -> f64 {
        let expr_ops = match self {
            TerminalStep::Pack { exprs, partition_by, .. } => {
                exprs.iter().map(Expr::op_count).sum::<f64>()
                    + partition_by.as_ref().map_or(0.0, Expr::op_count)
            }
            TerminalStep::HashJoinBuild { key, payload, .. } => {
                key.op_count() + payload.iter().map(Expr::op_count).sum::<f64>()
            }
            TerminalStep::Reduce { aggs, .. } => {
                aggs.iter().map(|a| a.expr.op_count()).sum::<f64>()
            }
            TerminalStep::GroupBy { keys, aggs, .. } => {
                keys.iter().map(Expr::op_count).sum::<f64>()
                    + aggs.iter().map(|a| a.expr.op_count()).sum::<f64>()
            }
        };
        let discounted = match mode {
            KernelMode::TupleAtATime => expr_ops,
            KernelMode::Vectorized => expr_ops * VEC_OP_DISCOUNT,
        };
        // Accumulate/insert work on top of expression evaluation. The hash
        // constant (4.0) is per-tuple random access in either mode; the
        // per-aggregate accumulate costs 1.0 interpreted, half that in a
        // dense fold.
        let acc = match mode {
            KernelMode::TupleAtATime => 1.0,
            KernelMode::Vectorized => VEC_OP_DISCOUNT,
        };
        discounted
            + match self {
                TerminalStep::Pack { .. } => 0.0,
                TerminalStep::HashJoinBuild { .. } => 4.0,
                TerminalStep::Reduce { aggs, .. } => aggs.len() as f64 * acc,
                TerminalStep::GroupBy { aggs, .. } => aggs.len() as f64 * acc + 4.0,
            }
    }

    /// Bytes of random state access per tuple reaching the terminal (hash
    /// inserts and group-by updates are random; packing and plain reduces are
    /// not).
    pub fn random_bytes_per_tuple(&self) -> f64 {
        match self {
            TerminalStep::Pack { .. } => 0.0,
            TerminalStep::HashJoinBuild { payload, .. } => 16.0 + payload.len() as f64 * 8.0,
            TerminalStep::Reduce { .. } => 0.0,
            TerminalStep::GroupBy { keys, aggs, .. } => {
                16.0 + (keys.len() + aggs.len()) as f64 * 8.0
            }
        }
    }

    /// Validate register references against the width reaching the terminal.
    pub fn check_width(&self, input_width: usize) -> Result<()> {
        let check_all = |exprs: &[Expr]| -> Result<()> {
            exprs.iter().try_for_each(|e| e.check_width(input_width))
        };
        match self {
            TerminalStep::Pack { exprs, partition_by, partitions } => {
                check_all(exprs)?;
                if let Some(p) = partition_by {
                    p.check_width(input_width)?;
                    if *partitions == 0 {
                        return Err(HetError::Codegen(
                            "hash-pack needs at least one partition".into(),
                        ));
                    }
                }
                Ok(())
            }
            TerminalStep::HashJoinBuild { key, payload, .. } => {
                key.check_width(input_width)?;
                check_all(payload)
            }
            TerminalStep::Reduce { aggs, .. } => {
                aggs.iter().try_for_each(|a| a.expr.check_width(input_width))
            }
            TerminalStep::GroupBy { keys, aggs, .. } => {
                check_all(keys)?;
                aggs.iter().try_for_each(|a| a.expr.check_width(input_width))
            }
        }
    }

    /// Number of output columns the terminal produces when it emits blocks
    /// (pack: its layout; reduce/group-by: keys + aggregates when finalized;
    /// build: nothing).
    pub fn output_width(&self) -> usize {
        match self {
            TerminalStep::Pack { exprs, .. } => exprs.len(),
            TerminalStep::HashJoinBuild { .. } => 0,
            TerminalStep::Reduce { aggs, .. } => aggs.len(),
            TerminalStep::GroupBy { keys, aggs, .. } => keys.len() + aggs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_func_identities_and_accumulation() {
        assert_eq!(AggFunc::Sum.identity(), 0);
        assert_eq!(AggFunc::Min.identity(), i64::MAX);
        assert_eq!(AggFunc::Max.identity(), i64::MIN);
        assert_eq!(AggFunc::Sum.accumulate(10, 5), 15);
        assert_eq!(AggFunc::Count.accumulate(10, 999), 11);
        assert_eq!(AggFunc::Min.accumulate(10, 5), 5);
        assert_eq!(AggFunc::Max.accumulate(10, 5), 10);
        assert_eq!(AggFunc::Sum.merge(3, 4), 7);
        assert_eq!(AggFunc::Min.merge(3, 4), 3);
        assert_eq!(AggFunc::Max.merge(3, 4), 4);
        assert_eq!(AggFunc::Count.merge(3, 4), 7);
    }

    #[test]
    fn step_output_widths() {
        assert_eq!(Step::Filter { predicate: Expr::lit(1) }.output_width(5), 5);
        assert_eq!(Step::Map { exprs: vec![Expr::col(0), Expr::col(2)] }.output_width(5), 2);
        let probe = Step::HashJoinProbe { key: Expr::col(0), slot: StateSlot(0), payload_width: 3 };
        assert_eq!(probe.output_width(2), 5);
    }

    #[test]
    fn width_checks_catch_bad_registers() {
        let bad_filter = Step::Filter { predicate: Expr::col(4).gt_lit(0) };
        assert!(bad_filter.check_width(3).is_err());
        assert!(bad_filter.check_width(5).is_ok());
        let bad_pack =
            TerminalStep::Pack { exprs: vec![Expr::col(9)], partition_by: None, partitions: 1 };
        assert!(bad_pack.check_width(2).is_err());
        let empty_partition = TerminalStep::Pack {
            exprs: vec![Expr::col(0)],
            partition_by: Some(Expr::col(0)),
            partitions: 0,
        };
        assert!(empty_partition.check_width(2).is_err());
    }

    #[test]
    fn terminal_metadata() {
        let reduce = TerminalStep::Reduce {
            aggs: vec![AggSpec::sum(Expr::col(0)), AggSpec::count()],
            slot: StateSlot(1),
        };
        assert_eq!(reduce.output_width(), 2);
        assert!(reduce.random_bytes_per_tuple() == 0.0);
        let groupby = TerminalStep::GroupBy {
            keys: vec![Expr::col(0), Expr::col(1)],
            aggs: vec![AggSpec::sum(Expr::col(2))],
            slot: StateSlot(0),
        };
        assert_eq!(groupby.output_width(), 3);
        assert!(groupby.random_bytes_per_tuple() > 0.0);
        let build = TerminalStep::HashJoinBuild {
            key: Expr::col(0),
            payload: vec![Expr::col(1)],
            slot: StateSlot(0),
        };
        assert_eq!(build.output_width(), 0);
        assert!(build.ops_per_tuple() > 0.0);
    }

    #[test]
    fn vectorized_op_counts_discount_expressions_but_not_hash_work() {
        let fat = Expr::col(0).between(1, 9).and(Expr::col(1).in_list(vec![1, 2, 3, 4]));
        let filter = Step::Filter { predicate: fat.clone() };
        // Filters get cheaper under the vectorized shape...
        assert!(
            filter.ops_per_tuple_for(KernelMode::Vectorized)
                < filter.ops_per_tuple_for(KernelMode::TupleAtATime)
        );
        // ...and ops_per_tuple() stays the tuple-at-a-time figure.
        assert_eq!(filter.ops_per_tuple(), filter.ops_per_tuple_for(KernelMode::TupleAtATime));

        // A probe's hash lookup keeps its full per-tuple charge: only the key
        // expression is discounted.
        let probe = Step::HashJoinProbe { key: Expr::col(0), slot: StateSlot(0), payload_width: 1 };
        let taat = probe.ops_per_tuple_for(KernelMode::TupleAtATime);
        let vec = probe.ops_per_tuple_for(KernelMode::Vectorized);
        assert!(vec >= 4.0 && vec < taat);

        // Terminals: group-by keeps its hash constant, reduce halves its
        // dense accumulate.
        let gb = TerminalStep::GroupBy {
            keys: vec![Expr::col(0)],
            aggs: vec![AggSpec::sum(Expr::col(1))],
            slot: StateSlot(0),
        };
        assert!(gb.ops_per_tuple_for(KernelMode::Vectorized) >= 4.0);
        assert!(gb.ops_per_tuple_for(KernelMode::Vectorized) < gb.ops_per_tuple());
        let red = TerminalStep::Reduce {
            aggs: vec![AggSpec::sum(Expr::col(0)), AggSpec::count()],
            slot: StateSlot(0),
        };
        assert!(red.ops_per_tuple_for(KernelMode::Vectorized) < red.ops_per_tuple());
    }

    #[test]
    fn agg_spec_constructors() {
        assert_eq!(AggSpec::count().func, AggFunc::Count);
        assert_eq!(AggSpec::sum(Expr::col(1)).func, AggFunc::Sum);
        assert_eq!(AggSpec::min(Expr::col(1)).func, AggFunc::Min);
        assert_eq!(AggSpec::max(Expr::col(1)).func, AggFunc::Max);
        assert_eq!(StateSlot(3).index(), 3);
    }
}
