//! Device providers — the interface of Table 1.
//!
//! §4.1: "HetExchange groups the collection of all the utility functions into
//! a device-independent interface, and offers a collection of device providers
//! implementing said interface; a CPU- and a GPU-specific provider at the
//! moment. Device crossing operators are the ones specifying which device
//! provider every pipeline should use."
//!
//! The trait below carries the same surface the paper lists in Table 1:
//!
//! | Device provider methods | | |
//! |---|---|---|
//! | allocStateVar | get/releaseBuffer | #threadsInWorker |
//! | freeStateVar  | malloc/free       | threadIdInWorker |
//! | storeStateVar | convertToMachineCode | loadMachineCode |
//! | loadStateVar  | workerScopedAtomic\<T, Op\> | |
//!
//! State variables are backed by the memory managers, buffers by the block
//! managers (both from `hetex-storage`), worker-scoped atomics by the device
//! atomics of `hetex-gpu-sim`, and "machine code" by the device-specific
//! lowering of the pipeline IR (our stand-in for LLVM x86 / NVPTX back-ends).

use crate::pipeline::CompiledPipeline;
use hetex_common::{MemoryNodeId, Result};
use hetex_gpu_sim::{DeviceAtomicI64, GpuDevice, LaunchConfig};
use hetex_storage::{
    BlockLease, BlockManagerSet, ExhaustionPolicy, MemoryManagerSet, StateAllocation,
};
use hetex_topology::DeviceKind;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The device-independent utility interface pipelines are generated against.
pub trait DeviceProvider: Send + Sync {
    /// Which device type this provider specializes code for.
    fn kind(&self) -> DeviceKind;

    /// The memory node local to the provider's device.
    fn local_memory(&self) -> MemoryNodeId;

    /// `allocStateVar`: allocate operator state on the provider's local
    /// memory node through its memory manager.
    fn alloc_state_var(&self, managers: &MemoryManagerSet, bytes: u64) -> Result<StateAllocation>;

    /// `freeStateVar`: release operator state (allocation objects free on
    /// drop; this makes the release explicit for generated code symmetry).
    fn free_state_var(&self, allocation: StateAllocation) {
        drop(allocation);
    }

    /// `storeStateVar`: persist a named state value for the pipeline.
    fn store_state_var(&self, name: &str, value: i64);

    /// `loadStateVar`: read back a named state value.
    fn load_state_var(&self, name: &str) -> Option<i64>;

    /// `getBuffer`: lease `bytes` of staging on the provider's local node.
    /// Generated pipeline code must not stall inside a buffer grab, so the
    /// exhaustion behaviour is the explicit fail-fast policy — back-pressure
    /// belongs to the executor's admission path, which parks instead.
    fn get_buffer(&self, managers: &BlockManagerSet, bytes: u64) -> Result<BlockLease> {
        managers.acquire(self.local_memory(), self.local_memory(), bytes, ExhaustionPolicy::Error)
    }

    /// `releaseBuffer`: return a staging block.
    fn release_buffer(&self, lease: BlockLease) {
        drop(lease);
    }

    /// `malloc`: raw scratch allocation in bytes on the local node (modeled
    /// through the same memory manager as state variables).
    fn malloc(&self, managers: &MemoryManagerSet, bytes: u64) -> Result<StateAllocation> {
        self.alloc_state_var(managers, bytes)
    }

    /// `free`: release a scratch allocation.
    fn free(&self, allocation: StateAllocation) {
        drop(allocation);
    }

    /// `#threadsInWorker`: 1 on a CPU core, the grid size on a GPU.
    fn threads_in_worker(&self) -> usize;

    /// `threadIdInWorker`: always 0 on a CPU core; the grid-wide thread id on
    /// a GPU (`lane` is the flat virtual-thread index of the caller).
    fn thread_id_in_worker(&self, lane: usize) -> usize;

    /// `workerScopedAtomic<i64, Add>`: the device-scoped atomic used to merge
    /// partial aggregates into shared state.
    fn worker_scoped_atomic_add(&self, target: &DeviceAtomicI64, value: i64) {
        target.fetch_add(value);
    }

    /// The kernel launch configuration pipelines on this device use.
    fn launch_config(&self) -> LaunchConfig;

    /// `convertToMachineCode`: lower the pipeline to "machine code". Our
    /// substitute returns a human-readable listing of the specialized code
    /// (the shape of Listing 1 / Figure 3), since the real lowering is the
    /// interpretation strategy selected by the pipeline's device kind.
    fn convert_to_machine_code(&self, pipeline: &CompiledPipeline) -> String;

    /// `loadMachineCode`: make the lowered pipeline executable. A no-op here
    /// (pipelines are always executable); kept for interface fidelity.
    fn load_machine_code(&self, _pipeline: &CompiledPipeline) -> Result<()> {
        Ok(())
    }
}

/// Renders the device-agnostic part of a pipeline listing.
fn render_steps(pipeline: &CompiledPipeline, indent: &str) -> String {
    let mut out = String::new();
    for step in pipeline.steps() {
        match step {
            crate::ir::Step::Filter { .. } => {
                out.push_str(&format!("{indent}if !predicate(t): continue\n"))
            }
            crate::ir::Step::Map { exprs } => {
                out.push_str(&format!("{indent}t <- project[{} exprs](t)\n", exprs.len()))
            }
            crate::ir::Step::HashJoinProbe { slot, .. } => out.push_str(&format!(
                "{indent}for m in probe(state[{}], key(t)): t <- t ++ m\n",
                slot.index()
            )),
        }
    }
    match pipeline.terminal() {
        crate::ir::TerminalStep::Pack { partition_by, .. } => {
            if partition_by.is_some() {
                out.push_str(&format!("{indent}append t to block[hash(t)]; flush when full\n"));
            } else {
                out.push_str(&format!("{indent}append t to output block; flush when full\n"));
            }
        }
        crate::ir::TerminalStep::HashJoinBuild { slot, .. } => out.push_str(&format!(
            "{indent}insert (key(t), payload(t)) into state[{}]\n",
            slot.index()
        )),
        crate::ir::TerminalStep::Reduce { .. } => {
            out.push_str(&format!("{indent}local_acc <- local_acc + f(t)\n"))
        }
        crate::ir::TerminalStep::GroupBy { .. } => {
            out.push_str(&format!("{indent}local_groups[key(t)] <- merge(f(t))\n"))
        }
    }
    out
}

/// The CPU provider: single thread per worker, no neighborhood reduction.
#[derive(Debug)]
pub struct CpuProvider {
    local_memory: MemoryNodeId,
    state_vars: Mutex<HashMap<String, i64>>,
}

impl CpuProvider {
    /// A provider whose workers allocate from `local_memory`.
    pub fn new(local_memory: MemoryNodeId) -> Self {
        Self { local_memory, state_vars: Mutex::new(HashMap::new()) }
    }
}

impl DeviceProvider for CpuProvider {
    fn kind(&self) -> DeviceKind {
        DeviceKind::CpuCore
    }

    fn local_memory(&self) -> MemoryNodeId {
        self.local_memory
    }

    fn alloc_state_var(&self, managers: &MemoryManagerSet, bytes: u64) -> Result<StateAllocation> {
        managers.alloc_on(self.local_memory, bytes)
    }

    fn store_state_var(&self, name: &str, value: i64) {
        self.state_vars.lock().insert(name.to_owned(), value);
    }

    fn load_state_var(&self, name: &str) -> Option<i64> {
        self.state_vars.lock().get(name).copied()
    }

    fn threads_in_worker(&self) -> usize {
        1
    }

    fn thread_id_in_worker(&self, _lane: usize) -> usize {
        0
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(1, 1)
    }

    fn convert_to_machine_code(&self, pipeline: &CompiledPipeline) -> String {
        // Figure 3, right-hand side: threadIdInWorker = 0, #threadsInWorker = 1,
        // the neighborhood reduce and worker-scoped atomic optimize away into a
        // single merge per block.
        let mut code = format!("def pipeline{}_cpu(block, state):\n", pipeline.id().index());
        code.push_str("  # specialized by CpuProvider: threadId=0, #threads=1\n");
        code.push_str("  local_acc <- identity\n");
        code.push_str("  for i in 0 .. block.rows:\n");
        code.push_str("    t <- block[i]\n");
        code.push_str(&render_steps(pipeline, "    "));
        code.push_str("  merge local state into shared state (single atomic per block)\n");
        code
    }
}

/// The GPU provider: grid-stride workers, neighborhood reduction, device atomics.
#[derive(Debug)]
pub struct GpuProvider {
    device: Arc<GpuDevice>,
    launch: LaunchConfig,
    state_vars: Mutex<HashMap<String, i64>>,
}

impl GpuProvider {
    /// A provider bound to one simulated GPU.
    pub fn new(device: Arc<GpuDevice>) -> Self {
        Self {
            device,
            launch: LaunchConfig::default_for_device(),
            state_vars: Mutex::new(HashMap::new()),
        }
    }

    /// The GPU this provider generates code for.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }
}

impl DeviceProvider for GpuProvider {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Gpu
    }

    fn local_memory(&self) -> MemoryNodeId {
        self.device.memory_node()
    }

    fn alloc_state_var(&self, managers: &MemoryManagerSet, bytes: u64) -> Result<StateAllocation> {
        // State for GPU pipelines lives in device memory; enforce the device
        // capacity first, then account it in the node's memory manager.
        let reservation = self.device.memory().alloc(bytes)?;
        let allocation = managers.alloc_on(self.local_memory(), bytes)?;
        // The device reservation guard is dropped here; capacity enforcement
        // for long-lived state is carried by the memory manager, which has the
        // same capacity as the device node.
        drop(reservation);
        Ok(allocation)
    }

    fn store_state_var(&self, name: &str, value: i64) {
        self.state_vars.lock().insert(name.to_owned(), value);
    }

    fn load_state_var(&self, name: &str) -> Option<i64> {
        self.state_vars.lock().get(name).copied()
    }

    fn threads_in_worker(&self) -> usize {
        self.launch.total_threads()
    }

    fn thread_id_in_worker(&self, lane: usize) -> usize {
        lane % self.launch.total_threads()
    }

    fn launch_config(&self) -> LaunchConfig {
        self.launch
    }

    fn convert_to_machine_code(&self, pipeline: &CompiledPipeline) -> String {
        // Listing 1, pipeline 9: grid-stride loop, thread-local accumulator,
        // neighborhood (warp) reduce, leader does the device atomic.
        let mut code =
            format!("__kernel__ def pipeline{}_gpu(block, state):\n", pipeline.id().index());
        code.push_str(&format!(
            "  # specialized by GpuProvider: threadId=grid thread id, #threads={}\n",
            self.launch.total_threads()
        ));
        code.push_str("  local_acc <- identity\n");
        code.push_str("  for i = threadIdInWorker to block.rows-1 step #threadsInWorker:\n");
        code.push_str("    t <- block[i]\n");
        code.push_str(&render_steps(pipeline, "    "));
        code.push_str("  nh_acc <- neighborhood_reduce(local_acc)\n");
        code.push_str("  if thread_neighborhood_leader: atomic_add(state.acc, nh_acc)\n");
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::{AggSpec, StateSlot, Step, TerminalStep};
    use hetex_common::PipelineId;
    use hetex_gpu_sim::device::standalone_gpu;

    fn sample_pipeline(device: DeviceKind) -> CompiledPipeline {
        CompiledPipeline::new(
            PipelineId::new(9),
            device,
            2,
            vec![Step::Filter { predicate: Expr::col(0).gt_lit(42) }],
            TerminalStep::Reduce { aggs: vec![AggSpec::sum(Expr::col(1))], slot: StateSlot(0) },
        )
        .unwrap()
    }

    #[test]
    fn cpu_provider_table1_surface() {
        let provider = CpuProvider::new(MemoryNodeId::new(0));
        assert_eq!(provider.kind(), DeviceKind::CpuCore);
        assert_eq!(provider.threads_in_worker(), 1);
        assert_eq!(provider.thread_id_in_worker(17), 0);
        assert_eq!(provider.launch_config().total_threads(), 1);
        provider.store_state_var("acc_ptr", 42);
        assert_eq!(provider.load_state_var("acc_ptr"), Some(42));
        assert_eq!(provider.load_state_var("missing"), None);

        let managers = MemoryManagerSet::new(&[(MemoryNodeId::new(0), 1 << 20)]);
        let alloc = provider.alloc_state_var(&managers, 1024).unwrap();
        assert_eq!(alloc.node(), MemoryNodeId::new(0));
        provider.free_state_var(alloc);

        let atomic = DeviceAtomicI64::new(0);
        provider.worker_scoped_atomic_add(&atomic, 5);
        assert_eq!(atomic.load(), 5);
    }

    #[test]
    fn gpu_provider_table1_surface() {
        let gpu = Arc::new(standalone_gpu());
        let provider = GpuProvider::new(gpu);
        assert_eq!(provider.kind(), DeviceKind::Gpu);
        assert!(provider.threads_in_worker() > 1);
        let tid = provider.thread_id_in_worker(3);
        assert_eq!(tid, 3);
        // State allocation is bounded by device memory (8 GB).
        let managers = MemoryManagerSet::new(&[(provider.local_memory(), 8 * (1 << 30))]);
        assert!(provider.alloc_state_var(&managers, 1 << 20).is_ok());
        assert!(provider.alloc_state_var(&managers, 16 * (1 << 30)).is_err());
    }

    #[test]
    fn buffers_come_from_the_local_block_manager() {
        let provider = CpuProvider::new(MemoryNodeId::new(1));
        let set = BlockManagerSet::new(&[MemoryNodeId::new(0), MemoryNodeId::new(1)], 4096);
        let lease = provider.get_buffer(&set, 1024).unwrap();
        assert_eq!(lease.home(), MemoryNodeId::new(1));
        assert_eq!(lease.bytes(), 1024);
        provider.release_buffer(lease);
        assert_eq!(set.manager(MemoryNodeId::new(1)).unwrap().available_bytes(), 4096);
        // getBuffer fails fast on a dry arena (explicit Error policy) rather
        // than parking generated code.
        let err = provider.get_buffer(&set, 8192).unwrap_err();
        assert_eq!(err.category(), "memory");
    }

    #[test]
    fn providers_specialize_the_same_blueprint_differently() {
        // Figure 3: the same pipeline produces structurally different code for
        // CPU and GPU, but from a single operator blueprint.
        let cpu_code = CpuProvider::new(MemoryNodeId::new(0))
            .convert_to_machine_code(&sample_pipeline(DeviceKind::CpuCore));
        let gpu_code = GpuProvider::new(Arc::new(standalone_gpu()))
            .convert_to_machine_code(&sample_pipeline(DeviceKind::Gpu));
        assert!(cpu_code.contains("for i in 0 .. block.rows"));
        assert!(cpu_code.contains("single atomic per block"));
        assert!(gpu_code.contains("step #threadsInWorker"));
        assert!(gpu_code.contains("neighborhood_reduce"));
        assert!(gpu_code.contains("thread_neighborhood_leader"));
        // Both contain the shared blueprint body.
        assert!(cpu_code.contains("if !predicate(t)"));
        assert!(gpu_code.contains("if !predicate(t)"));
        // loadMachineCode is a no-op that succeeds.
        assert!(CpuProvider::new(MemoryNodeId::new(0))
            .load_machine_code(&sample_pipeline(DeviceKind::CpuCore))
            .is_ok());
    }
}
