//! The vectorized CPU lowering: chunked, selection-vector execution.
//!
//! Where [`crate::lower_cpu`] interprets the step chain per tuple (branchy
//! enum dispatch, a register `Vec` per row), this lowering executes the same
//! fused IR over fixed-size chunks of [`VEC_CHUNK`] tuples:
//!
//! * the chunk's registers are *columns* (`Vec<i64>` per register), gathered
//!   once from the input block;
//! * `Step::Filter` evaluates its predicate column-at-a-time into a dense
//!   flag buffer and refines a `u32` **selection vector** with a tight,
//!   branch-light compaction loop ([`refine_selection`]) — no tuples move;
//! * `Step::Map` and `Step::HashJoinProbe` evaluate column-at-a-time over the
//!   surviving selection into reusable chunk-local scratch (rented from an
//!   [`ScratchPool`]), producing a dense chunk and resetting the selection to
//!   the identity — there is no per-step block materialization;
//! * the terminal consumes the final selection in one pass with chunk-local
//!   accumulators that are merged into shared state once per *block*, exactly
//!   like the tuple-at-a-time lowering (same atomics count, same rows).
//!
//! Row-order equivalence: tuples are visited in ascending selection order and
//! a probe appends its matches in probe order, which is exactly the
//! depth-first order of the recursive tuple-at-a-time interpreter — so output
//! rows are byte-identical between the two modes (the kernel differential
//! suite pins this).
//!
//! The GPU lowering is untouched: a grid-stride SIMT kernel already amortizes
//! dispatch across the whole launch, so only the CPU specialization needed a
//! second shape — the IR stays the single operator blueprint.

use crate::expr::ScratchPool;
use crate::ir::{Step, TerminalStep};
use crate::pipeline::{BlockCounters, CompiledPipeline, ExecCtx};
use crate::state::SharedState;
use hetex_common::{BlockHandle, Result};
use std::collections::HashMap;

/// Tuples per chunk. Sized so a handful of `i64` register columns plus
/// scratch (~tens of KiB) stay L1/L2-resident while still amortizing
/// per-chunk setup over a thousand tuples — the classic vectorized-execution
/// sweet spot between tuple-at-a-time interpretation overhead and full-block
/// materialization.
pub const VEC_CHUNK: usize = 1024;

/// Refine a selection vector in place: keep `sel[j]` exactly when
/// `flags[j] != 0` (`flags` is dense, aligned with `sel`). The compaction is
/// order-preserving and monotone — the result is a subsequence of the input —
/// and runs as a tight data-dependent loop with no index recomputation.
pub fn refine_selection(sel: &mut Vec<u32>, flags: &[i64]) {
    debug_assert_eq!(sel.len(), flags.len());
    let mut kept = 0usize;
    for j in 0..sel.len() {
        let idx = sel[j];
        sel[kept] = idx;
        kept += (flags[j] != 0) as usize;
    }
    sel.truncate(kept);
}

/// Chunk-local scratch reused across every chunk of a block: register
/// columns, the selection vector, flag/key buffers and the expression pool.
/// Everything grows to chunk size once and is reused, so the steady-state
/// chunk loop allocates nothing.
struct VecScratch {
    /// The chunk's register columns (dense after a map/probe, gathered from
    /// the input otherwise).
    regs: Vec<Vec<i64>>,
    /// Surviving selection: row indexes into `regs`, ascending.
    sel: Vec<u32>,
    /// Dense predicate / key / aggregate buffers.
    flags: Vec<i64>,
    /// Rentable intermediate buffers for expression evaluation.
    pool: ScratchPool,
}

impl VecScratch {
    fn new() -> Self {
        Self { regs: Vec::new(), sel: Vec::new(), flags: Vec::new(), pool: ScratchPool::new() }
    }

    /// Rent `n` cleared columns from the pool.
    fn rent_columns(&mut self, n: usize) -> Vec<Vec<i64>> {
        (0..n).map(|_| self.pool.acquire()).collect()
    }

    /// Replace the chunk's registers with `cols`, returning the old columns
    /// to the pool, and reset the selection to the identity over `len` dense
    /// lanes.
    fn install_dense(&mut self, cols: Vec<Vec<i64>>, len: usize) {
        for old in self.regs.drain(..) {
            self.pool.release(old);
        }
        self.regs = cols;
        self.sel.clear();
        self.sel.extend(0..len as u32);
    }
}

/// Process one block with the vectorized CPU specialization. Functionally
/// identical to [`crate::lower_cpu::process_block`] — same output rows in the
/// same order, same counters — but the hot path is chunked and
/// column-at-a-time instead of per-tuple.
pub(crate) fn process_block(
    pipeline: &CompiledPipeline,
    block: &BlockHandle,
    state: &SharedState,
    ctx: &mut ExecCtx,
) -> Result<(Vec<BlockHandle>, BlockCounters)> {
    let rows = block.rows();
    let data = block.block();
    let columns = data.columns();
    let mut counters = BlockCounters {
        rows_in: rows as u64,
        bytes_in: data.byte_size() as u64,
        ..Default::default()
    };

    // Block-local terminal state, merged into shared state once per block
    // (the CPU provider's worker-scoped atomic — identical to lower_cpu).
    let mut partials: Vec<i64> = match pipeline.terminal() {
        TerminalStep::Reduce { aggs, .. } => aggs.iter().map(|a| a.func.identity()).collect(),
        _ => Vec::new(),
    };
    let mut local_groups: HashMap<Vec<i64>, Vec<i64>> = HashMap::new();
    let mut outputs: Vec<BlockHandle> = Vec::new();

    let mut probes = 0u64;
    let mut probe_matches = 0u64;
    let mut rows_terminal = 0u64;
    let mut rows_emitted = 0u64;
    let mut bytes_out = 0u64;
    let mut build_inserts = 0u64;

    let steps = pipeline.steps();
    let terminal = pipeline.terminal();
    let mut scratch = VecScratch::new();

    let mut base = 0usize;
    while base < rows {
        let len = (rows - base).min(VEC_CHUNK);

        // Gather the chunk's input registers column-at-a-time.
        let mut in_cols = scratch.rent_columns(columns.len());
        for (c, col) in columns.iter().enumerate() {
            in_cols[c].extend((base..base + len).map(|r| col.get_i64(r).unwrap_or(0)));
        }
        scratch.install_dense(in_cols, len);

        // The fused step chain over the chunk.
        let mut width = pipeline.input_width();
        for step in steps {
            if scratch.sel.is_empty() {
                break;
            }
            match step {
                Step::Filter { predicate } => {
                    let mut flags = std::mem::take(&mut scratch.flags);
                    predicate.eval_batch(
                        &scratch.regs,
                        &scratch.sel,
                        &mut flags,
                        &mut scratch.pool,
                    );
                    refine_selection(&mut scratch.sel, &flags);
                    scratch.flags = flags;
                }
                Step::Map { exprs } => {
                    let lanes = scratch.sel.len();
                    let mut mapped = scratch.rent_columns(exprs.len());
                    for (e, expr) in exprs.iter().enumerate() {
                        expr.eval_batch(
                            &scratch.regs,
                            &scratch.sel,
                            &mut mapped[e],
                            &mut scratch.pool,
                        );
                    }
                    scratch.install_dense(mapped, lanes);
                    width = exprs.len();
                }
                Step::HashJoinProbe { key, slot, payload_width } => {
                    let mut keys = std::mem::take(&mut scratch.flags);
                    key.eval_batch(&scratch.regs, &scratch.sel, &mut keys, &mut scratch.pool);
                    let table = state.hash_table(*slot)?;
                    let mut out_cols = scratch.rent_columns(width + payload_width);
                    let mut fanned = 0usize;
                    for (j, &row) in scratch.sel.iter().enumerate() {
                        probes += 1;
                        // Matches append in probe order — the depth-first
                        // order of the tuple-at-a-time recursion.
                        let regs = &scratch.regs;
                        let found = table.probe(keys[j], |payload| {
                            for c in 0..width {
                                out_cols[c].push(regs[c][row as usize]);
                            }
                            for (p, v) in payload.iter().enumerate() {
                                out_cols[width + p].push(*v);
                            }
                        });
                        probe_matches += found as u64;
                        fanned += found;
                    }
                    scratch.flags = keys;
                    scratch.install_dense(out_cols, fanned);
                    width += payload_width;
                }
            }
        }

        // Terminal: consume the surviving selection in one pass.
        rows_terminal += scratch.sel.len() as u64;
        if !scratch.sel.is_empty() {
            match terminal {
                TerminalStep::Pack { exprs, partition_by, partitions } => {
                    let mut out_cols = scratch.rent_columns(exprs.len());
                    for (e, expr) in exprs.iter().enumerate() {
                        expr.eval_batch(
                            &scratch.regs,
                            &scratch.sel,
                            &mut out_cols[e],
                            &mut scratch.pool,
                        );
                    }
                    let mut parts = scratch.pool.acquire();
                    if let Some(p) = partition_by {
                        p.eval_batch(&scratch.regs, &scratch.sel, &mut parts, &mut scratch.pool);
                    }
                    let out_width = exprs.len();
                    for j in 0..scratch.sel.len() {
                        let out_row: Vec<i64> = out_cols.iter().map(|c| c[j]).collect();
                        let p = if partition_by.is_some() {
                            (parts[j].unsigned_abs() % (*partitions).max(1) as u64) as usize
                        } else {
                            0
                        };
                        let bucket = ctx.open_partitions.entry(p).or_default();
                        bucket.push(out_row);
                        if bucket.len() >= ctx.out_capacity {
                            let full = ctx.open_partitions.remove(&p).unwrap_or_default();
                            rows_emitted += full.len() as u64;
                            bytes_out += (full.len() * out_width * 8) as u64;
                            let tag = partition_by.as_ref().map(|_| p);
                            outputs.push(ctx.build_block(&full, tag)?);
                        }
                    }
                    scratch.pool.release(parts);
                    for col in out_cols {
                        scratch.pool.release(col);
                    }
                }
                TerminalStep::HashJoinBuild { key, payload, slot } => {
                    let mut keys = std::mem::take(&mut scratch.flags);
                    key.eval_batch(&scratch.regs, &scratch.sel, &mut keys, &mut scratch.pool);
                    let mut pay_cols = scratch.rent_columns(payload.len());
                    for (e, expr) in payload.iter().enumerate() {
                        expr.eval_batch(
                            &scratch.regs,
                            &scratch.sel,
                            &mut pay_cols[e],
                            &mut scratch.pool,
                        );
                    }
                    let table = state.hash_table(*slot)?;
                    for j in 0..scratch.sel.len() {
                        table.insert(keys[j], pay_cols.iter().map(|c| c[j]).collect());
                        build_inserts += 1;
                    }
                    scratch.flags = keys;
                    for col in pay_cols {
                        scratch.pool.release(col);
                    }
                }
                TerminalStep::Reduce { aggs, .. } => {
                    let mut values = std::mem::take(&mut scratch.flags);
                    for (i, agg) in aggs.iter().enumerate() {
                        agg.expr.eval_batch(
                            &scratch.regs,
                            &scratch.sel,
                            &mut values,
                            &mut scratch.pool,
                        );
                        // Dense fold into the block-local partial.
                        let mut acc = partials[i];
                        for &v in &values {
                            acc = agg.func.accumulate(acc, v);
                        }
                        partials[i] = acc;
                    }
                    scratch.flags = values;
                }
                TerminalStep::GroupBy { keys, aggs, .. } => {
                    let mut key_cols = scratch.rent_columns(keys.len());
                    for (e, expr) in keys.iter().enumerate() {
                        expr.eval_batch(
                            &scratch.regs,
                            &scratch.sel,
                            &mut key_cols[e],
                            &mut scratch.pool,
                        );
                    }
                    let mut agg_cols = scratch.rent_columns(aggs.len());
                    for (e, agg) in aggs.iter().enumerate() {
                        agg.expr.eval_batch(
                            &scratch.regs,
                            &scratch.sel,
                            &mut agg_cols[e],
                            &mut scratch.pool,
                        );
                    }
                    for j in 0..scratch.sel.len() {
                        let key: Vec<i64> = key_cols.iter().map(|c| c[j]).collect();
                        let entry = local_groups
                            .entry(key)
                            .or_insert_with(|| aggs.iter().map(|a| a.func.identity()).collect());
                        for (i, agg) in aggs.iter().enumerate() {
                            entry[i] = agg.func.accumulate(entry[i], agg_cols[i][j]);
                        }
                    }
                    for col in key_cols.into_iter().chain(agg_cols) {
                        scratch.pool.release(col);
                    }
                }
            }
        }
        base += len;
    }

    // One shared-state merge per block — identical synchronization (and
    // atomics accounting) to the tuple-at-a-time lowering.
    match terminal {
        TerminalStep::Reduce { aggs, slot } => {
            state.accumulators(*slot)?.merge_partials(&partials);
            counters.atomics += aggs.len() as u64;
        }
        TerminalStep::GroupBy { slot, .. } => {
            if !local_groups.is_empty() {
                state.group_by(*slot)?.merge_batch(local_groups.drain());
                counters.atomics += 1;
            }
        }
        TerminalStep::HashJoinBuild { .. } => {
            counters.atomics += build_inserts;
        }
        TerminalStep::Pack { .. } => {}
    }

    counters.probes = probes;
    counters.probe_matches = probe_matches;
    counters.rows_terminal = rows_terminal;
    counters.rows_emitted = rows_emitted;
    counters.bytes_out = bytes_out;
    Ok((outputs, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::{AggSpec, StateSlot};
    use hetex_common::{Block, BlockId, BlockMeta, ColumnData, MemoryNodeId, PipelineId};
    use hetex_topology::DeviceKind;

    fn block_of(cols: Vec<Vec<i64>>) -> BlockHandle {
        let rows = cols[0].len();
        let block = Block::new(cols.into_iter().map(ColumnData::Int64).collect(), rows).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0)))
    }

    /// Run the same pipeline shape through both CPU lowerings and require
    /// byte-identical outputs (blocks, order, counters).
    fn assert_modes_agree(
        steps: Vec<Step>,
        terminal: TerminalStep,
        cols: Vec<Vec<i64>>,
        mk_state: impl Fn() -> SharedState,
        check: impl Fn(&SharedState, &[BlockHandle]),
    ) {
        let width = cols.len();
        let pipeline =
            CompiledPipeline::new(PipelineId::new(77), DeviceKind::CpuCore, width, steps, terminal)
                .unwrap();
        let block = block_of(cols);

        let run = |vectorized: bool| {
            let state = mk_state();
            let mut ctx = ExecCtx::cpu(MemoryNodeId::new(0), 100);
            let (mut blocks, counters) = if vectorized {
                process_block(&pipeline, &block, &state, &mut ctx).unwrap()
            } else {
                crate::lower_cpu::process_block(&pipeline, &block, &state, &mut ctx).unwrap()
            };
            let tail = pipeline.finalize_instance(&mut ctx).unwrap();
            blocks.extend(tail.blocks);
            (state, blocks, counters)
        };
        let (vstate, vblocks, vcount) = run(true);
        let (tstate, tblocks, tcount) = run(false);

        assert_eq!(vcount, tcount, "counters diverged");
        assert_eq!(vblocks.len(), tblocks.len(), "block count diverged");
        for (vb, tb) in vblocks.iter().zip(&tblocks) {
            assert_eq!(vb.rows(), tb.rows());
            assert_eq!(vb.meta().hash_partition, tb.meta().hash_partition);
            for c in 0..vb.block().width() {
                for r in 0..vb.rows() {
                    assert_eq!(
                        vb.block().column(c).unwrap().get_i64(r),
                        tb.block().column(c).unwrap().get_i64(r),
                        "col {c} row {r}"
                    );
                }
            }
        }
        check(&vstate, &vblocks);
        check(&tstate, &tblocks);
    }

    #[test]
    fn refine_selection_keeps_flagged_lanes_in_order() {
        let mut sel: Vec<u32> = vec![0, 3, 4, 9, 11];
        refine_selection(&mut sel, &[1, 0, 7, 0, -2]);
        assert_eq!(sel, vec![0, 4, 11]);
        refine_selection(&mut sel, &[0, 0, 0]);
        assert!(sel.is_empty());
        // Refining an empty selection is a no-op.
        refine_selection(&mut sel, &[]);
        assert!(sel.is_empty());
    }

    #[test]
    fn filtered_reduce_matches_tuple_at_a_time_across_chunk_boundaries() {
        // > VEC_CHUNK rows so the chunk loop actually iterates; odd tail.
        let n = VEC_CHUNK * 2 + 345;
        let a: Vec<i64> = (0..n as i64).map(|i| i % 97).collect();
        let b: Vec<i64> = (0..n as i64).map(|i| i * 3 - 1000).collect();
        assert_modes_agree(
            vec![Step::Filter { predicate: Expr::col(0).between(10, 60) }],
            TerminalStep::Reduce {
                aggs: vec![
                    AggSpec::sum(Expr::col(1)),
                    AggSpec::count(),
                    AggSpec::min(Expr::col(1)),
                    AggSpec::max(Expr::col(1)),
                ],
                slot: StateSlot(0),
            },
            vec![a, b],
            || {
                let mut s = SharedState::new();
                s.add_accumulators(&[
                    AggSpec::sum(Expr::col(1)),
                    AggSpec::count(),
                    AggSpec::min(Expr::col(1)),
                    AggSpec::max(Expr::col(1)),
                ]);
                s
            },
            |state, _| {
                let vals = state.accumulators(StateSlot(0)).unwrap().values();
                assert_eq!(
                    vals[1],
                    (0..(VEC_CHUNK * 2 + 345) as i64)
                        .filter(|i| (10..=60).contains(&(i % 97)))
                        .count() as i64
                );
            },
        );
    }

    #[test]
    fn probe_fan_out_and_group_by_match_tuple_at_a_time() {
        let n = VEC_CHUNK + 200;
        let keys: Vec<i64> = (0..n as i64).map(|i| i % 50).collect();
        let vals: Vec<i64> = (0..n as i64).collect();
        let mk_state = || {
            let mut s = SharedState::new();
            let ht = s.add_hash_table(1);
            // Key 7 fans out to two build rows; keys >= 40 have no match.
            for k in 0..40 {
                s.hash_table(ht).unwrap().insert(k, vec![k * 10]);
            }
            s.hash_table(ht).unwrap().insert(7, vec![70_000]);
            s.add_group_by(&[AggSpec::sum(Expr::col(2)), AggSpec::count()]);
            s
        };
        assert_modes_agree(
            vec![
                Step::HashJoinProbe { key: Expr::col(0), slot: StateSlot(0), payload_width: 1 },
                Step::Filter { predicate: Expr::col(2).gt_lit(-1) },
            ],
            TerminalStep::GroupBy {
                keys: vec![Expr::col(0)],
                aggs: vec![AggSpec::sum(Expr::col(2)), AggSpec::count()],
                slot: StateSlot(1),
            },
            vec![keys, vals],
            mk_state,
            |state, _| {
                let groups = state.group_by(StateSlot(1)).unwrap().snapshot();
                assert_eq!(groups.len(), 40);
            },
        );
    }

    #[test]
    fn map_and_hash_pack_match_tuple_at_a_time() {
        let n = VEC_CHUNK + 77;
        let a: Vec<i64> = (0..n as i64).collect();
        let b: Vec<i64> = (0..n as i64).map(|i| i % 11).collect();
        assert_modes_agree(
            vec![
                Step::Filter { predicate: Expr::col(1).in_list(vec![1, 3, 5, 7, 9]) },
                Step::Map { exprs: vec![Expr::col(0).mul(Expr::col(1)), Expr::col(1)] },
            ],
            TerminalStep::Pack {
                exprs: vec![Expr::col(0), Expr::col(1)],
                partition_by: Some(Expr::col(1)),
                partitions: 3,
            },
            vec![a, b],
            SharedState::new,
            |_, blocks| {
                assert!(!blocks.is_empty());
                for h in blocks {
                    let p = h.meta().hash_partition.expect("hash-pack tags blocks");
                    let keys = h.block().column(1).unwrap();
                    for r in 0..h.rows() {
                        assert_eq!(keys.get_i64(r).unwrap().unsigned_abs() % 3, p);
                    }
                }
            },
        );
    }

    #[test]
    fn hash_join_build_matches_tuple_at_a_time() {
        let n = 500;
        let k: Vec<i64> = (0..n as i64).collect();
        let v: Vec<i64> = (0..n as i64).map(|i| i * 2).collect();
        assert_modes_agree(
            vec![Step::Filter { predicate: Expr::col(0).lt_lit(100) }],
            TerminalStep::HashJoinBuild {
                key: Expr::col(0),
                payload: vec![Expr::col(1)],
                slot: StateSlot(0),
            },
            vec![k, v],
            || {
                let mut s = SharedState::new();
                s.add_hash_table(1);
                s
            },
            |state, _| {
                assert_eq!(state.hash_table(StateSlot(0)).unwrap().len(), 100);
            },
        );
    }
}
