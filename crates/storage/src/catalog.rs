//! The columnar table catalog.
//!
//! Tables are fully resident in (host) memory, stored column-wise. Each table
//! is split into contiguous row *segments*, and every segment is assigned to a
//! memory node of the simulated server — socket DRAM for CPU-resident
//! placements, GPU device memory for GPU-resident placements (the SF100
//! experiments pre-load the working set into the GPUs' memories). Scans only
//! materialize the columns a query needs, so the cost model charges exactly
//! the bytes a columnar engine would read.

use hetex_common::{
    Block, BlockHandle, BlockId, BlockMeta, ColumnData, DataType, DictionaryBuilder, Field,
    HetError, MemoryNodeId, Result, Schema,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One contiguous range of rows assigned to a memory node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// First row of the segment (inclusive).
    pub start: usize,
    /// One past the last row of the segment.
    pub end: usize,
    /// Memory node the segment resides on.
    pub node: MemoryNodeId,
}

impl SegmentInfo {
    /// Number of rows in the segment.
    pub fn rows(&self) -> usize {
        self.end - self.start
    }
}

/// A fully loaded, immutable columnar table.
#[derive(Debug)]
pub struct StoredTable {
    name: String,
    schema: Arc<Schema>,
    rows: usize,
    columns: Vec<Arc<ColumnData>>,
    segments: Vec<SegmentInfo>,
    dictionaries: HashMap<String, Arc<DictionaryBuilder>>,
}

impl StoredTable {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The row segments and their placement.
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.segments
    }

    /// Full column data by name (used by the operator-at-a-time baselines and
    /// by dimension-array joins).
    pub fn column(&self, name: &str) -> Result<Arc<ColumnData>> {
        let idx = self.schema.index_of(name)?;
        Ok(Arc::clone(&self.columns[idx]))
    }

    /// Dictionary of a string column, if the column is dictionary-encoded.
    pub fn dictionary(&self, column: &str) -> Option<Arc<DictionaryBuilder>> {
        self.dictionaries.get(column).cloned()
    }

    /// Total bytes of the given columns (what a scan of those columns reads).
    pub fn projected_bytes(&self, projection: &[&str]) -> Result<usize> {
        let mut total = 0;
        for name in projection {
            let field = self.schema.field(name)?;
            total += self.rows * field.data_type.byte_width();
        }
        Ok(total)
    }

    /// Materialize scan blocks for `projection`, `block_capacity` rows each,
    /// respecting segment boundaries and placements. Block ids are assigned
    /// sequentially from 0 for this scan.
    pub fn scan_blocks(
        &self,
        projection: &[&str],
        block_capacity: usize,
    ) -> Result<Vec<BlockHandle>> {
        if block_capacity == 0 {
            return Err(HetError::Config("block_capacity must be positive".into()));
        }
        let mut col_indexes = Vec::with_capacity(projection.len());
        let mut fields = Vec::with_capacity(projection.len());
        for name in projection {
            let idx = self.schema.index_of(name)?;
            col_indexes.push(idx);
            fields.push(self.schema.fields()[idx].clone());
        }
        let block_schema = Schema::new(fields);
        let mut handles = Vec::new();
        let mut next_id = 0usize;
        for seg in &self.segments {
            let mut start = seg.start;
            while start < seg.end {
                let end = (start + block_capacity).min(seg.end);
                let columns: Vec<ColumnData> =
                    col_indexes.iter().map(|&idx| self.columns[idx].slice(start, end)).collect();
                let block = Block::new(columns, end - start)?;
                let meta = BlockMeta::new(BlockId::new(next_id), seg.node);
                next_id += 1;
                let _ = &block_schema; // schema is implied by projection order
                handles.push(BlockHandle::new(block, meta));
                start = end;
            }
        }
        Ok(handles)
    }
}

/// Builder for [`StoredTable`].
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    fields: Vec<Field>,
    columns: Vec<ColumnData>,
    dictionaries: HashMap<String, Arc<DictionaryBuilder>>,
}

impl TableBuilder {
    /// Start building a table.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fields: Vec::new(),
            columns: Vec::new(),
            dictionaries: HashMap::new(),
        }
    }

    /// Add a column with its data.
    pub fn column(
        mut self,
        name: impl Into<String>,
        data_type: DataType,
        data: ColumnData,
    ) -> Self {
        self.fields.push(Field::new(name, data_type));
        self.columns.push(data);
        self
    }

    /// Add a dictionary-encoded string column: codes plus the dictionary.
    pub fn dict_column(
        mut self,
        name: impl Into<String>,
        codes: Vec<i32>,
        dictionary: Arc<DictionaryBuilder>,
    ) -> Self {
        let name = name.into();
        self.fields.push(Field::new(name.clone(), DataType::Dictionary));
        self.columns.push(ColumnData::Int32(codes));
        self.dictionaries.insert(name, dictionary);
        self
    }

    /// Finish the table, splitting it into `segment_rows`-row segments placed
    /// round-robin over `placement` memory nodes.
    pub fn build(self, placement: &[MemoryNodeId], segment_rows: usize) -> Result<StoredTable> {
        if self.columns.is_empty() {
            return Err(HetError::Schema(format!("table {} has no columns", self.name)));
        }
        if placement.is_empty() {
            return Err(HetError::Config("placement needs at least one memory node".into()));
        }
        if segment_rows == 0 {
            return Err(HetError::Config("segment_rows must be positive".into()));
        }
        let rows = self.columns[0].len();
        for (i, col) in self.columns.iter().enumerate() {
            if col.len() != rows {
                return Err(HetError::Schema(format!(
                    "column {} of table {} has {} rows, expected {rows}",
                    self.fields[i].name,
                    self.name,
                    col.len()
                )));
            }
        }
        let mut segments = Vec::new();
        let mut start = 0;
        let mut node_cursor = 0;
        while start < rows {
            let end = (start + segment_rows).min(rows);
            segments.push(SegmentInfo {
                start,
                end,
                node: placement[node_cursor % placement.len()],
            });
            node_cursor += 1;
            start = end;
        }
        if rows == 0 {
            // Empty tables still get one empty segment so scans behave uniformly.
            segments.push(SegmentInfo { start: 0, end: 0, node: placement[0] });
        }
        Ok(StoredTable {
            name: self.name,
            schema: Arc::new(Schema::new(self.fields)),
            rows,
            columns: self.columns.into_iter().map(Arc::new).collect(),
            segments,
            dictionaries: self.dictionaries,
        })
    }
}

/// A thread-safe registry of loaded tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<StoredTable>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table, replacing any previous table of the same name.
    pub fn register(&self, table: StoredTable) -> Arc<StoredTable> {
        let table = Arc::new(table);
        self.register_arc(Arc::clone(&table));
        table
    }

    /// Register an already shared table (tables are immutable, so several
    /// catalogs — e.g. one per compared engine — can share the same data).
    pub fn register_arc(&self, table: Arc<StoredTable>) {
        self.tables.write().insert(table.name().to_owned(), table);
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<StoredTable>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| HetError::CatalogMissing(format!("table `{name}` is not loaded")))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> Vec<MemoryNodeId> {
        vec![MemoryNodeId::new(0), MemoryNodeId::new(1)]
    }

    fn small_table() -> StoredTable {
        TableBuilder::new("t")
            .column("k", DataType::Int32, ColumnData::Int32((0..100).collect()))
            .column(
                "v",
                DataType::Int64,
                ColumnData::Int64((0..100).map(|i| i as i64 * 10).collect()),
            )
            .build(&nodes(), 30)
            .unwrap()
    }

    #[test]
    fn builder_segments_round_robin() {
        let t = small_table();
        assert_eq!(t.rows(), 100);
        assert_eq!(t.segments().len(), 4); // 30+30+30+10
        assert_eq!(t.segments()[0].node, MemoryNodeId::new(0));
        assert_eq!(t.segments()[1].node, MemoryNodeId::new(1));
        assert_eq!(t.segments()[3].rows(), 10);
    }

    #[test]
    fn builder_rejects_bad_input() {
        assert!(TableBuilder::new("x").build(&nodes(), 10).is_err());
        let ragged = TableBuilder::new("x")
            .column("a", DataType::Int32, ColumnData::Int32(vec![1, 2]))
            .column("b", DataType::Int32, ColumnData::Int32(vec![1]))
            .build(&nodes(), 10);
        assert!(ragged.is_err());
        let no_nodes = TableBuilder::new("x")
            .column("a", DataType::Int32, ColumnData::Int32(vec![1]))
            .build(&[], 10);
        assert!(no_nodes.is_err());
    }

    #[test]
    fn scan_blocks_respect_projection_and_segments() {
        let t = small_table();
        let blocks = t.scan_blocks(&["v"], 25).unwrap();
        // Segments of 30/30/30/10 rows split into 25-row blocks: 2+2+2+1.
        assert_eq!(blocks.len(), 7);
        let total_rows: usize = blocks.iter().map(|b| b.rows()).sum();
        assert_eq!(total_rows, 100);
        // Only the projected column is materialized.
        assert_eq!(blocks[0].block().width(), 1);
        assert_eq!(blocks[0].block().column(0).unwrap().get_i64(0), Some(0));
        // Blocks inherit the placement of their segment.
        assert_eq!(blocks[0].meta().location, MemoryNodeId::new(0));
        assert_eq!(blocks[2].meta().location, MemoryNodeId::new(1));
        assert!(t.scan_blocks(&["missing"], 25).is_err());
        assert!(t.scan_blocks(&["v"], 0).is_err());
    }

    #[test]
    fn projected_bytes_counts_only_projection() {
        let t = small_table();
        assert_eq!(t.projected_bytes(&["k"]).unwrap(), 400);
        assert_eq!(t.projected_bytes(&["k", "v"]).unwrap(), 400 + 800);
    }

    #[test]
    fn dictionary_columns_round_trip() {
        let dict = Arc::new(DictionaryBuilder::from_domain(["ASIA", "EUROPE", "AMERICA"]));
        let codes = vec![dict.encode("ASIA").unwrap(), dict.encode("EUROPE").unwrap()];
        let t = TableBuilder::new("region")
            .dict_column("r_name", codes, Arc::clone(&dict))
            .build(&nodes(), 10)
            .unwrap();
        assert_eq!(t.schema().field("r_name").unwrap().data_type, DataType::Dictionary);
        let d = t.dictionary("r_name").unwrap();
        assert_eq!(d.decode(0), Some("AMERICA"));
        assert!(t.dictionary("missing").is_none());
    }

    #[test]
    fn catalog_register_and_lookup() {
        let catalog = Catalog::new();
        catalog.register(small_table());
        assert!(catalog.get("t").is_ok());
        assert!(catalog.get("nope").is_err());
        assert_eq!(catalog.table_names(), vec!["t".to_string()]);
    }

    #[test]
    fn empty_table_has_single_empty_segment() {
        let t = TableBuilder::new("empty")
            .column("a", DataType::Int32, ColumnData::Int32(vec![]))
            .build(&nodes(), 10)
            .unwrap();
        assert_eq!(t.rows(), 0);
        assert_eq!(t.segments().len(), 1);
        assert!(t.scan_blocks(&["a"], 10).unwrap().is_empty());
    }
}
