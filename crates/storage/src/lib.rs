//! # hetex-storage
//!
//! The storage substrate of the reproduction: an in-memory columnar store with
//! NUMA-aware placement, plus the two memory subsystems §4.3 of the paper
//! distinguishes:
//!
//! * **memory managers** ([`memory_manager`]) serve *state* memory — hash
//!   tables, aggregation state — one manager per memory node;
//! * **block managers** ([`block_manager`]) serve *staging* memory — the
//!   blocks that carry intermediate results between devices — with
//!   pre-allocated arenas, device-local synchronization, per-remote-node
//!   caches and batched remote acquisition, as described in the paper.
//!
//! Tables ([`catalog`]) are stored column-wise; each table is split into row
//! segments placed round-robin across the memory nodes of the chosen
//! placement (CPU DRAM for the SF1000 experiments, GPU device memory for the
//! SF100 experiments). The [`segmenter`] turns those segments into the
//! block-shaped partitions that the bottom of every HetExchange plan routes.

pub mod block_manager;
pub mod catalog;
pub mod memory_manager;
pub mod segmenter;

pub use block_manager::{BlockLease, BlockManager, BlockManagerSet, ExhaustionPolicy};
pub use catalog::{Catalog, StoredTable, TableBuilder};
pub use memory_manager::{MemoryManager, MemoryManagerSet, StateAllocation};
pub use segmenter::Segmenter;
