//! The segmenter: the leaf of every HetExchange plan.
//!
//! In the paper's running example (Figure 1c and Listing 1, pipeline 6) the
//! segmenter "splits the input file into small block-shaped partitions, that
//! are treated as normal blocks. Partitions' block handles will be propagated
//! to the router". The segmenter therefore runs single-threaded, touches no
//! tuple data, and produces a stream of block handles tagged with the memory
//! node their data lives on.

use crate::catalog::StoredTable;
use hetex_common::{BlockHandle, Result};
use std::sync::Arc;

/// Produces the block-shaped partitions of one table scan.
#[derive(Debug)]
pub struct Segmenter {
    table: Arc<StoredTable>,
    projection: Vec<String>,
    block_capacity: usize,
    weight: f64,
}

impl Segmenter {
    /// A segmenter over `table` reading only `projection` columns and cutting
    /// `block_capacity`-row blocks.
    pub fn new(table: Arc<StoredTable>, projection: &[&str], block_capacity: usize) -> Self {
        Self {
            table,
            projection: projection.iter().map(|s| s.to_string()).collect(),
            block_capacity,
            weight: 1.0,
        }
    }

    /// Apply a scale-extrapolation weight to every produced handle (see the
    /// `scale_weight` engine configuration knob).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// The table being segmented.
    pub fn table(&self) -> &Arc<StoredTable> {
        &self.table
    }

    /// Produce every block handle of the scan, in storage order.
    pub fn segments(&self) -> Result<Vec<BlockHandle>> {
        let projection: Vec<&str> = self.projection.iter().map(String::as_str).collect();
        let mut handles = self.table.scan_blocks(&projection, self.block_capacity)?;
        if (self.weight - 1.0).abs() > f64::EPSILON {
            for h in &mut handles {
                h.meta_mut().weight = self.weight;
            }
        }
        Ok(handles)
    }

    /// Number of blocks the scan will produce.
    pub fn block_count(&self) -> Result<usize> {
        Ok(self.segments()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableBuilder;
    use hetex_common::{ColumnData, DataType, MemoryNodeId};

    fn table() -> Arc<StoredTable> {
        Arc::new(
            TableBuilder::new("t")
                .column("a", DataType::Int32, ColumnData::Int32((0..1000).collect()))
                .column(
                    "b",
                    DataType::Int64,
                    ColumnData::Int64((0..1000).map(|i| i as i64).collect()),
                )
                .build(&[MemoryNodeId::new(0), MemoryNodeId::new(1)], 256)
                .unwrap(),
        )
    }

    #[test]
    fn segmenter_produces_all_rows_once() {
        let seg = Segmenter::new(table(), &["a", "b"], 100);
        let blocks = seg.segments().unwrap();
        let rows: usize = blocks.iter().map(|b| b.rows()).sum();
        assert_eq!(rows, 1000);
        assert_eq!(seg.block_count().unwrap(), blocks.len());
        // Projection controls block width.
        let narrow = Segmenter::new(table(), &["b"], 100);
        assert_eq!(narrow.segments().unwrap()[0].block().width(), 1);
    }

    #[test]
    fn weight_is_stamped_on_handles() {
        let seg = Segmenter::new(table(), &["a"], 100).with_weight(50.0);
        let blocks = seg.segments().unwrap();
        assert!(blocks.iter().all(|b| (b.meta().weight - 50.0).abs() < f64::EPSILON));
        let unweighted = Segmenter::new(table(), &["a"], 100);
        assert!(unweighted
            .segments()
            .unwrap()
            .iter()
            .all(|b| (b.meta().weight - 1.0).abs() < f64::EPSILON));
    }

    #[test]
    fn blocks_preserve_segment_placement() {
        let seg = Segmenter::new(table(), &["a"], 128);
        let blocks = seg.segments().unwrap();
        let nodes: std::collections::HashSet<_> =
            blocks.iter().map(|b| b.meta().location).collect();
        assert_eq!(nodes.len(), 2, "both placement nodes appear");
    }

    #[test]
    fn unknown_projection_errors() {
        let seg = Segmenter::new(table(), &["zzz"], 128);
        assert!(seg.segments().is_err());
    }
}
