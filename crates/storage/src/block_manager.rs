//! Block managers: staging memory for intermediate results.
//!
//! §4.3: "State memory is served by memory managers, while staging memory is
//! served by block managers. Both are organized as a set of independent, local
//! components — one per memory node." The block managers:
//!
//! * pre-allocate block *arenas* at initialization time, so no allocation
//!   happens on the query's critical path;
//! * only allow **local** devices to acquire blocks directly, using
//!   device-local synchronization (a per-node mutex here — there is no global
//!   lock across nodes);
//! * serve requests for **remote** blocks by launching small acquisition tasks
//!   to the remote node's manager, accelerated by (i) a per-remote-node cache
//!   of already-acquired blocks and (ii) batching of acquisition and release
//!   requests.
//!
//! Blocks here are *capacity tokens*: the actual tuple storage is an ordinary
//! `Block` built by the pack operator. What the manager provides is the
//! accounting (arenas can run dry → failure injection tests) and the remote
//! acquisition protocol with its cache/batching behaviour, which the unit
//! tests and the ablation bench exercise.

use hetex_common::{BlockId, HetError, MemoryNodeId, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// How many blocks a remote acquisition batch fetches at once (§4.3: batching
/// requests for block acquisition and release from remote nodes).
pub const REMOTE_BATCH: usize = 8;

/// A lease on one staging block from a node's arena. Dropping the lease
/// returns the block to its home manager.
#[derive(Debug)]
pub struct BlockLease {
    id: BlockId,
    home: MemoryNodeId,
    manager: Arc<NodeState>,
    released: bool,
}

impl BlockLease {
    /// Identifier of the leased block.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Memory node the block belongs to.
    pub fn home(&self) -> MemoryNodeId {
        self.home
    }

    /// Explicitly return the lease (also happens on drop).
    pub fn release(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        if !self.released {
            self.manager.release_one();
            self.released = true;
        }
    }
}

impl Drop for BlockLease {
    fn drop(&mut self) {
        self.release_inner();
    }
}

/// Counters describing a node manager's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockManagerStats {
    /// Local acquisitions served from the arena.
    pub local_acquires: u64,
    /// Remote acquisitions served from the local cache of remote blocks.
    pub remote_cache_hits: u64,
    /// Batched acquisition round-trips to remote managers.
    pub remote_batches: u64,
}

#[derive(Debug)]
struct NodeState {
    node: MemoryNodeId,
    capacity: usize,
    available: Mutex<usize>,
    next_id: Mutex<usize>,
}

impl NodeState {
    fn acquire_one(&self) -> Result<BlockId> {
        let mut available = self.available.lock();
        if *available == 0 {
            return Err(HetError::Memory(format!(
                "block arena exhausted on {} ({} blocks)",
                self.node, self.capacity
            )));
        }
        *available -= 1;
        let mut next = self.next_id.lock();
        let id = BlockId::new(*next);
        *next += 1;
        Ok(id)
    }

    fn try_acquire_up_to(&self, n: usize) -> Vec<BlockId> {
        let mut available = self.available.lock();
        let take = n.min(*available);
        *available -= take;
        let mut next = self.next_id.lock();
        let ids = (0..take).map(|i| BlockId::new(*next + i)).collect::<Vec<_>>();
        *next += take;
        ids
    }

    fn release_one(&self) {
        let mut available = self.available.lock();
        *available += 1;
    }
}

/// The block manager of one memory node.
#[derive(Debug)]
pub struct BlockManager {
    state: Arc<NodeState>,
    /// Cache of blocks already acquired from each remote node, keyed by node.
    remote_cache: Mutex<HashMap<MemoryNodeId, Vec<BlockLease>>>,
    stats: Mutex<BlockManagerStats>,
}

impl BlockManager {
    /// A manager for `node` whose arena holds `arena_blocks` blocks.
    pub fn new(node: MemoryNodeId, arena_blocks: usize) -> Self {
        Self {
            state: Arc::new(NodeState {
                node,
                capacity: arena_blocks,
                available: Mutex::new(arena_blocks),
                next_id: Mutex::new(0),
            }),
            remote_cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(BlockManagerStats::default()),
        }
    }

    /// The node this manager serves.
    pub fn node(&self) -> MemoryNodeId {
        self.state.node
    }

    /// Number of blocks currently available in the local arena.
    pub fn available(&self) -> usize {
        *self.state.available.lock()
    }

    /// Acquire one block from the local arena (local devices only).
    pub fn acquire_local(&self) -> Result<BlockLease> {
        let id = self.state.acquire_one()?;
        self.stats.lock().local_acquires += 1;
        Ok(BlockLease {
            id,
            home: self.state.node,
            manager: Arc::clone(&self.state),
            released: false,
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> BlockManagerStats {
        *self.stats.lock()
    }
}

/// The set of block managers of the whole server — one per memory node — plus
/// the remote-acquisition protocol between them.
#[derive(Debug)]
pub struct BlockManagerSet {
    managers: Vec<Arc<BlockManager>>,
}

impl BlockManagerSet {
    /// Build one manager per node with `arena_blocks` blocks each.
    pub fn new(nodes: &[MemoryNodeId], arena_blocks: usize) -> Self {
        Self {
            managers: nodes.iter().map(|&n| Arc::new(BlockManager::new(n, arena_blocks))).collect(),
        }
    }

    /// The manager local to `node`.
    pub fn manager(&self, node: MemoryNodeId) -> Result<&Arc<BlockManager>> {
        self.managers
            .iter()
            .find(|m| m.node() == node)
            .ok_or_else(|| HetError::Memory(format!("no block manager for {node}")))
    }

    /// Acquire a block that must live on `target`, on behalf of a pipeline
    /// whose local node is `local`. Local requests go straight to the arena;
    /// remote requests are served from `local`'s cache of `target` blocks,
    /// refilled in batches of [`REMOTE_BATCH`].
    pub fn acquire(&self, local: MemoryNodeId, target: MemoryNodeId) -> Result<BlockLease> {
        if local == target {
            return self.manager(local)?.acquire_local();
        }
        let local_mgr = self.manager(local)?;
        let target_mgr = self.manager(target)?;
        let mut cache = local_mgr.remote_cache.lock();
        let entry = cache.entry(target).or_default();
        if let Some(lease) = entry.pop() {
            local_mgr.stats.lock().remote_cache_hits += 1;
            return Ok(lease);
        }
        // Cache miss: batch-acquire from the remote manager (one "small task
        // launched to the remote node" amortized over REMOTE_BATCH blocks).
        let ids = target_mgr.state.try_acquire_up_to(REMOTE_BATCH);
        if ids.is_empty() {
            return Err(HetError::Memory(format!("block arena exhausted on remote node {target}")));
        }
        {
            let mut stats = local_mgr.stats.lock();
            stats.remote_batches += 1;
        }
        let mut leases: Vec<BlockLease> = ids
            .into_iter()
            .map(|id| BlockLease {
                id,
                home: target,
                manager: Arc::clone(&target_mgr.state),
                released: false,
            })
            .collect();
        let first = leases.pop().expect("batch is non-empty");
        entry.extend(leases);
        Ok(first)
    }

    /// Total number of blocks still available across all arenas.
    pub fn total_available(&self) -> usize {
        self.managers.iter().map(|m| m.available()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> Vec<MemoryNodeId> {
        (0..4).map(MemoryNodeId::new).collect()
    }

    #[test]
    fn local_acquire_and_release_cycle() {
        let mgr = BlockManager::new(MemoryNodeId::new(0), 2);
        assert_eq!(mgr.available(), 2);
        let a = mgr.acquire_local().unwrap();
        let b = mgr.acquire_local().unwrap();
        assert_eq!(mgr.available(), 0);
        assert!(mgr.acquire_local().is_err());
        drop(a);
        assert_eq!(mgr.available(), 1);
        b.release();
        assert_eq!(mgr.available(), 2);
        assert_eq!(mgr.stats().local_acquires, 2);
    }

    #[test]
    fn lease_ids_are_unique() {
        let mgr = BlockManager::new(MemoryNodeId::new(0), 10);
        let a = mgr.acquire_local().unwrap();
        let b = mgr.acquire_local().unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.home(), MemoryNodeId::new(0));
    }

    #[test]
    fn remote_acquisition_uses_batching_and_cache() {
        let set = BlockManagerSet::new(&nodes(), 64);
        let local = MemoryNodeId::new(0);
        let remote = MemoryNodeId::new(2);
        // First remote acquire triggers one batch round-trip.
        let _a = set.acquire(local, remote).unwrap();
        let stats = set.manager(local).unwrap().stats();
        assert_eq!(stats.remote_batches, 1);
        assert_eq!(stats.remote_cache_hits, 0);
        // The next REMOTE_BATCH-1 acquisitions come from the cache.
        let mut leases = Vec::new();
        for _ in 0..(REMOTE_BATCH - 1) {
            leases.push(set.acquire(local, remote).unwrap());
        }
        let stats = set.manager(local).unwrap().stats();
        assert_eq!(stats.remote_batches, 1);
        assert_eq!(stats.remote_cache_hits, (REMOTE_BATCH - 1) as u64);
        // One more acquisition starts a new batch.
        let _b = set.acquire(local, remote).unwrap();
        assert_eq!(set.manager(local).unwrap().stats().remote_batches, 2);
    }

    #[test]
    fn remote_blocks_come_from_the_remote_arena() {
        let set = BlockManagerSet::new(&nodes(), 16);
        let local = MemoryNodeId::new(0);
        let remote = MemoryNodeId::new(3);
        let lease = set.acquire(local, remote).unwrap();
        assert_eq!(lease.home(), remote);
        // The remote arena lost a batch of blocks; the local arena is untouched.
        assert_eq!(set.manager(local).unwrap().available(), 16);
        assert_eq!(set.manager(remote).unwrap().available(), 16 - REMOTE_BATCH);
    }

    #[test]
    fn exhausted_remote_arena_reports_memory_error() {
        let set = BlockManagerSet::new(&nodes(), 0);
        let err = set.acquire(MemoryNodeId::new(0), MemoryNodeId::new(1)).unwrap_err();
        assert_eq!(err.category(), "memory");
        let err = set.acquire(MemoryNodeId::new(0), MemoryNodeId::new(0)).unwrap_err();
        assert_eq!(err.category(), "memory");
    }

    #[test]
    fn unknown_node_is_an_error() {
        let set = BlockManagerSet::new(&nodes(), 4);
        assert!(set.manager(MemoryNodeId::new(9)).is_err());
        assert!(set.acquire(MemoryNodeId::new(9), MemoryNodeId::new(0)).is_err());
    }

    #[test]
    fn total_available_tracks_outstanding_leases() {
        let set = BlockManagerSet::new(&nodes(), 4);
        assert_eq!(set.total_available(), 16);
        let lease = set.acquire(MemoryNodeId::new(1), MemoryNodeId::new(1)).unwrap();
        assert_eq!(set.total_available(), 15);
        drop(lease);
        assert_eq!(set.total_available(), 16);
    }

    #[test]
    fn concurrent_local_acquires_respect_capacity() {
        use std::thread;
        let mgr = Arc::new(BlockManager::new(MemoryNodeId::new(0), 100));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mgr = Arc::clone(&mgr);
                thread::spawn(move || {
                    let mut ok = 0;
                    for _ in 0..50 {
                        if let Ok(lease) = mgr.acquire_local() {
                            ok += 1;
                            drop(lease);
                        }
                    }
                    ok
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.available(), 100);
    }
}
