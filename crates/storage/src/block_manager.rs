//! Block managers: staging memory for intermediate results.
//!
//! §4.3: "State memory is served by memory managers, while staging memory is
//! served by block managers. Both are organized as a set of independent, local
//! components — one per memory node." The block managers:
//!
//! * pre-allocate staging *arenas* (a byte budget per node) at initialization
//!   time, so no allocation happens on the query's critical path;
//! * only allow **local** devices to acquire staging directly, using
//!   device-local synchronization (a per-node lock here — there is no global
//!   lock across nodes);
//! * serve requests for **remote** staging by launching small acquisition
//!   tasks to the remote node's manager, accelerated by (i) a per-remote-node
//!   cache of already-acquired leases and (ii) batching of acquisition and
//!   release requests.
//!
//! Leases are *capacity tokens* denominated in **bytes**: the actual tuple
//! storage is an ordinary `Block` built by the pack operator, and a lease of
//! `n` bytes reserves `n` bytes of the node's staging arena, so a large block
//! costs proportionally more than a tiny one. What the manager provides is
//! the accounting (arenas can run dry), the waiter/notify machinery that lets
//! a caller *park* until bytes are released instead of erroring, and the
//! remote acquisition protocol with its cache/batching behaviour.
//!
//! A dry arena has two explicit behaviours, chosen per call through
//! [`ExhaustionPolicy`]:
//!
//! * [`ExhaustionPolicy::Error`] — fail immediately with `HetError::Memory`.
//!   This is the failure-injection path the unit tests and strict callers
//!   (e.g. the device providers' `getBuffer`) use.
//! * [`ExhaustionPolicy::Park`] — block the caller on the node's condition
//!   variable until enough bytes are released, up to a timeout. This is what
//!   the pipelined executor uses for back-pressure: a full arena parks the
//!   producer instead of killing the query.

use hetex_common::{BlockId, HetError, MemoryNodeId, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// How many leases a remote acquisition batch fetches at once (§4.3: batching
/// requests for block acquisition and release from remote nodes).
pub const REMOTE_BATCH: usize = 8;

/// How many top lease holders (aggregated by label) a Park-timeout
/// `HetError::Memory` message names.
pub const TOP_HOLDERS_REPORTED: usize = 3;

/// Label recorded for leases acquired through the unlabeled entry points.
pub const ANON_HOLDER: &str = "anon";

/// What an acquisition does when the arena cannot serve it immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionPolicy {
    /// Fail with `HetError::Memory` right away (failure injection, strict
    /// callers that must not block).
    Error,
    /// Park the caller until enough bytes are released, up to the given
    /// timeout; a timeout still fails with `HetError::Memory` so a wedged
    /// pipeline reports instead of hanging forever.
    Park(Duration),
}

/// A lease on staging bytes from a node's arena. Dropping the lease returns
/// the bytes to its home manager and wakes parked acquirers.
#[derive(Debug)]
pub struct BlockLease {
    id: BlockId,
    home: MemoryNodeId,
    bytes: u64,
    manager: Arc<NodeState>,
    released: bool,
}

impl BlockLease {
    /// Identifier of the leased staging block.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Memory node the bytes belong to.
    pub fn home(&self) -> MemoryNodeId {
        self.home
    }

    /// Bytes this lease reserves in its home arena.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Explicitly return the lease (also happens on drop).
    pub fn release(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        if !self.released {
            self.manager.release(self.id, self.bytes);
            self.released = true;
        }
    }
}

impl Drop for BlockLease {
    fn drop(&mut self) {
        self.release_inner();
    }
}

/// Counters describing a node manager's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockManagerStats {
    /// Local acquisitions served from the arena.
    pub local_acquires: u64,
    /// Remote acquisitions served from the local cache of remote leases.
    pub remote_cache_hits: u64,
    /// Batched acquisition round-trips to remote managers.
    pub remote_batches: u64,
    /// Acquisitions that had to park for released bytes before succeeding.
    pub parked: u64,
}

/// Mutable arena accounting, guarded by the node's lock.
#[derive(Debug)]
struct Arena {
    available: u64,
    next_id: usize,
    peak_leased: u64,
    /// Live leases by id: bytes held and the acquirer's label. Feeds the
    /// top-holders diagnostic a Park timeout reports — "timed out" alone
    /// cannot tell a wedged consumer from a co-tenant burst.
    holders: HashMap<BlockId, (u64, String)>,
}

impl Arena {
    /// The top lease holders by total bytes, aggregated by label, rendered
    /// as `label:bytes` — the diagnostic payload of a Park timeout.
    fn top_holders(&self, n: usize) -> String {
        let mut by_label: HashMap<&str, u64> = HashMap::new();
        for (bytes, label) in self.holders.values() {
            *by_label.entry(label.as_str()).or_default() += bytes;
        }
        let mut ranked: Vec<(&str, u64)> = by_label.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        ranked.truncate(n);
        if ranked.is_empty() {
            return "none".into();
        }
        ranked
            .into_iter()
            .map(|(label, bytes)| format!("{label}:{bytes}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[derive(Debug)]
struct NodeState {
    node: MemoryNodeId,
    capacity: u64,
    // std sync primitives (not the vendored parking_lot stub) because the
    // waiter/notify protocol needs a condition variable.
    arena: StdMutex<Arena>,
    released_cv: Condvar,
    /// Mirror of `capacity - arena.available`, maintained on every (de)lease
    /// so [`BlockManager::occupancy`] — read per consumer per block on the
    /// routing hot path — never takes the arena lock.
    leased: AtomicU64,
}

/// The outcome of one arena acquisition: the lease id plus whether the caller
/// had to park (for stats).
struct Acquired {
    id: BlockId,
    parked: bool,
}

impl NodeState {
    fn acquire(&self, bytes: u64, policy: ExhaustionPolicy, label: &str) -> Result<Acquired> {
        if bytes > self.capacity {
            return Err(HetError::Memory(format!(
                "staging request of {bytes} bytes can never fit the arena on {} ({} bytes)",
                self.node, self.capacity
            )));
        }
        let mut arena = self.arena.lock().unwrap_or_else(|e| e.into_inner());
        let mut parked = false;
        let deadline = match policy {
            ExhaustionPolicy::Error => None,
            ExhaustionPolicy::Park(timeout) => Some(Instant::now() + timeout),
        };
        while arena.available < bytes {
            let Some(deadline) = deadline else {
                return Err(HetError::Memory(format!(
                    "staging arena exhausted on {} ({} of {} bytes free, {bytes} requested)",
                    self.node, arena.available, self.capacity
                )));
            };
            let now = Instant::now();
            if now >= deadline {
                return Err(HetError::Memory(format!(
                    "parked staging acquisition timed out on {} ({} of {} bytes free, \
                     {bytes} requested; top holders by bytes: {})",
                    self.node,
                    arena.available,
                    self.capacity,
                    arena.top_holders(TOP_HOLDERS_REPORTED)
                )));
            }
            parked = true;
            let (guard, _) = self
                .released_cv
                .wait_timeout(arena, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            arena = guard;
        }
        arena.available -= bytes;
        arena.peak_leased = arena.peak_leased.max(self.capacity - arena.available);
        self.leased.store(self.capacity - arena.available, Ordering::Relaxed);
        let id = BlockId::new(arena.next_id);
        arena.next_id += 1;
        arena.holders.insert(id, (bytes, label.to_owned()));
        Ok(Acquired { id, parked })
    }

    /// Take up to `n` extra leases of `bytes` each without waiting, and only
    /// while the arena stays comfortably supplied (at least half the capacity
    /// free after the grab) — prefetching for a remote cache must not hoard
    /// the last bytes other producers are parked on.
    fn try_take_extra(&self, n: usize, bytes: u64, label: &str) -> Vec<BlockId> {
        if bytes == 0 {
            return Vec::new();
        }
        let mut arena = self.arena.lock().unwrap_or_else(|e| e.into_inner());
        let mut ids = Vec::new();
        while ids.len() < n {
            let after = arena.available.saturating_sub(bytes);
            if arena.available < bytes || after < self.capacity / 2 {
                break;
            }
            arena.available = after;
            arena.peak_leased = arena.peak_leased.max(self.capacity - arena.available);
            self.leased.store(self.capacity - arena.available, Ordering::Relaxed);
            let id = BlockId::new(arena.next_id);
            arena.next_id += 1;
            arena.holders.insert(id, (bytes, label.to_owned()));
            ids.push(id);
        }
        ids
    }

    fn release(&self, id: BlockId, bytes: u64) {
        let mut arena = self.arena.lock().unwrap_or_else(|e| e.into_inner());
        arena.available = (arena.available + bytes).min(self.capacity);
        self.leased.store(self.capacity - arena.available, Ordering::Relaxed);
        arena.holders.remove(&id);
        drop(arena);
        self.released_cv.notify_all();
    }
}

/// The block manager of one memory node.
#[derive(Debug)]
pub struct BlockManager {
    state: Arc<NodeState>,
    /// Cache of leases already acquired from each remote node. A request is
    /// served by the smallest cached lease that covers it (best fit) — block
    /// streams are mostly uniform-sized, but tail blocks and variable-width
    /// stages must reuse the prefetched leases rather than strand them.
    remote_cache: Mutex<HashMap<MemoryNodeId, Vec<BlockLease>>>,
    stats: Mutex<BlockManagerStats>,
}

impl BlockManager {
    /// A manager for `node` whose staging arena holds `arena_bytes` bytes.
    pub fn new(node: MemoryNodeId, arena_bytes: u64) -> Self {
        Self {
            state: Arc::new(NodeState {
                node,
                capacity: arena_bytes,
                arena: StdMutex::new(Arena {
                    available: arena_bytes,
                    next_id: 0,
                    peak_leased: 0,
                    holders: HashMap::new(),
                }),
                released_cv: Condvar::new(),
                leased: AtomicU64::new(0),
            }),
            remote_cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(BlockManagerStats::default()),
        }
    }

    /// The node this manager serves.
    pub fn node(&self) -> MemoryNodeId {
        self.state.node
    }

    /// Total bytes of the staging arena.
    pub fn capacity_bytes(&self) -> u64 {
        self.state.capacity
    }

    /// Bytes currently available in the local arena.
    pub fn available_bytes(&self) -> u64 {
        self.state.arena.lock().unwrap_or_else(|e| e.into_inner()).available
    }

    /// Bytes currently leased out of the arena.
    pub fn leased_bytes(&self) -> u64 {
        self.state.leased.load(Ordering::Relaxed)
    }

    /// Largest number of bytes ever leased simultaneously.
    pub fn peak_leased_bytes(&self) -> u64 {
        self.state.arena.lock().unwrap_or_else(|e| e.into_inner()).peak_leased
    }

    /// Fraction of the arena currently leased, in `[0, 1]`. The router's load
    /// estimator uses this to steer blocks away from memory-starved nodes.
    pub fn occupancy(&self) -> f64 {
        if self.state.capacity == 0 {
            return 1.0;
        }
        self.leased_bytes() as f64 / self.state.capacity as f64
    }

    /// Acquire `bytes` of staging from the local arena (local devices only).
    pub fn acquire_local(&self, bytes: u64, policy: ExhaustionPolicy) -> Result<BlockLease> {
        self.acquire_local_labeled(bytes, policy, ANON_HOLDER)
    }

    /// Like [`Self::acquire_local`], but records `label` as the lease's
    /// holder so a later Park timeout on this arena can name who held the
    /// bytes (the executor labels by stage/slot; fault injection by burst).
    pub fn acquire_local_labeled(
        &self,
        bytes: u64,
        policy: ExhaustionPolicy,
        label: &str,
    ) -> Result<BlockLease> {
        let acquired = self.state.acquire(bytes, policy, label)?;
        {
            let mut stats = self.stats.lock();
            stats.local_acquires += 1;
            if acquired.parked {
                stats.parked += 1;
            }
        }
        Ok(BlockLease {
            id: acquired.id,
            home: self.state.node,
            bytes,
            manager: Arc::clone(&self.state),
            released: false,
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> BlockManagerStats {
        *self.stats.lock()
    }
}

/// The set of block managers of the whole server — one per memory node — plus
/// the remote-acquisition protocol between them.
#[derive(Debug)]
pub struct BlockManagerSet {
    managers: Vec<Arc<BlockManager>>,
}

impl BlockManagerSet {
    /// Build one manager per node with `arena_bytes` bytes of staging each.
    pub fn new(nodes: &[MemoryNodeId], arena_bytes: u64) -> Self {
        Self {
            managers: nodes.iter().map(|&n| Arc::new(BlockManager::new(n, arena_bytes))).collect(),
        }
    }

    /// The manager local to `node`.
    pub fn manager(&self, node: MemoryNodeId) -> Result<&Arc<BlockManager>> {
        self.managers
            .iter()
            .find(|m| m.node() == node)
            .ok_or_else(|| HetError::Memory(format!("no block manager for {node}")))
    }

    /// Acquire `bytes` of staging that must live on `target`, on behalf of a
    /// pipeline whose local node is `local`. Local requests go straight to
    /// the arena; remote requests are served from `local`'s cache of `target`
    /// leases, refilled in batches of up to [`REMOTE_BATCH`] (prefetching
    /// stops while the remote arena is more than half occupied, so batching
    /// never hoards the bytes other producers are parked on).
    pub fn acquire(
        &self,
        local: MemoryNodeId,
        target: MemoryNodeId,
        bytes: u64,
        policy: ExhaustionPolicy,
    ) -> Result<BlockLease> {
        self.acquire_labeled(local, target, bytes, policy, ANON_HOLDER)
    }

    /// Like [`Self::acquire`], but records `label` as the lease's holder for
    /// the Park-timeout top-holders diagnostic.
    pub fn acquire_labeled(
        &self,
        local: MemoryNodeId,
        target: MemoryNodeId,
        bytes: u64,
        policy: ExhaustionPolicy,
        label: &str,
    ) -> Result<BlockLease> {
        if local == target {
            let mgr = self.manager(local)?;
            return match mgr.acquire_local_labeled(bytes, ExhaustionPolicy::Error, label) {
                Ok(lease) => Ok(lease),
                Err(_) if matches!(policy, ExhaustionPolicy::Park(_)) => {
                    // Before parking, call in the batched *release* half of
                    // the protocol: leases idling in other nodes' caches of
                    // this arena go home, so a producer never waits on bytes
                    // that are merely stranded in a prefetch cache.
                    self.reclaim_cached_for(target);
                    mgr.acquire_local_labeled(bytes, policy, label)
                }
                Err(e) => Err(e),
            };
        }
        let local_mgr = self.manager(local)?;
        let target_mgr = self.manager(target)?;
        {
            let mut cache = local_mgr.remote_cache.lock();
            if let Some(leases) = cache.get_mut(&target) {
                // Best fit: the smallest cached lease covering the request.
                let fit = leases
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.bytes() >= bytes)
                    .min_by_key(|(_, l)| l.bytes())
                    .map(|(i, _)| i);
                if let Some(i) = fit {
                    let lease = leases.swap_remove(i);
                    local_mgr.stats.lock().remote_cache_hits += 1;
                    return Ok(lease);
                }
            }
        }
        // Cache miss: one "small task launched to the remote node". The first
        // lease may park per `policy`; the rest of the batch is opportunistic
        // and never waits.
        let first = match target_mgr.state.acquire(bytes, ExhaustionPolicy::Error, label) {
            Ok(first) => first,
            Err(_) if matches!(policy, ExhaustionPolicy::Park(_)) => {
                self.reclaim_cached_for(target);
                target_mgr.state.acquire(bytes, policy, label)?
            }
            Err(e) => return Err(e),
        };
        let extras = target_mgr.state.try_take_extra(REMOTE_BATCH - 1, bytes, label);
        {
            let mut stats = local_mgr.stats.lock();
            stats.remote_batches += 1;
            if first.parked {
                stats.parked += 1;
            }
        }
        if !extras.is_empty() {
            let leases: Vec<BlockLease> = extras
                .into_iter()
                .map(|id| BlockLease {
                    id,
                    home: target,
                    bytes,
                    manager: Arc::clone(&target_mgr.state),
                    released: false,
                })
                .collect();
            local_mgr.remote_cache.lock().entry(target).or_default().extend(leases);
        }
        Ok(BlockLease {
            id: first.id,
            home: target,
            bytes,
            manager: Arc::clone(&target_mgr.state),
            released: false,
        })
    }

    /// Total bytes still available across all arenas.
    pub fn total_available_bytes(&self) -> u64 {
        self.managers.iter().map(|m| m.available_bytes()).sum()
    }

    /// Per-node peak leased bytes, in node order — the observability hook the
    /// staging-invariant tests assert against.
    pub fn peaks(&self) -> Vec<(MemoryNodeId, u64)> {
        self.managers.iter().map(|m| (m.node(), m.peak_leased_bytes())).collect()
    }

    /// Bytes currently leased across every node's arena. After an execution
    /// has dropped its handles and flushed the remote caches this must be
    /// zero — the fault-invariant suite's leak check: no recovery path may
    /// strand a lease.
    pub fn leased_bytes_total(&self) -> u64 {
        self.managers.iter().map(|m| m.leased_bytes()).sum()
    }

    /// Drop every cached remote lease, returning the bytes to their home
    /// arenas (used when a query finishes or fails while leases sit prefetched
    /// in caches).
    pub fn flush_remote_caches(&self) {
        for m in &self.managers {
            m.remote_cache.lock().clear();
        }
    }

    /// Return every cached lease homed on `target` to its arena — the batched
    /// release half of the remote protocol, invoked before an acquisition
    /// parks so prefetched-but-idle bytes cannot starve a live producer.
    fn reclaim_cached_for(&self, target: MemoryNodeId) {
        for m in &self.managers {
            m.remote_cache.lock().remove(&target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const KB: u64 = 1024;

    fn nodes() -> Vec<MemoryNodeId> {
        (0..4).map(MemoryNodeId::new).collect()
    }

    #[test]
    fn local_acquire_and_release_cycle_in_bytes() {
        let mgr = BlockManager::new(MemoryNodeId::new(0), 2 * KB);
        assert_eq!(mgr.available_bytes(), 2 * KB);
        let a = mgr.acquire_local(KB, ExhaustionPolicy::Error).unwrap();
        let b = mgr.acquire_local(KB, ExhaustionPolicy::Error).unwrap();
        assert_eq!(mgr.available_bytes(), 0);
        assert_eq!(mgr.leased_bytes(), 2 * KB);
        assert!(mgr.acquire_local(1, ExhaustionPolicy::Error).is_err());
        drop(a);
        assert_eq!(mgr.available_bytes(), KB);
        assert_eq!(b.bytes(), KB);
        b.release();
        assert_eq!(mgr.available_bytes(), 2 * KB);
        assert_eq!(mgr.stats().local_acquires, 2);
        // Peak reflects the high-water mark, not the current state.
        assert_eq!(mgr.peak_leased_bytes(), 2 * KB);
    }

    #[test]
    fn large_blocks_count_for_more() {
        let mgr = BlockManager::new(MemoryNodeId::new(0), 10 * KB);
        let _small = mgr.acquire_local(KB, ExhaustionPolicy::Error).unwrap();
        let _large = mgr.acquire_local(8 * KB, ExhaustionPolicy::Error).unwrap();
        assert_eq!(mgr.available_bytes(), KB);
        // A second large block does not fit even though two handles would.
        assert!(mgr.acquire_local(8 * KB, ExhaustionPolicy::Error).is_err());
        assert!((mgr.occupancy() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn lease_ids_are_unique() {
        let mgr = BlockManager::new(MemoryNodeId::new(0), 10 * KB);
        let a = mgr.acquire_local(KB, ExhaustionPolicy::Error).unwrap();
        let b = mgr.acquire_local(KB, ExhaustionPolicy::Error).unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.home(), MemoryNodeId::new(0));
    }

    #[test]
    fn park_policy_waits_for_released_bytes() {
        let mgr = Arc::new(BlockManager::new(MemoryNodeId::new(0), KB));
        let held = mgr.acquire_local(KB, ExhaustionPolicy::Error).unwrap();
        let waiter = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                mgr.acquire_local(KB, ExhaustionPolicy::Park(Duration::from_secs(5)))
            })
        };
        thread::sleep(Duration::from_millis(30));
        drop(held);
        let lease = waiter.join().unwrap().expect("parked acquisition succeeds after release");
        assert_eq!(lease.bytes(), KB);
        assert_eq!(mgr.stats().parked, 1, "the waiter parked once");
    }

    #[test]
    fn park_policy_times_out_instead_of_hanging() {
        let mgr = BlockManager::new(MemoryNodeId::new(0), KB);
        let _held = mgr.acquire_local(KB, ExhaustionPolicy::Error).unwrap();
        let err =
            mgr.acquire_local(KB, ExhaustionPolicy::Park(Duration::from_millis(30))).unwrap_err();
        assert_eq!(err.category(), "memory");
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn park_timeout_names_the_top_holders_by_bytes() {
        let mgr = BlockManager::new(MemoryNodeId::new(0), 10 * KB);
        // Four labels; "stage1/slot0" holds the most bytes across two leases.
        let _a =
            mgr.acquire_local_labeled(3 * KB, ExhaustionPolicy::Error, "stage1/slot0").unwrap();
        let _b =
            mgr.acquire_local_labeled(2 * KB, ExhaustionPolicy::Error, "stage1/slot0").unwrap();
        let _c = mgr.acquire_local_labeled(3 * KB, ExhaustionPolicy::Error, "fault:burst").unwrap();
        let _d =
            mgr.acquire_local_labeled(3 * KB / 2, ExhaustionPolicy::Error, "stage0/pump").unwrap();
        let _e = mgr.acquire_local(KB / 2, ExhaustionPolicy::Error).unwrap();
        let err = mgr
            .acquire_local_labeled(KB, ExhaustionPolicy::Park(Duration::from_millis(20)), "me")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("top holders by bytes"), "{msg}");
        // Only the top TOP_HOLDERS_REPORTED labels are named, ranked by
        // total held bytes; the smallest holder is omitted.
        assert!(msg.contains(&format!("stage1/slot0:{}", 5 * KB)), "{msg}");
        assert!(msg.contains(&format!("fault:burst:{}", 3 * KB)), "{msg}");
        assert!(msg.contains(&format!("stage0/pump:{}", 3 * KB / 2)), "{msg}");
        assert!(!msg.contains(ANON_HOLDER), "{msg}");
        let pos_big = msg.find("stage1/slot0").unwrap();
        let pos_mid = msg.find("fault:burst").unwrap();
        assert!(pos_big < pos_mid, "holders must rank by bytes: {msg}");
        // Released leases leave the registry: once everything except the
        // anonymous lease is dropped, a fresh timeout names only "anon".
        drop((_a, _b, _c, _d));
        let err = mgr
            .acquire_local_labeled(10 * KB, ExhaustionPolicy::Park(Duration::from_millis(20)), "me")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(&format!("{ANON_HOLDER}:{}", KB / 2)), "{msg}");
        assert!(!msg.contains("stage1/slot0"), "released leases must leave the registry: {msg}");
    }

    #[test]
    fn oversized_requests_fail_under_both_policies() {
        let mgr = BlockManager::new(MemoryNodeId::new(0), KB);
        assert!(mgr.acquire_local(2 * KB, ExhaustionPolicy::Error).is_err());
        // A request that can never fit must not park until the timeout.
        let start = Instant::now();
        assert!(mgr
            .acquire_local(2 * KB, ExhaustionPolicy::Park(Duration::from_secs(30)))
            .is_err());
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn remote_acquisition_uses_batching_and_cache() {
        let set = BlockManagerSet::new(&nodes(), 64 * KB);
        let local = MemoryNodeId::new(0);
        let remote = MemoryNodeId::new(2);
        // First remote acquire triggers one batch round-trip.
        let _a = set.acquire(local, remote, KB, ExhaustionPolicy::Error).unwrap();
        let stats = set.manager(local).unwrap().stats();
        assert_eq!(stats.remote_batches, 1);
        assert_eq!(stats.remote_cache_hits, 0);
        // The next REMOTE_BATCH-1 same-size acquisitions come from the cache.
        let mut leases = Vec::new();
        for _ in 0..(REMOTE_BATCH - 1) {
            leases.push(set.acquire(local, remote, KB, ExhaustionPolicy::Error).unwrap());
        }
        let stats = set.manager(local).unwrap().stats();
        assert_eq!(stats.remote_batches, 1);
        assert_eq!(stats.remote_cache_hits, (REMOTE_BATCH - 1) as u64);
        // One more acquisition starts a new batch.
        let _b = set.acquire(local, remote, KB, ExhaustionPolicy::Error).unwrap();
        assert_eq!(set.manager(local).unwrap().stats().remote_batches, 2);
        // A larger request cannot be served by the cached 1 KB leases…
        let _c = set.acquire(local, remote, 2 * KB, ExhaustionPolicy::Error).unwrap();
        assert_eq!(set.manager(local).unwrap().stats().remote_batches, 3);
        // …but a smaller one reuses them (best fit), so tail blocks never
        // strand prefetched bytes.
        let hits_before = set.manager(local).unwrap().stats().remote_cache_hits;
        let small = set.acquire(local, remote, KB / 2, ExhaustionPolicy::Error).unwrap();
        assert_eq!(set.manager(local).unwrap().stats().remote_batches, 3);
        assert_eq!(set.manager(local).unwrap().stats().remote_cache_hits, hits_before + 1);
        assert_eq!(small.bytes(), KB, "the reused lease keeps its own size");
    }

    #[test]
    fn remote_leases_come_from_the_remote_arena() {
        let set = BlockManagerSet::new(&nodes(), 64 * KB);
        let local = MemoryNodeId::new(0);
        let remote = MemoryNodeId::new(3);
        let lease = set.acquire(local, remote, KB, ExhaustionPolicy::Error).unwrap();
        assert_eq!(lease.home(), remote);
        // The remote arena lost a batch of leases; the local arena is untouched.
        assert_eq!(set.manager(local).unwrap().available_bytes(), 64 * KB);
        assert_eq!(set.manager(remote).unwrap().available_bytes(), (64 - REMOTE_BATCH as u64) * KB);
        set.flush_remote_caches();
        drop(lease);
        assert_eq!(set.manager(remote).unwrap().available_bytes(), 64 * KB);
    }

    #[test]
    fn batching_never_hoards_a_nearly_dry_arena() {
        // Remote arena of 4 KB: a 1 KB acquisition succeeds, but the
        // opportunistic prefetch must stop at the 50%-occupancy guard instead
        // of caching the last free bytes.
        let set = BlockManagerSet::new(&nodes(), 4 * KB);
        let local = MemoryNodeId::new(0);
        let remote = MemoryNodeId::new(1);
        let _lease = set.acquire(local, remote, KB, ExhaustionPolicy::Error).unwrap();
        let remaining = set.manager(remote).unwrap().available_bytes();
        assert!(remaining >= 2 * KB, "prefetch left only {remaining} bytes on the remote arena");
    }

    #[test]
    fn exhausted_remote_arena_reports_memory_error() {
        let set = BlockManagerSet::new(&nodes(), 0);
        let err = set
            .acquire(MemoryNodeId::new(0), MemoryNodeId::new(1), 1, ExhaustionPolicy::Error)
            .unwrap_err();
        assert_eq!(err.category(), "memory");
        let err = set
            .acquire(MemoryNodeId::new(0), MemoryNodeId::new(0), 1, ExhaustionPolicy::Error)
            .unwrap_err();
        assert_eq!(err.category(), "memory");
    }

    #[test]
    fn unknown_node_is_an_error() {
        let set = BlockManagerSet::new(&nodes(), 4 * KB);
        assert!(set.manager(MemoryNodeId::new(9)).is_err());
        assert!(set
            .acquire(MemoryNodeId::new(9), MemoryNodeId::new(0), 1, ExhaustionPolicy::Error)
            .is_err());
    }

    #[test]
    fn total_available_tracks_outstanding_leases() {
        let set = BlockManagerSet::new(&nodes(), 4 * KB);
        assert_eq!(set.total_available_bytes(), 16 * KB);
        let lease = set
            .acquire(MemoryNodeId::new(1), MemoryNodeId::new(1), KB, ExhaustionPolicy::Error)
            .unwrap();
        assert_eq!(set.total_available_bytes(), 15 * KB);
        drop(lease);
        assert_eq!(set.total_available_bytes(), 16 * KB);
        assert_eq!(set.peaks()[1], (MemoryNodeId::new(1), KB));
    }

    #[test]
    fn concurrent_acquires_respect_capacity_and_track_peak() {
        let mgr = Arc::new(BlockManager::new(MemoryNodeId::new(0), 100 * KB));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mgr = Arc::clone(&mgr);
                thread::spawn(move || {
                    for _ in 0..50 {
                        if let Ok(lease) =
                            mgr.acquire_local(KB, ExhaustionPolicy::Park(Duration::from_secs(5)))
                        {
                            drop(lease);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.available_bytes(), 100 * KB);
        assert!(mgr.peak_leased_bytes() <= 100 * KB);
        assert!(mgr.peak_leased_bytes() >= KB);
    }
}
