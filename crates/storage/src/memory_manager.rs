//! Memory managers: operator *state* memory.
//!
//! §4.3 distinguishes state memory (hash-join hash tables, aggregation
//! accumulators) from staging memory (blocks). State memory is served by one
//! memory manager per memory node, and "requests by the pipelines are always
//! served by their closest (appropriate) manager". The managers here track
//! capacity per node (socket DRAM is large, GPU device memory is 8 GB), so a
//! build side that does not fit on the GPU fails the same way it would on the
//! paper's hardware.

use hetex_common::{HetError, MemoryNodeId, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// One state allocation; freed when dropped.
#[derive(Debug)]
pub struct StateAllocation {
    bytes: u64,
    node: MemoryNodeId,
    used: Arc<Mutex<u64>>,
    released: bool,
}

impl StateAllocation {
    /// Size of the allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The node the state lives on.
    pub fn node(&self) -> MemoryNodeId {
        self.node
    }
}

impl Drop for StateAllocation {
    fn drop(&mut self) {
        if !self.released {
            *self.used.lock() -= self.bytes;
            self.released = true;
        }
    }
}

/// The state-memory manager of one memory node.
#[derive(Debug)]
pub struct MemoryManager {
    node: MemoryNodeId,
    capacity: u64,
    used: Arc<Mutex<u64>>,
}

impl MemoryManager {
    /// A manager for `node` with `capacity` bytes of state memory.
    pub fn new(node: MemoryNodeId, capacity: u64) -> Self {
        Self { node, capacity, used: Arc::new(Mutex::new(0)) }
    }

    /// The node this manager serves.
    pub fn node(&self) -> MemoryNodeId {
        self.node
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        *self.used.lock()
    }

    /// Allocate `bytes` of state memory on this node.
    pub fn alloc(&self, bytes: u64) -> Result<StateAllocation> {
        let mut used = self.used.lock();
        if *used + bytes > self.capacity {
            return Err(HetError::Memory(format!(
                "state memory exhausted on {}: requested {bytes} B, {} of {} B in use",
                self.node, *used, self.capacity
            )));
        }
        *used += bytes;
        Ok(StateAllocation {
            bytes,
            node: self.node,
            used: Arc::clone(&self.used),
            released: false,
        })
    }
}

/// One memory manager per node of the server.
#[derive(Debug)]
pub struct MemoryManagerSet {
    managers: Vec<Arc<MemoryManager>>,
}

impl MemoryManagerSet {
    /// Build managers from `(node, capacity_bytes)` pairs.
    pub fn new(nodes: &[(MemoryNodeId, u64)]) -> Self {
        Self {
            managers: nodes.iter().map(|&(n, cap)| Arc::new(MemoryManager::new(n, cap))).collect(),
        }
    }

    /// The manager closest to (i.e. on) `node`.
    pub fn manager(&self, node: MemoryNodeId) -> Result<&Arc<MemoryManager>> {
        self.managers
            .iter()
            .find(|m| m.node() == node)
            .ok_or_else(|| HetError::Memory(format!("no memory manager for {node}")))
    }

    /// Allocate state on the manager local to `node`.
    pub fn alloc_on(&self, node: MemoryNodeId, bytes: u64) -> Result<StateAllocation> {
        self.manager(node)?.alloc(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_drop_round_trip() {
        let mgr = MemoryManager::new(MemoryNodeId::new(0), 1000);
        let a = mgr.alloc(600).unwrap();
        assert_eq!(mgr.used(), 600);
        assert_eq!(a.bytes(), 600);
        assert_eq!(a.node(), MemoryNodeId::new(0));
        assert!(mgr.alloc(500).is_err());
        drop(a);
        assert_eq!(mgr.used(), 0);
        assert!(mgr.alloc(500).is_ok());
    }

    #[test]
    fn set_routes_to_local_manager() {
        let set =
            MemoryManagerSet::new(&[(MemoryNodeId::new(0), 1000), (MemoryNodeId::new(2), 100)]);
        let a = set.alloc_on(MemoryNodeId::new(2), 80).unwrap();
        assert_eq!(a.node(), MemoryNodeId::new(2));
        assert!(set.alloc_on(MemoryNodeId::new(2), 80).is_err());
        assert!(set.alloc_on(MemoryNodeId::new(0), 80).is_ok());
        assert!(set.alloc_on(MemoryNodeId::new(7), 1).is_err());
    }

    #[test]
    fn gpu_sized_manager_rejects_oversized_hash_table() {
        // A GPU node has 8 GB; a 12 GB build side must be rejected.
        let set = MemoryManagerSet::new(&[(MemoryNodeId::new(3), 8 * (1 << 30))]);
        let err = set.alloc_on(MemoryNodeId::new(3), 12 * (1 << 30)).unwrap_err();
        assert_eq!(err.category(), "memory");
    }
}
