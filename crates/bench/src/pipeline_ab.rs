//! A/B harness: pipelined vs stage-at-a-time execution.
//!
//! Runs the same compiled plans under both
//! [`ExecutionMode`](hetex_common::ExecutionMode)s and reports simulated
//! end-to-end times, the improvement, and whether the result rows were
//! byte-identical. Covers the join+reduce microbenchmark plan (the
//! acceptance workload: 200k fact rows, `EngineConfig::hybrid(8, 2)`) and the
//! SSB queries. `cargo run --release -p hetex-bench --bin pipeline_ab` emits
//! `BENCH_pipeline.json`.

use crate::workload::SsbWorkload;
use hetex_common::{ColumnData, DataType, EngineConfig, ExecutionMode, Result};
use hetex_core::RelNode;
use hetex_engine::Proteus;
use hetex_jit::{AggSpec, Expr};
use hetex_storage::TableBuilder;
use hetex_topology::ServerTopology;
use std::sync::Arc;

/// One A/B measurement.
#[derive(Debug, Clone)]
pub struct AbRow {
    /// Workload label (e.g. `join_reduce_200k_hybrid_8_2` or `Q1.1`).
    pub workload: String,
    /// Simulated seconds in pipelined mode.
    pub pipelined_s: f64,
    /// Simulated seconds in stage-at-a-time mode.
    pub stage_at_a_time_s: f64,
    /// Whether both modes produced byte-identical result rows.
    pub rows_identical: bool,
}

impl AbRow {
    /// Relative improvement of pipelined over stage-at-a-time, in percent.
    pub fn improvement_pct(&self) -> f64 {
        if self.stage_at_a_time_s <= 0.0 {
            return 0.0;
        }
        (1.0 - self.pipelined_s / self.stage_at_a_time_s) * 100.0
    }
}

/// The full A/B report.
#[derive(Debug, Clone, Default)]
pub struct AbReport {
    /// Every measured workload.
    pub rows: Vec<AbRow>,
}

impl AbReport {
    /// Look up a row by workload label.
    pub fn get(&self, workload: &str) -> Option<&AbRow> {
        self.rows.iter().find(|r| r.workload == workload)
    }

    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"pipelined_vs_stage_at_a_time\",\n");
        out.push_str("  \"metric\": \"simulated_seconds\",\n  \"workloads\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"pipelined_s\": {:.9}, \
                 \"stage_at_a_time_s\": {:.9}, \"improvement_pct\": {:.2}, \
                 \"rows_identical\": {}}}{}\n",
                row.workload,
                row.pipelined_s,
                row.stage_at_a_time_s,
                row.improvement_pct(),
                row.rows_identical,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Build the join+reduce A/B engine: a 200k-row (by default) fact table
/// joined against a dimension sized at half the fact side — large enough
/// that the build chain is a real pipeline stage, not a rounding error.
pub fn join_reduce_engine(fact_rows: usize) -> Result<(Proteus, RelNode)> {
    join_reduce_engine_on(ServerTopology::paper_server(), fact_rows)
}

/// Like [`join_reduce_engine`], on an arbitrary topology — the work-stealing
/// A/B uses this with a deliberately skewed server (one straggler device).
pub fn join_reduce_engine_on(
    topology: Arc<ServerTopology>,
    fact_rows: usize,
) -> Result<(Proteus, RelNode)> {
    let engine = Proteus::new(Arc::clone(&topology));
    let nodes = topology.cpu_memory_nodes();
    let dim_rows = (fact_rows / 2).max(1);
    let fact = TableBuilder::new("fact")
        .column(
            "key",
            DataType::Int32,
            ColumnData::Int32((0..fact_rows as i32).map(|i| i % dim_rows as i32).collect()),
        )
        .column("value", DataType::Int64, ColumnData::Int64((0..fact_rows as i64).collect()))
        .build(&nodes, 4096)?;
    let dim = TableBuilder::new("dim")
        .column("k", DataType::Int32, ColumnData::Int32((0..dim_rows as i32).collect()))
        .column(
            "attr",
            DataType::Int32,
            ColumnData::Int32((0..dim_rows as i32).map(|i| i % 7).collect()),
        )
        .build(&nodes, 4096)?;
    engine.register_table(fact);
    engine.register_table(dim);

    // SELECT SUM(value), COUNT(*) FROM fact JOIN dim ON key = k WHERE attr < 3
    let dim_plan = RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(3));
    let plan = RelNode::scan("fact", &["key", "value"])
        .hash_join(dim_plan, 0, 0, &[1])
        .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"]);
    Ok((engine, plan))
}

/// Run one plan under both modes and compare.
pub fn ab_compare(
    engine: &Proteus,
    plan: &RelNode,
    base: &EngineConfig,
    workload: &str,
) -> Result<AbRow> {
    let pipelined = engine
        .session()
        .execute(plan, &base.clone().with_execution_mode(ExecutionMode::Pipelined))?;
    let saat = engine
        .session()
        .execute(plan, &base.clone().with_execution_mode(ExecutionMode::StageAtATime))?;
    Ok(AbRow {
        workload: workload.to_string(),
        pipelined_s: pipelined.seconds(),
        stage_at_a_time_s: saat.seconds(),
        rows_identical: pipelined.rows == saat.rows,
    })
}

/// The acceptance workload: join+reduce over `fact_rows` fact rows on
/// `EngineConfig::hybrid(8, 2)`, with the physically small tables modeling a
/// paper-scale volume (~48 GB fact side, SSB-style dimension that scales
/// more slowly) via per-table weights — the same extrapolation every other
/// benchmark in this crate uses. Without a realistic volume the run is
/// dominated by the fixed ~10 ms router initialization overhead and the A/B
/// comparison measures nothing. This is the workload shape where the
/// stage-at-a-time materialization barrier genuinely hurts: the probe's GPU
/// transfers cannot overlap the hash build, so its simulated time pays
/// `build + transfers` where the pipelined executor pays `max` of the two.
pub fn join_reduce_ab(fact_rows: usize) -> Result<AbRow> {
    let (engine, plan) = join_reduce_engine(fact_rows)?;
    let mut config = EngineConfig::hybrid(8, 2);
    config.scale_weight = 20_000.0;
    config.block_capacity = 2048;
    let config = config.with_table_weight("dim", 2_500.0);
    ab_compare(&engine, &plan, &config, &format!("join_reduce_{}k_hybrid_8_2", fact_rows / 1000))
}

/// A/B over the SSB workload (CPU-resident, nominal SF1000 weights).
pub fn ssb_ab(physical_sf: f64) -> Result<Vec<AbRow>> {
    let workload = SsbWorkload::build(physical_sf, 1000.0, false)?;
    let mut rows = Vec::new();
    for query in &workload.queries {
        let config = workload.config(EngineConfig::hybrid(24, 2));
        rows.push(ab_compare(&workload.engine_cpu_data, &query.plan, &config, &query.name)?);
    }
    Ok(rows)
}

/// Run the whole A/B suite: the acceptance join+reduce workload plus SSB.
pub fn run_all(fact_rows: usize, physical_sf: f64) -> Result<AbReport> {
    let mut report = AbReport::default();
    report.rows.push(join_reduce_ab(fact_rows)?);
    report.rows.extend(ssb_ab(physical_sf)?);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_join_reduce_hybrid_is_20_percent_faster_pipelined() {
        // Acceptance criterion: on the multi-stage hybrid join+reduce plan
        // (200k rows, hybrid(8, 2)), pipelined mode reports simulated
        // end-to-end time >= 20% lower than stage-at-a-time mode, with
        // identical result rows.
        let row = join_reduce_ab(200_000).unwrap();
        assert!(row.rows_identical, "modes must agree on result rows");
        assert!(
            row.improvement_pct() >= 20.0,
            "pipelined {}s should be >=20% faster than stage-at-a-time {}s, got {:.1}%",
            row.pipelined_s,
            row.stage_at_a_time_s,
            row.improvement_pct()
        );
    }

    #[test]
    fn ssb_ab_modes_agree_and_pipelining_never_hurts_much() {
        let rows = ssb_ab(0.002).unwrap();
        assert_eq!(rows.len(), 13);
        for row in &rows {
            assert!(row.rows_identical, "{}: modes disagree on rows", row.workload);
            assert!(
                row.pipelined_s <= row.stage_at_a_time_s * 1.02,
                "{}: pipelined {} vs stage-at-a-time {}",
                row.workload,
                row.pipelined_s,
                row.stage_at_a_time_s
            );
        }
    }

    #[test]
    fn report_json_shape() {
        let report = AbReport {
            rows: vec![AbRow {
                workload: "w".into(),
                pipelined_s: 1.0,
                stage_at_a_time_s: 2.0,
                rows_identical: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"improvement_pct\": 50.00"));
        assert!(json.contains("\"rows_identical\": true"));
        assert!(report.get("w").is_some());
    }
}
