//! A/B harness for feedback-driven plan re-optimization: the same query
//! submitted twice to one engine, with `EngineConfig::reopt` on vs off.
//!
//! The workload is a deliberately **mis-planned** hybrid: the join+reduce
//! acceptance plan pinned to `hybrid(8,2)` on a paper server whose second
//! GPU is a hidden 8× straggler, with calibration *disabled* (static
//! routing keeps feeding the straggler — the PR 4 behaviour) and stealing
//! disabled, so nothing below the plan can rescue the run. The first
//! submission measures the damage; the reoptimizer distills its feedback
//! (observed-slowdown EWMAs, per-stage row counts, transfer and
//! control-plane traffic) into the engine's feedback cache, and the second
//! submission is re-planned from those measurements — the search drops the
//! straggler GPU and the run recovers ≥ 20% of simulated time with
//! byte-identical rows.
//!
//! The control leg runs the identical double submission with
//! `ReoptConfig::disabled()`: no rewrite may be applied and the second run
//! must behave like the first (the default-off bit-identity the
//! differential suite pins on random plans).
//!
//! `cargo run --release -p hetex-bench --bin reopt_ab [out_dir]` emits
//! `BENCH_reopt.json`.

use crate::pipeline_ab::join_reduce_engine_on;
use hetex_common::config::ReoptConfig;
use hetex_common::{CalibrationConfig, EngineConfig, Result, StealPolicy};
use hetex_topology::ServerTopology;

/// Hidden slowdown factor of the straggler GPU — the same skew `calib_ab`
/// and `steal_ab` use, so all three defences are comparable.
pub const SKEW_FACTOR: f64 = 8.0;

/// One first-run vs second-run measurement.
#[derive(Debug, Clone)]
pub struct ReoptAbRow {
    /// Workload label.
    pub workload: String,
    /// Simulated seconds of the first (cold-cache) submission.
    pub first_s: f64,
    /// Simulated seconds of the second submission of the same plan.
    pub second_s: f64,
    /// Whether both submissions produced byte-identical result rows.
    pub rows_identical: bool,
    /// The placement the reoptimizer substituted on the second run
    /// (`QueryStats::reopt_applied`); `None` when no rewrite happened.
    pub replanned_to: Option<String>,
    /// Largest observed-slowdown EWMA of any device in the first run.
    pub straggler_ewma: f64,
}

impl ReoptAbRow {
    /// Relative recovery of the second run over the first, in percent
    /// (negative = the second run was slower).
    pub fn recovery_pct(&self) -> f64 {
        if self.first_s <= 0.0 {
            return 0.0;
        }
        (1.0 - self.second_s / self.first_s) * 100.0
    }
}

/// The full re-optimization A/B report.
#[derive(Debug, Clone, Default)]
pub struct ReoptAbReport {
    /// Every measured workload.
    pub rows: Vec<ReoptAbRow>,
}

impl ReoptAbReport {
    /// Look up a row by workload label.
    pub fn get(&self, workload: &str) -> Option<&ReoptAbRow> {
        self.rows.iter().find(|r| r.workload == workload)
    }

    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"reopt_ab\",\n");
        out.push_str("  \"metric\": \"simulated_seconds\",\n  \"workloads\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let replanned = match &row.replanned_to {
                Some(label) => format!("\"{label}\""),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"first_s\": {:.9}, \"second_s\": {:.9}, \
                 \"recovery_pct\": {:.2}, \"rows_identical\": {}, \
                 \"replanned_to\": {}, \"straggler_ewma\": {:.2}}}{}\n",
                row.workload,
                row.first_s,
                row.second_s,
                row.recovery_pct(),
                row.rows_identical,
                replanned,
                row.straggler_ewma,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The mis-planned base configuration: the calib_ab acceptance setup
/// (hybrid(8,2), same scale extrapolation and block granularity, stealing
/// disabled) with **calibration disabled** too — static routing keeps
/// feeding the straggler, and only the plan-level rewrite can help.
fn base_config() -> EngineConfig {
    let mut config = EngineConfig::hybrid(8, 2);
    config.scale_weight = 20_000.0;
    config.block_capacity = 2048;
    config.steal_policy = StealPolicy::Disabled;
    config.with_table_weight("dim", 2_500.0).with_calibration(CalibrationConfig::disabled())
}

/// The paper server with its second GPU marked as a hidden straggler.
fn skewed_topology() -> Result<std::sync::Arc<ServerTopology>> {
    let topology = ServerTopology::paper_server();
    let slow_gpu = topology.gpus()[1];
    topology.with_device_slowdown(slow_gpu, SKEW_FACTOR)
}

/// Submit the same plan twice to one engine under `reopt` and measure both
/// runs.
fn double_submit(fact_rows: usize, reopt: ReoptConfig, workload: String) -> Result<ReoptAbRow> {
    let (engine, plan) = join_reduce_engine_on(skewed_topology()?, fact_rows)?;
    let config = base_config().with_reopt(reopt);
    let first = engine.session().execute(&plan, &config)?;
    let second = engine.session().execute(&plan, &config)?;
    Ok(ReoptAbRow {
        workload,
        first_s: first.seconds(),
        second_s: second.seconds(),
        rows_identical: first.rows == second.rows,
        replanned_to: second.stats.reopt_applied.clone(),
        straggler_ewma: first.stats.max_observed_slowdown(),
    })
}

/// The re-optimization leg: feedback from the first run must correct the
/// mis-planned placement on the second.
pub fn skewed_reopt_ab(fact_rows: usize) -> Result<ReoptAbRow> {
    double_submit(
        fact_rows,
        ReoptConfig::enabled(),
        format!("join_reduce_{}k_reopt_skewed_gpu_8x", fact_rows / 1000),
    )
}

/// The control leg: with re-optimization disabled the second run repeats
/// the first placement, unrewritten.
pub fn disabled_control_ab(fact_rows: usize) -> Result<ReoptAbRow> {
    double_submit(
        fact_rows,
        ReoptConfig::disabled(),
        format!("join_reduce_{}k_reopt_off_skewed_gpu_8x", fact_rows / 1000),
    )
}

/// Of `runs` repeated measurements, the one with the median recovery — when
/// the straggler's EWMA crosses the observation threshold is wall-clock
/// sensitive, so the acceptance bars gate the typical outcome.
fn median_by_recovery(mut runs: Vec<ReoptAbRow>) -> ReoptAbRow {
    runs.sort_by(|a, b| {
        a.recovery_pct().partial_cmp(&b.recovery_pct()).unwrap_or(std::cmp::Ordering::Equal)
    });
    runs.swap_remove(runs.len() / 2)
}

/// Run the A/B suite: the re-optimization leg plus the disabled control,
/// each reported as the median of three measurements.
pub fn run_all(fact_rows: usize) -> Result<ReoptAbReport> {
    let reopt =
        median_by_recovery((0..3).map(|_| skewed_reopt_ab(fact_rows)).collect::<Result<Vec<_>>>()?);
    let control = median_by_recovery(
        (0..3).map(|_| disabled_control_ab(fact_rows)).collect::<Result<Vec<_>>>()?,
    );
    Ok(ReoptAbReport { rows: vec![reopt, control] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_run_corrects_the_misplanned_hybrid() {
        // Single-run sanity bar at 10%: the full ≥ 20% acceptance bar is
        // enforced by the `reopt_ab` bin on the median of three runs.
        let row = skewed_reopt_ab(200_000).unwrap();
        assert!(row.rows_identical, "re-optimization must not change results");
        assert!(
            row.straggler_ewma > 1.5,
            "the hidden straggler was never observed: EWMA {}",
            row.straggler_ewma
        );
        let replanned = row.replanned_to.as_deref().expect("the second run must be rewritten");
        assert!(
            !replanned.contains("(8,2)"),
            "the rewrite must change the mis-planned hybrid(8,2): {replanned}"
        );
        assert!(
            row.recovery_pct() >= 10.0,
            "first {}s vs second {}s: recovery {:.1}% < 10%",
            row.first_s,
            row.second_s,
            row.recovery_pct()
        );
    }

    #[test]
    fn disabled_control_never_rewrites() {
        let row = disabled_control_ab(200_000).unwrap();
        assert!(row.rows_identical);
        assert!(
            row.replanned_to.is_none(),
            "ReoptConfig::disabled() must never rewrite: {:?}",
            row.replanned_to
        );
        // Same placement both runs: any delta is simulator noise on a gated
        // plan, bounded loosely here (the bin gates the median at ±5%).
        assert!(
            row.recovery_pct().abs() <= 10.0,
            "reopt-off runs diverged: first {}s vs second {}s",
            row.first_s,
            row.second_s
        );
    }

    #[test]
    fn report_json_shape() {
        let report = ReoptAbReport {
            rows: vec![ReoptAbRow {
                workload: "w".into(),
                first_s: 1.0,
                second_s: 0.7,
                rows_identical: true,
                replanned_to: Some("cpu_only(24)".into()),
                straggler_ewma: 7.5,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"recovery_pct\": 30.00"));
        assert!(json.contains("\"replanned_to\": \"cpu_only(24)\""));
        assert!(json.contains("\"straggler_ewma\": 7.50"));
        assert!(report.get("w").is_some());
    }
}
