//! Plan lint: compile every bench and SSB plan and run the static analyzer
//! (`hetex-analysis`) over the result — no execution, no data movement.
//!
//! Usage: `plan_lint` — prints a per-plan markdown table and exits 1 when
//! any plan draws an error-severity diagnostic (warnings are reported but do
//! not fail the run; the engine's own `AnalysisMode::Deny` gate mirrors this
//! split at execution time). When `GITHUB_STEP_SUMMARY` is set (a GitHub
//! Actions step), the table is appended to the workflow summary page.
//!
//! The linted corpus is every plan a bench bin compiles: the thirteen SSB
//! queries, the two microbenchmark plans (sum, join) and the pipeline A/B
//! join+reduce plan, each under the CPU-only, GPU-only and hybrid execution
//! targets the figures use, the serving configuration, and the `reopt`
//! target — an enabled `ReoptConfig` whose **entire searched plan space**
//! (every candidate placement the reoptimizer can emit) is linted, since
//! the engine re-verifies a feedback rewrite before dispatch and an
//! error-severity candidate would turn that rewrite into a runtime refusal.

use hetex_analysis::analyze;
use hetex_bench::micro::{MicroQuery, MicroWorkload};
use hetex_bench::SsbWorkload;
use hetex_common::{EngineConfig, ReoptConfig, ServeConfig};
use hetex_core::{compile, parallelize, RelNode};
use hetex_topology::ServerTopology;
use std::process::exit;
use std::sync::Arc;

/// One linted (plan, config) combination.
struct LintRow {
    plan: String,
    target: &'static str,
    stages: usize,
    errors: usize,
    warnings: usize,
    /// Rendered diagnostics, empty for a clean plan.
    detail: String,
}

/// Lint one plan under one config; `None` when the combination does not
/// compile (that is a hard failure too — the lint exists to prove plans are
/// executable).
fn lint(
    name: &str,
    target: &'static str,
    plan: &RelNode,
    config: &EngineConfig,
    topology: &Arc<ServerTopology>,
) -> Result<LintRow, String> {
    config.validate().map_err(|e| format!("{name} [{target}]: {e}"))?;
    let het = parallelize(plan, config).map_err(|e| format!("{name} [{target}]: {e}"))?;
    hetex_core::traits::check_relational_requirements(&het)
        .map_err(|e| format!("{name} [{target}]: {e}"))?;
    let graph = compile(&het, config, topology).map_err(|e| format!("{name} [{target}]: {e}"))?;
    let report = analyze(&graph, config, topology);
    Ok(LintRow {
        plan: name.to_string(),
        target,
        stages: graph.stages.len(),
        errors: report.errors().count(),
        warnings: report.warnings().count(),
        detail: report.render(),
    })
}

/// The three execution targets the figure harnesses sweep, the serving
/// configuration `serve_ab` runs under (serving enabled: the lint proves a
/// plan admitted by the `QueryServer` also validates and analyzes cleanly),
/// and the `reopt` target whose searched plan space is linted candidate by
/// candidate.
fn targets() -> [(&'static str, EngineConfig); 5] {
    [
        ("cpu", EngineConfig::cpu_only(8)),
        ("gpu", EngineConfig::gpu_only(2)),
        ("hybrid", EngineConfig::hybrid(8, 2)),
        ("serve", EngineConfig::hybrid(6, 1).with_serve(ServeConfig::serving())),
        ("reopt", EngineConfig::hybrid(8, 2).with_reopt(ReoptConfig::enabled())),
    ]
}

/// Lint the reoptimizer's full searched plan space for one plan: every
/// candidate placement `candidates` can emit, applied to the submitted
/// configuration (which `analyze` also vets via `check_reopt`, HX040/HX041).
/// The space collapses into one table row — stages of the widest candidate,
/// summed diagnostics, per-candidate detail for anything non-clean.
fn lint_search_space(
    name: &str,
    plan: &RelNode,
    config: &EngineConfig,
    topology: &Arc<ServerTopology>,
) -> Result<LintRow, String> {
    let space = hetex_core::reopt::candidates(config, topology);
    let mut stages = 0;
    let mut errors = 0;
    let mut warnings = 0;
    let mut detail = String::new();
    for candidate in &space {
        let emitted = candidate.apply(config);
        let row = lint(name, "reopt", plan, &emitted, topology)
            .map_err(|e| format!("{e} (searched candidate {})", candidate.label()))?;
        stages = stages.max(row.stages);
        errors += row.errors;
        warnings += row.warnings;
        if row.errors + row.warnings > 0 {
            detail.push_str(&format!("candidate {}:\n{}", candidate.label(), row.detail));
        }
    }
    Ok(LintRow {
        plan: format!("{name} ({} searched candidates)", space.len()),
        target: "reopt",
        stages,
        errors,
        warnings,
        detail,
    })
}

fn render_table(rows: &[LintRow]) -> String {
    let errors: usize = rows.iter().map(|r| r.errors).sum();
    let warnings: usize = rows.iter().map(|r| r.warnings).sum();
    let mut out = String::from("## Plan lint (static analysis)\n\n");
    out.push_str(&format!(
        "{} plan/target combinations analyzed — **{}** ({errors} error(s), \
         {warnings} warning(s))\n\n",
        rows.len(),
        if errors == 0 { "clean" } else { "REJECTED" },
    ));
    out.push_str("| plan | target | stages | errors | warnings | status |\n");
    out.push_str("|---|---|---:|---:|---:|---|\n");
    for row in rows {
        let status = if row.errors > 0 {
            "❌ error"
        } else if row.warnings > 0 {
            "⚠️ warning"
        } else {
            "✅ clean"
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            row.plan, row.target, row.stages, row.errors, row.warnings, status
        ));
    }
    out.push('\n');
    out
}

fn main() {
    let topology = ServerTopology::paper_server();

    // The linted corpus: every plan the bench bins compile.
    let ssb = SsbWorkload::build(0.002, 100.0, false).expect("build SSB workload");
    let micro = MicroWorkload::build(10_000).expect("build micro workload");
    let (_engine, join_reduce) =
        hetex_bench::pipeline_ab::join_reduce_engine(10_000).expect("build join+reduce plan");
    // Each plan is linted under the config its bench bin actually runs:
    // the workload builders size block capacity (and thus the staging
    // floors) to the generated data, so the lint sees the real regime.
    type ConfigFn = fn(&SsbWorkload, &MicroWorkload, EngineConfig) -> EngineConfig;
    let mut corpus: Vec<(String, RelNode, ConfigFn)> = Vec::new();
    fn ssb_cfg(ssb: &SsbWorkload, _m: &MicroWorkload, base: EngineConfig) -> EngineConfig {
        ssb.config(base)
    }
    fn micro_cfg(_s: &SsbWorkload, micro: &MicroWorkload, base: EngineConfig) -> EngineConfig {
        micro.config(base, micro.physical_probe_bytes)
    }
    fn plain_cfg(_s: &SsbWorkload, _m: &MicroWorkload, base: EngineConfig) -> EngineConfig {
        base
    }
    for query in &ssb.queries {
        corpus.push((format!("ssb/{}", query.name), query.plan.clone(), ssb_cfg));
    }
    for query in [MicroQuery::Sum, MicroQuery::Join] {
        corpus.push((format!("micro/{}", query.label()), micro.plan(query), micro_cfg));
    }
    corpus.push(("pipeline_ab/join_reduce".to_string(), join_reduce, plain_cfg));

    let mut rows: Vec<LintRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for (name, plan, cfg) in &corpus {
        for (target, base) in targets() {
            let config = cfg(&ssb, &micro, base);
            let result = if target == "reopt" {
                lint_search_space(name, plan, &config, &topology)
            } else {
                lint(name, target, plan, &config, &topology)
            };
            match result {
                Ok(row) => rows.push(row),
                Err(e) => failures.push(e),
            }
        }
    }

    let table = render_table(&rows);
    print!("{table}");
    for row in rows.iter().filter(|r| r.errors + r.warnings > 0) {
        println!("--- {} [{}] ---\n{}", row.plan, row.target, row.detail);
    }
    for failure in &failures {
        eprintln!("compile failure: {failure}");
    }

    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        match std::fs::OpenOptions::new().create(true).append(true).open(&summary_path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(table.as_bytes()) {
                    eprintln!("could not append step summary to {summary_path}: {e}");
                }
            }
            Err(e) => eprintln!("could not open step summary {summary_path}: {e}"),
        }
    }

    let errors: usize = rows.iter().map(|r| r.errors).sum();
    if errors > 0 || !failures.is_empty() {
        eprintln!(
            "plan lint failed: {errors} error diagnostic(s), {} compile failure(s)",
            failures.len()
        );
        exit(1);
    }
    println!("plan lint passed: {} combinations, 0 error diagnostics", rows.len());
}
