//! Emit `BENCH_steal.json`: pipelined execution with adaptive re-routing
//! (work stealing) on vs off, on a deliberately skewed hybrid workload (one
//! hidden 8× straggler GPU) plus the unskewed control.
//!
//! Usage: `steal_ab [out_dir]` — writes `BENCH_steal.json` into `out_dir`
//! (default: the current directory).

use hetex_bench::steal_ab;

fn main() {
    let report = steal_ab::run_all(200_000).expect("steal A/B suite failed");
    let mut ok = true;
    for row in &report.rows {
        println!(
            "{:<32} steal {:>9.4}s  no-steal {:>9.4}s  improvement {:>6.2}%  stolen {:>4}  rows_identical {}",
            row.workload,
            row.steal_s,
            row.no_steal_s,
            row.improvement_pct(),
            row.blocks_stolen,
            row.rows_identical
        );
        ok &= row.rows_identical;
        if row.workload.contains("skewed_gpu") {
            ok &= row.improvement_pct() >= 10.0 && row.blocks_stolen > 0;
        } else {
            ok &= row.improvement_pct() >= -2.0;
        }
    }
    let path =
        hetex_bench::bench_output_path(std::env::args().nth(1).map(Into::into), "BENCH_steal.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_steal.json");
    println!("wrote {}", path.display());
    if !ok {
        eprintln!(
            "work-stealing A/B failed its acceptance bar (<10% skewed gain, >2% unskewed cost, \
             or row mismatch)"
        );
        std::process::exit(1);
    }
}
