//! Emit `BENCH_kernel.json`: the vectorized (selection-vector) CPU kernel
//! vs the tuple-at-a-time legacy kernel on filter-heavy (low and high
//! selectivity), join-probe and group-by workloads.
//!
//! Usage: `kernel_ab [out_dir]` — writes `BENCH_kernel.json` into `out_dir`
//! (default: the current directory). When `GITHUB_STEP_SUMMARY` is set, a
//! per-case markdown table (including chunk size and selectivity) is
//! appended to the workflow summary.

use hetex_bench::kernel_ab;
use hetex_jit::VEC_CHUNK;

fn main() {
    let report = kernel_ab::run_all(400_000).expect("kernel A/B suite failed");
    let mut ok = true;
    for row in &report.rows {
        println!(
            "{:<32} vectorized {:>9.4}s  tuple-at-a-time {:>9.4}s  improvement {:>6.2}%  \
             selectivity {:>5.3}  chunk {}  rows_identical {}",
            row.workload,
            row.vectorized_s,
            row.tuple_at_a_time_s,
            row.improvement_pct(),
            row.selectivity,
            VEC_CHUNK,
            row.rows_identical
        );
        ok &= row.rows_identical;
        if row.workload.starts_with("filter_heavy") {
            // Acceptance bar: the vectorized kernel must be >= 20% faster on
            // the filter-heavy shapes (ISSUE 7 / ROADMAP item 3).
            ok &= row.improvement_pct() >= 20.0;
        } else {
            // Random-access-bound shapes carry no speedup bar, but
            // vectorization must never cost meaningful simulated time
            // (2% headroom for wall-clock scheduling jitter).
            ok &= row.vectorized_s <= row.tuple_at_a_time_s * kernel_ab::NO_REGRESSION_FACTOR;
        }
    }
    let path = hetex_bench::bench_output_path(
        std::env::args().nth(1).map(Into::into),
        "BENCH_kernel.json",
    );
    std::fs::write(&path, report.to_json()).expect("write BENCH_kernel.json");
    println!("wrote {}", path.display());

    // Per-case summary table for the workflow summary page: the delta table
    // the regression gate renders has no chunk/selectivity columns, so the
    // kernel A/B appends its own.
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        let mut table = String::from("## Kernel A/B (vectorized vs tuple-at-a-time)\n\n");
        table.push_str("| workload | chunk | selectivity | vectorized | tuple-at-a-time | improvement | rows identical |\n");
        table.push_str("|---|---:|---:|---:|---:|---:|---|\n");
        for row in &report.rows {
            table.push_str(&format!(
                "| {} | {} | {:.3} | {:.4}s | {:.4}s | {:+.1}% | {} |\n",
                row.workload,
                VEC_CHUNK,
                row.selectivity,
                row.vectorized_s,
                row.tuple_at_a_time_s,
                row.improvement_pct(),
                if row.rows_identical { "✅" } else { "❌" }
            ));
        }
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&summary_path)
        {
            if let Err(e) = f.write_all(table.as_bytes()) {
                eprintln!("could not append step summary to {summary_path}: {e}");
            }
        }
    }

    if !ok {
        eprintln!(
            "kernel A/B failed its acceptance bar (<20% filter-heavy gain, a slower \
             random-access shape, or row mismatch)"
        );
        std::process::exit(1);
    }
}
