//! Emit `BENCH_calib.json`: pipelined execution with the online-calibration
//! loop (observed-slowdown feedback routing + measured topology constants)
//! on vs off, with stealing disabled, on a deliberately skewed hybrid
//! workload (one hidden 8× straggler GPU) plus the unskewed control.
//!
//! Usage: `calib_ab [out_dir]` — writes `BENCH_calib.json` into `out_dir`
//! (default: the current directory).

use hetex_bench::calib_ab;

fn main() {
    let report = calib_ab::run_all(200_000).expect("calibration A/B suite failed");
    let mut ok = true;
    for row in &report.rows {
        println!(
            "{:<32} calibrated {:>9.4}s  nominal {:>9.4}s  improvement {:>6.2}%  \
             straggler_ewma {:>5.2}  ctl {:>5}ns  rows_identical {}",
            row.workload,
            row.calibrated_s,
            row.nominal_s,
            row.improvement_pct(),
            row.straggler_ewma,
            row.control_plane_ns,
            row.rows_identical
        );
        ok &= row.rows_identical;
        if row.workload.contains("skewed_gpu") {
            ok &= row.improvement_pct() >= 20.0 && row.straggler_ewma > 1.5;
        } else {
            ok &= row.improvement_pct() >= -2.0;
        }
    }
    let path =
        hetex_bench::bench_output_path(std::env::args().nth(1).map(Into::into), "BENCH_calib.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_calib.json");
    println!("wrote {}", path.display());
    if !ok {
        eprintln!(
            "calibration A/B failed its acceptance bar (<20% skewed recovery, >2% unskewed \
             cost, unobserved straggler, or row mismatch)"
        );
        std::process::exit(1);
    }
}
