//! Emit `BENCH_staging.json`: pipelined execution with vs without byte-budget
//! staging governance on the join+reduce hybrid acceptance workload.
//!
//! Usage: `staging_ab [out_dir]` — writes `BENCH_staging.json` into
//! `out_dir` (default: the current directory).

use hetex_bench::staging_ab;

fn main() {
    let report = staging_ab::run_all(200_000).expect("staging A/B suite failed");
    let mut ok = true;
    for row in &report.rows {
        println!(
            "{:<28} governed {:>9.4}s  ungoverned {:>9.4}s  overhead {:>6.2}%  peak {:>10} / {} bytes  rows_identical {}",
            row.workload,
            row.governed_s,
            row.ungoverned_s,
            row.overhead_pct(),
            row.peak_leased_bytes,
            row.budget_bytes,
            row.rows_identical
        );
        ok &= row.rows_identical && row.overhead_pct() <= 5.0;
    }
    let path = hetex_bench::bench_output_path(
        std::env::args().nth(1).map(Into::into),
        "BENCH_staging.json",
    );
    std::fs::write(&path, report.to_json()).expect("write BENCH_staging.json");
    println!("wrote {}", path.display());
    if !ok {
        eprintln!(
            "staging governance A/B failed its acceptance bar (>5% overhead or row mismatch)"
        );
        std::process::exit(1);
    }
}
