//! Emit `BENCH_serve.json`: N concurrent SSB query streams through one
//! `QueryServer` vs serial back-to-back execution — aggregate speedup,
//! p50/p99 served latency, byte-identical rows, and bounded admission.
//!
//! Usage: `serve_ab [out_dir]` — writes `BENCH_serve.json` into `out_dir`
//! (default: the current directory).

use hetex_bench::serve_ab::{self, DEFAULT_STREAMS, SPEEDUP_BAR};

fn main() {
    let report = serve_ab::run(DEFAULT_STREAMS).expect("serve A/B suite failed");
    println!(
        "{:<28} sessions {:>3}  serial {:>9.4}s  served {:>9.4}s  speedup {:>5.2}x  \
         p50 {:>9.4}s  p99 {:>9.4}s  peak {}/{} B  leaked {}  rows_identical {}",
        report.workload,
        report.sessions,
        report.serial_s,
        report.served_s,
        report.speedup(),
        report.p50_latency_s,
        report.p99_latency_s,
        report.peak_admitted_bytes,
        report.admission_budget_bytes,
        report.staging_leaked_bytes,
        report.rows_identical
    );
    let ok = report.rows_identical
        && report.staging_leaked_bytes == 0
        && report.peak_admitted_bytes <= report.admission_budget_bytes
        && report.speedup() >= SPEEDUP_BAR;
    let path =
        hetex_bench::bench_output_path(std::env::args().nth(1).map(Into::into), "BENCH_serve.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
    if !ok {
        eprintln!(
            "serve A/B failed its acceptance bar (row mismatch, leaked staging, admission \
             over budget, or < {SPEEDUP_BAR}x speedup at {DEFAULT_STREAMS} streams)"
        );
        std::process::exit(1);
    }
}
