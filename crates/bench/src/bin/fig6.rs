//! Regenerates Figure 6: scalability of Proteus on SSB SF1000 — speed-up per
//! query group versus the number of CPU cores, with and without two GPUs.
//!
//! Usage: `cargo run --release -p hetex-bench --bin fig6`

fn main() {
    let sf = hetex_bench::workload::physical_sf_from_env();
    println!("physical SF = {sf}, modeling nominal SF1000\n");
    let cores = [0, 1, 2, 4, 8, 12, 16, 20, 24];
    if let Err(e) = hetex_bench::figures::figure6(sf, &cores) {
        eprintln!("figure 6 failed: {e}");
        std::process::exit(1);
    }
}
