//! Regenerates Figure 4: SSB with GPU-fitting working sets (nominal SF100),
//! data resident in GPU device memory for the GPU systems.
//!
//! Usage: `cargo run --release -p hetex-bench --bin fig4`
//! (set `HETEX_PHYSICAL_SF` to change the physical dataset size).

fn main() {
    let sf = hetex_bench::workload::physical_sf_from_env();
    println!("physical SF = {sf}, modeling nominal SF100\n");
    if let Err(e) = hetex_bench::figures::figure4(sf) {
        eprintln!("figure 4 failed: {e}");
        std::process::exit(1);
    }
}
