//! Regenerates Figure 7: microbenchmark scale-up — the sum and 1:N-join
//! queries over a 23 GB (nominal) input, across CPU core counts and 0/1/2
//! GPUs, plus the "without HetExchange" single-device baselines.
//!
//! Usage: `cargo run --release -p hetex-bench --bin fig7`

fn main() {
    let cores = [0, 1, 2, 4, 8, 12, 16, 20, 24];
    if let Err(e) = hetex_bench::figures::figure7(200_000, &cores) {
        eprintln!("figure 7 failed: {e}");
        std::process::exit(1);
    }
}
