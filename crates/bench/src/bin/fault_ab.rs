//! Emit `BENCH_fault.json`: the fault-tolerance ladder under injected device
//! faults (permanent GPU loss, transient kernel failures, total GPU loss of
//! a GPU-only query) plus the healthy control that prices having the fault
//! machinery armed at all.
//!
//! Usage: `fault_ab [out_dir]` — writes `BENCH_fault.json` into `out_dir`
//! (default: the current directory).

use hetex_bench::fault_ab;

fn main() {
    let report = fault_ab::run_all(200_000).expect("fault A/B suite failed");
    let mut ok = true;
    for row in &report.rows {
        println!(
            "{:<36} faulted {:>9.4}s  baseline {:>9.4}s  overhead {:>7.2}%  recovered {:>3}  \
             retries {:>3}  restarts {}  leaked {}  rows_identical {}",
            row.workload,
            row.faulted_s,
            row.baseline_s,
            row.overhead_pct(),
            row.recovered_blocks,
            row.transient_retries,
            row.degraded_restarts,
            row.staging_leaked_bytes,
            row.rows_identical
        );
        ok &= row.rows_identical && row.staging_leaked_bytes == 0;
        if row.workload.contains("healthy") {
            // Without a plan the executor constructs no fault state: armed
            // must be free.
            ok &= row.overhead_pct().abs() <= 2.0;
        } else if row.workload.contains("transient") {
            ok &= row.transient_retries > 0 && row.overhead_pct() <= 10.0;
        } else if row.workload.contains("total_gpu_loss") {
            ok &= row.degraded_restarts >= 1;
        } else if row.workload.contains("gpu_loss") {
            ok &= row.recovered_blocks > 0 && row.degraded_restarts == 0;
        }
    }
    let path =
        hetex_bench::bench_output_path(std::env::args().nth(1).map(Into::into), "BENCH_fault.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_fault.json");
    println!("wrote {}", path.display());
    if !ok {
        eprintln!(
            "fault A/B failed its acceptance bar (row mismatch, leaked staging, >2% armed \
             overhead, >10% transient overhead, or a fault scenario that never engaged)"
        );
        std::process::exit(1);
    }
}
