//! Regenerates Table 1: the device-provider interface and how the CPU and GPU
//! providers specialize the same pipeline blueprint (Figure 3 / Listing 1).
//!
//! Usage: `cargo run --release -p hetex-bench --bin table1`

fn main() {
    hetex_bench::figures::table1();
}
