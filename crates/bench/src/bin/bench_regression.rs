//! Bench-regression gate: compare freshly generated `BENCH_*.json` files
//! against a snapshot of the committed baselines and fail (exit 1) when any
//! simulated-time metric regressed by more than the tolerance.
//!
//! Usage: `bench_regression <baseline_dir> [current_dir] [tolerance_pct]`
//!
//! CI snapshots the checked-in `BENCH_*.json` files before re-running the
//! bench bins (which overwrite them in place), then invokes this gate with
//! the snapshot directory. Every numeric field ending in `_s` is treated as
//! a time metric (`pipelined_s`, `governed_s`, `steal_s`, …): a current
//! value more than `tolerance_pct` above its baseline is a throughput
//! regression. Metrics present only in the current files (new benchmarks)
//! pass; metrics that *disappeared* fail, so a silently dropped workload
//! cannot slip through. Workloads labelled `skewed` are reported but not
//! gated: their timings depend on wall-clock thread scheduling (how many
//! blocks get stolen before a straggler claims them varies with core count
//! and load), so the committed number is not a stable baseline — the
//! `steal_ab` bin enforces that workload's real acceptance bar (≥ 10%
//! improvement) directly. The JSON is the hand-rolled one-object-per-line
//! format the bench crate emits (the build has no JSON dependency), parsed
//! with an equally small hand-rolled scanner.

use std::path::{Path, PathBuf};
use std::process::exit;

/// One time metric: (workload label, field name, seconds).
type Metric = (String, String, f64);

/// Extract every `"field": value` pair with a `_s`-suffixed field from the
/// bench crate's one-workload-per-line JSON.
fn parse_metrics(content: &str) -> Vec<Metric> {
    let mut out = Vec::new();
    for line in content.lines() {
        let Some(workload) = field_str(line, "workload") else { continue };
        let mut rest = line;
        while let Some(pos) = rest.find('"') {
            rest = &rest[pos + 1..];
            let Some(end) = rest.find('"') else { break };
            let key = &rest[..end];
            rest = &rest[end + 1..];
            if !key.ends_with("_s") {
                continue;
            }
            let Some(colon) = rest.find(':') else { break };
            let value_str = rest[colon + 1..].trim_start().split([',', '}']).next().unwrap_or("");
            if let Ok(value) = value_str.trim().parse::<f64>() {
                out.push((workload.clone(), key.to_string(), value));
            }
        }
    }
    out
}

/// The string value of `"field": "..."` on `line`, if present.
fn field_str(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn bench_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(baseline_dir) = args.next().map(PathBuf::from) else {
        eprintln!("usage: bench_regression <baseline_dir> [current_dir] [tolerance_pct]");
        exit(2);
    };
    let current_dir = args.next().map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    let tolerance_pct: f64 = args.next().and_then(|t| t.parse().ok()).unwrap_or(10.0);
    let factor = 1.0 + tolerance_pct / 100.0;

    let baselines = bench_files(&baseline_dir);
    if baselines.is_empty() {
        eprintln!("no BENCH_*.json baselines under {}", baseline_dir.display());
        exit(2);
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for baseline_path in baselines {
        let name = baseline_path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let current_path = current_dir.join(&name);
        let Ok(baseline) = std::fs::read_to_string(&baseline_path) else { continue };
        let Ok(current) = std::fs::read_to_string(&current_path) else {
            eprintln!("REGRESSION {name}: baseline exists but no current file was generated");
            regressions += 1;
            continue;
        };
        let current_metrics = parse_metrics(&current);
        for (workload, field, base_s) in parse_metrics(&baseline) {
            if workload.contains("skewed") && !workload.contains("unskewed") {
                println!("skip {name} {workload}.{field}: schedule-sensitive, not gated");
                continue;
            }
            compared += 1;
            let Some((_, _, cur_s)) =
                current_metrics.iter().find(|(w, f, _)| *w == workload && *f == field)
            else {
                eprintln!("REGRESSION {name} {workload}.{field}: metric disappeared");
                regressions += 1;
                continue;
            };
            if *cur_s > base_s * factor && *cur_s - base_s > 1e-9 {
                eprintln!(
                    "REGRESSION {name} {workload}.{field}: {cur_s:.6}s vs baseline {base_s:.6}s \
                     (+{:.1}% > {tolerance_pct:.0}%)",
                    (cur_s / base_s - 1.0) * 100.0
                );
                regressions += 1;
            } else {
                println!(
                    "ok {name} {workload}.{field}: {cur_s:.6}s vs {base_s:.6}s ({:+.1}%)",
                    (cur_s / base_s - 1.0) * 100.0
                );
            }
        }
    }
    println!("compared {compared} metrics, {regressions} regression(s)");
    if compared == 0 {
        eprintln!("no comparable metrics found — treat as failure");
        exit(2);
    }
    if regressions > 0 {
        exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "work_stealing_ab",
  "workloads": [
    {"workload": "skewed", "steal_s": 5.301234567, "no_steal_s": 10.500000000, "improvement_pct": 49.51, "blocks_stolen": 18, "rows_identical": true},
    {"workload": "unskewed", "steal_s": 2.100000000, "no_steal_s": 2.110000000, "improvement_pct": 0.47, "blocks_stolen": 0, "rows_identical": true}
  ]
}"#;

    #[test]
    fn parses_only_time_metrics() {
        let metrics = parse_metrics(SAMPLE);
        assert_eq!(metrics.len(), 4);
        assert!(metrics.contains(&("skewed".into(), "steal_s".into(), 5.301234567)));
        assert!(metrics.contains(&("unskewed".into(), "no_steal_s".into(), 2.11)));
        // Non-time fields (counts, percentages, booleans) are not gated.
        assert!(!metrics.iter().any(|(_, f, _)| f == "improvement_pct" || f == "blocks_stolen"));
    }

    #[test]
    fn field_str_extracts_workload_labels() {
        assert_eq!(
            field_str(r#"{"workload": "Q4.1", "pipelined_s": 5.65}"#, "workload").as_deref(),
            Some("Q4.1")
        );
        assert_eq!(field_str(r#"{"metric": "simulated_seconds"}"#, "workload"), None);
    }
}
