//! Bench-regression gate: compare freshly generated `BENCH_*.json` files
//! against the committed baselines and fail (exit 1) when any
//! simulated-time metric regressed by more than the tolerance.
//!
//! Usage: `bench_regression <baseline_dir> [current_dir] [tolerance_pct]`
//!
//! CI runs the bench bins with an output-directory argument (so the
//! checked-in `BENCH_*.json` stay untouched), then invokes this gate with
//! the repository as the baseline and the fresh output directory as
//! current. Gated metrics carry **direction metadata** derived from the
//! field suffix: fields ending in `_s` are simulated times (lower is better
//! — a current value more than `tolerance_pct` *above* its baseline
//! regresses), fields ending in `_gbps` are throughputs (higher is better —
//! a value more than `tolerance_pct` *below* its baseline regresses).
//! Without the direction split an improved throughput number would be
//! flagged exactly like a slowed-down time. Metrics present only in the
//! current files (new benchmarks) pass; metrics that *disappeared* — a
//! dropped workload, a renamed field, a bench bin that silently stopped
//! emitting a row — fail loudly, **including** in otherwise ungated
//! workloads. Workloads labelled `skewed` have their *values* reported but
//! not gated: their timings depend on wall-clock thread scheduling (how
//! many blocks get stolen or diverted before a straggler claims them varies
//! with core count and load), so the committed number is not a stable
//! baseline — the `steal_ab`/`calib_ab` bins enforce those workloads' real
//! acceptance bars (≥ 10% / ≥ 20% improvement) directly. The JSON is the
//! hand-rolled one-object-per-line format the bench crate emits (the build
//! has no JSON dependency), parsed with an equally small hand-rolled
//! scanner.
//!
//! When `GITHUB_STEP_SUMMARY` is set (a GitHub Actions step), the gate also
//! appends a per-metric markdown delta table to it, so regressions — and
//! improvements — are visible from the workflow summary page without
//! reading logs.
//!
//! **New baselines**: a PR that commits a brand-new `BENCH_*.json` has no
//! prior run to compare against — if its bench bin is not yet wired into
//! the pipeline (or runs behind this gate), the missing current file would
//! fail the build exactly like a dropped benchmark. Setting
//! `HETEX_NEW_BASELINES` to a comma-separated list of baseline *file
//! names* (e.g. `BENCH_kernel.json`) downgrades missing-current-file and
//! missing-metric failures **for those files only** to an accepted
//! "new baseline" outcome. Present metrics of a listed file are still
//! value-gated normally, so the escape hatch cannot hide a real
//! regression in a file that did run.

use std::path::{Path, PathBuf};
use std::process::exit;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Times, latencies: a larger current value is a regression.
    LowerIsBetter,
    /// Throughputs, recovery rates: a smaller current value is a regression.
    HigherIsBetter,
}

/// Direction metadata by field-name suffix; `None` for fields that are not
/// gated (counts, percentages, booleans).
fn direction_of(field: &str) -> Option<Direction> {
    if field.ends_with("_s") {
        Some(Direction::LowerIsBetter)
    } else if field.ends_with("_gbps") {
        Some(Direction::HigherIsBetter)
    } else {
        None
    }
}

/// One gated metric: (workload label, field name, value, direction).
type Metric = (String, String, f64, Direction);

/// True when `current` regressed against `baseline` by more than `factor`
/// (1.0 + tolerance) in the metric's own direction: more than the tolerance
/// *above* baseline for times, more than the tolerance *below* baseline for
/// throughputs (`2.0 - factor` = 1.0 − tolerance — symmetric with the
/// lower-is-better bar, not the smaller `1/factor` drop).
fn regressed(direction: Direction, baseline: f64, current: f64, factor: f64) -> bool {
    match direction {
        Direction::LowerIsBetter => current > baseline * factor && current - baseline > 1e-9,
        Direction::HigherIsBetter => {
            current < baseline * (2.0 - factor) && baseline - current > 1e-9
        }
    }
}

/// Signed change of `current` vs `baseline` in percent, oriented so that a
/// positive value is always an improvement.
fn improvement_pct(direction: Direction, baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    let raw = (current / baseline - 1.0) * 100.0;
    match direction {
        Direction::LowerIsBetter => -raw,
        Direction::HigherIsBetter => raw,
    }
}

/// Extract every gated `"field": value` pair (a field with direction
/// metadata) from the bench crate's one-workload-per-line JSON.
fn parse_metrics(content: &str) -> Vec<Metric> {
    let mut out = Vec::new();
    for line in content.lines() {
        let Some(workload) = field_str(line, "workload") else { continue };
        let mut rest = line;
        while let Some(pos) = rest.find('"') {
            rest = &rest[pos + 1..];
            let Some(end) = rest.find('"') else { break };
            let key = &rest[..end];
            rest = &rest[end + 1..];
            let Some(direction) = direction_of(key) else { continue };
            let Some(colon) = rest.find(':') else { break };
            let value_str = rest[colon + 1..].trim_start().split([',', '}']).next().unwrap_or("");
            if let Ok(value) = value_str.trim().parse::<f64>() {
                out.push((workload.clone(), key.to_string(), value, direction));
            }
        }
    }
    out
}

/// The string value of `"field": "..."` on `line`, if present.
fn field_str(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Outcome of one baseline metric's comparison, feeding both the log lines
/// and the step-summary table.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    file: String,
    workload: String,
    field: String,
    direction: Direction,
    baseline: f64,
    /// The fresh run's value; `None` when the metric disappeared.
    current: Option<f64>,
    /// Whether the *value* is gated. Schedule-sensitive (skewed) workloads
    /// are reported only — but their *presence* is always gated.
    value_gated: bool,
    /// Whether the file is a declared new baseline (`HETEX_NEW_BASELINES`):
    /// a missing current metric is accepted instead of failing.
    new_baseline: bool,
    regressed: bool,
}

/// Parse the `HETEX_NEW_BASELINES` value: comma-separated baseline file
/// names, whitespace-tolerant, empty entries dropped.
fn new_baseline_set(raw: Option<&str>) -> std::collections::HashSet<String> {
    raw.map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect())
        .unwrap_or_default()
}

/// True when a workload's values are too schedule-sensitive to gate against
/// a committed number (see the module docs).
fn schedule_sensitive(workload: &str) -> bool {
    workload.contains("skewed") && !workload.contains("unskewed")
}

/// Compare every baseline metric of one file against the fresh run. Every
/// baseline metric must still *exist* (a renamed or dropped metric is a
/// regression even in ungated workloads — a gate that silently loses
/// coverage is worse than a slow benchmark); values are gated only outside
/// schedule-sensitive workloads.
fn compare_metrics(
    file: &str,
    baseline: &[Metric],
    current: &[Metric],
    factor: f64,
    new_baseline: bool,
) -> Vec<Outcome> {
    baseline
        .iter()
        .map(|(workload, field, base, direction)| {
            let value_gated = !schedule_sensitive(workload);
            let cur = current
                .iter()
                .find(|(w, f, _, _)| w == workload && f == field)
                .map(|&(_, _, v, _)| v);
            let regressed = match cur {
                // A declared new baseline has no prior run to be missing
                // from — accept the hole instead of failing it.
                None => !new_baseline,
                Some(cur) => value_gated && regressed(*direction, *base, cur, factor),
            };
            Outcome {
                file: file.to_string(),
                workload: workload.clone(),
                field: field.clone(),
                direction: *direction,
                baseline: *base,
                current: cur,
                value_gated,
                new_baseline,
                regressed,
            }
        })
        .collect()
}

/// Render the per-metric delta table (GitHub-flavoured markdown) the gate
/// appends to `$GITHUB_STEP_SUMMARY`. Positive delta = better, in the
/// metric's own direction.
fn render_step_summary(outcomes: &[Outcome], tolerance_pct: f64) -> String {
    let regressions = outcomes.iter().filter(|o| o.regressed).count();
    let mut out = String::from("## Bench regression gate\n\n");
    out.push_str(&format!(
        "{} metric(s) compared at ±{tolerance_pct:.0}% tolerance — **{}**\n\n",
        outcomes.len(),
        if regressions == 0 {
            "no regressions".to_string()
        } else {
            format!("{regressions} regression(s)")
        }
    ));
    out.push_str("| file | workload | metric | baseline | current | Δ better | status |\n");
    out.push_str("|---|---|---|---:|---:|---:|---|\n");
    for o in outcomes {
        let direction = match o.direction {
            Direction::LowerIsBetter => "lower-is-better",
            Direction::HigherIsBetter => "higher-is-better",
        };
        let (current, delta) = match o.current {
            Some(cur) => (
                format!("{cur:.6}"),
                format!("{:+.1}%", improvement_pct(o.direction, o.baseline, cur)),
            ),
            None => ("—".to_string(), "—".to_string()),
        };
        let status = if o.current.is_none() && o.new_baseline {
            "🆕 new baseline (no prior run)".to_string()
        } else if o.current.is_none() {
            "❌ missing".to_string()
        } else if o.regressed {
            format!("❌ regressed ({direction})")
        } else if o.value_gated {
            format!("✅ ok ({direction})")
        } else {
            "⏭️ reported only (schedule-sensitive)".to_string()
        };
        out.push_str(&format!(
            "| {} | {} | {} | {:.6} | {} | {} | {} |\n",
            o.file, o.workload, o.field, o.baseline, current, delta, status
        ));
    }
    out
}

fn bench_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(baseline_dir) = args.next().map(PathBuf::from) else {
        eprintln!("usage: bench_regression <baseline_dir> [current_dir] [tolerance_pct]");
        exit(2);
    };
    let current_dir = args.next().map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    let tolerance_pct: f64 = args.next().and_then(|t| t.parse().ok()).unwrap_or(10.0);
    // Past 100% the higher-is-better bar (baseline × (1 − tolerance)) goes
    // non-positive and that whole gate silently disables itself; no
    // legitimate tolerance is anywhere near that, so reject loudly.
    if !(0.0..100.0).contains(&tolerance_pct) {
        eprintln!("tolerance_pct must be in [0, 100), got {tolerance_pct}");
        exit(2);
    }
    let factor = 1.0 + tolerance_pct / 100.0;

    let baselines = bench_files(&baseline_dir);
    if baselines.is_empty() {
        eprintln!("no BENCH_*.json baselines under {}", baseline_dir.display());
        exit(2);
    }

    let new_baselines = new_baseline_set(std::env::var("HETEX_NEW_BASELINES").ok().as_deref());

    let mut regressions = 0usize;
    let mut outcomes: Vec<Outcome> = Vec::new();
    for baseline_path in baselines {
        let name = baseline_path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let is_new = new_baselines.contains(&name);
        let current_path = current_dir.join(&name);
        let Ok(baseline) = std::fs::read_to_string(&baseline_path) else { continue };
        let baseline_metrics = parse_metrics(&baseline);
        let Ok(current) = std::fs::read_to_string(&current_path) else {
            if is_new {
                println!(
                    "new baseline {name}: accepted without a prior-run comparison \
                     (HETEX_NEW_BASELINES)"
                );
            } else {
                eprintln!("REGRESSION {name}: baseline exists but no current file was generated");
            }
            if baseline_metrics.is_empty() {
                // No per-metric outcomes can carry this failure into the
                // count (or the summary table) — count the file itself.
                regressions += usize::from(!is_new);
            } else {
                // Every committed metric of the file is missing: emit one
                // missing-metric outcome each, so the step-summary table
                // shows the same failures (or accepted new-baseline holes)
                // the exit code reports.
                outcomes.extend(compare_metrics(&name, &baseline_metrics, &[], factor, is_new));
            }
            continue;
        };
        outcomes.extend(compare_metrics(
            &name,
            &baseline_metrics,
            &parse_metrics(&current),
            factor,
            is_new,
        ));
    }

    for o in &outcomes {
        let label = format!("{} {}.{}", o.file, o.workload, o.field);
        match o.current {
            None if o.new_baseline => {
                println!("new {label}: fresh baseline, no prior-run value to compare");
            }
            None => {
                eprintln!(
                    "REGRESSION {label}: baseline metric missing from the fresh run \
                     (renamed or dropped? every committed metric must keep being emitted)"
                );
            }
            Some(cur) if o.regressed => {
                eprintln!(
                    "REGRESSION {label}: {cur:.6} vs baseline {:.6} ({:.1}% worse > \
                     {tolerance_pct:.0}%, {:?})",
                    o.baseline,
                    -improvement_pct(o.direction, o.baseline, cur),
                    o.direction
                );
            }
            Some(cur) if !o.value_gated => {
                println!(
                    "skip {label}: schedule-sensitive, value not gated ({cur:.6} vs {:.6})",
                    o.baseline
                );
            }
            Some(cur) => {
                println!(
                    "ok {label}: {cur:.6} vs {:.6} ({:+.1}% better, {:?})",
                    o.baseline,
                    improvement_pct(o.direction, o.baseline, cur),
                    o.direction
                );
            }
        }
    }
    regressions += outcomes.iter().filter(|o| o.regressed).count();
    let compared = outcomes.len();
    println!("compared {compared} metrics, {regressions} regression(s)");

    // The per-metric delta table for the workflow summary page.
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        let table = render_step_summary(&outcomes, tolerance_pct);
        match std::fs::OpenOptions::new().create(true).append(true).open(&summary_path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(table.as_bytes()) {
                    eprintln!("could not append step summary to {summary_path}: {e}");
                }
            }
            Err(e) => eprintln!("could not open step summary {summary_path}: {e}"),
        }
    }

    if compared == 0 {
        eprintln!("no comparable metrics found — treat as failure");
        exit(2);
    }
    if regressions > 0 {
        exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "work_stealing_ab",
  "workloads": [
    {"workload": "skewed", "steal_s": 5.301234567, "no_steal_s": 10.500000000, "improvement_pct": 49.51, "blocks_stolen": 18, "rows_identical": true},
    {"workload": "unskewed", "steal_s": 2.100000000, "no_steal_s": 2.110000000, "improvement_pct": 0.47, "blocks_stolen": 0, "rows_identical": true},
    {"workload": "scan_sweep", "throughput_gbps": 41.500000000, "cores": 16}
  ]
}"#;

    #[test]
    fn parses_directed_metrics_only() {
        let metrics = parse_metrics(SAMPLE);
        assert_eq!(metrics.len(), 5);
        assert!(metrics.contains(&(
            "skewed".into(),
            "steal_s".into(),
            5.301234567,
            Direction::LowerIsBetter
        )));
        assert!(metrics.contains(&(
            "unskewed".into(),
            "no_steal_s".into(),
            2.11,
            Direction::LowerIsBetter
        )));
        // Throughputs are gated in the opposite direction.
        assert!(metrics.contains(&(
            "scan_sweep".into(),
            "throughput_gbps".into(),
            41.5,
            Direction::HigherIsBetter
        )));
        // Undirected fields (counts, percentages, booleans) are not gated.
        assert!(!metrics.iter().any(|(_, f, _, _)| f == "improvement_pct" || f == "blocks_stolen"));
    }

    #[test]
    fn direction_metadata_comes_from_the_field_suffix() {
        assert_eq!(direction_of("pipelined_s"), Some(Direction::LowerIsBetter));
        assert_eq!(direction_of("governed_s"), Some(Direction::LowerIsBetter));
        assert_eq!(direction_of("throughput_gbps"), Some(Direction::HigherIsBetter));
        assert_eq!(direction_of("improvement_pct"), None);
        assert_eq!(direction_of("blocks_stolen"), None);
        assert_eq!(direction_of("rows_identical"), None);
    }

    #[test]
    fn improvements_are_not_flagged_in_either_direction() {
        let factor = 1.10;
        // A faster time is an improvement, not a regression…
        assert!(!regressed(Direction::LowerIsBetter, 10.0, 8.0, factor));
        // …and so is a higher throughput, even though the raw value *rose*
        // (the bug the direction metadata exists to fix).
        assert!(!regressed(Direction::HigherIsBetter, 40.0, 48.0, factor));
        // Genuine regressions are flagged in both directions.
        assert!(regressed(Direction::LowerIsBetter, 10.0, 11.5, factor));
        assert!(regressed(Direction::HigherIsBetter, 40.0, 34.0, factor));
        // Within-tolerance drift passes either way — and the higher-is-better
        // bar is the full symmetric 10% drop (a 9.5% drop passes), not the
        // tighter 1/1.1 ≈ 9.09% an inverted-factor check would enforce.
        assert!(!regressed(Direction::LowerIsBetter, 10.0, 10.5, factor));
        assert!(!regressed(Direction::HigherIsBetter, 40.0, 38.0, factor));
        assert!(!regressed(Direction::HigherIsBetter, 40.0, 36.2, factor));
        assert!(regressed(Direction::HigherIsBetter, 40.0, 35.9, factor));
        // Degenerate equal/zero baselines never divide or flag.
        assert!(!regressed(Direction::HigherIsBetter, 0.0, 0.0, factor));
        assert!(!regressed(Direction::LowerIsBetter, 0.0, 0.0, factor));
    }

    #[test]
    fn improvement_pct_is_oriented_positive_is_better() {
        assert!((improvement_pct(Direction::LowerIsBetter, 10.0, 8.0) - 20.0).abs() < 1e-9);
        assert!((improvement_pct(Direction::LowerIsBetter, 10.0, 12.0) + 20.0).abs() < 1e-9);
        assert!((improvement_pct(Direction::HigherIsBetter, 40.0, 48.0) - 20.0).abs() < 1e-9);
        assert!((improvement_pct(Direction::HigherIsBetter, 40.0, 32.0) + 20.0).abs() < 1e-9);
        assert_eq!(improvement_pct(Direction::HigherIsBetter, 0.0, 5.0), 0.0);
    }

    #[test]
    fn missing_metrics_regress_even_in_ungated_workloads() {
        let baseline = parse_metrics(SAMPLE);
        // The fresh run renamed `steal_s` away in the *skewed* workload and
        // dropped the throughput row entirely.
        let current = parse_metrics(
            r#"{"workloads": [
    {"workload": "skewed", "steal_sec": 5.3, "no_steal_s": 10.5},
    {"workload": "unskewed", "steal_s": 2.1, "no_steal_s": 2.11}
]}"#,
        );
        let outcomes = compare_metrics("BENCH_steal.json", &baseline, &current, 1.10, false);
        assert_eq!(outcomes.len(), baseline.len());
        // The skewed `steal_s` disappeared: a regression despite the
        // workload's values being schedule-sensitive (presence is always
        // gated — a renamed metric must never silently pass).
        let renamed =
            outcomes.iter().find(|o| o.workload == "skewed" && o.field == "steal_s").unwrap();
        assert_eq!(renamed.current, None);
        assert!(renamed.regressed && !renamed.value_gated);
        let dropped = outcomes.iter().find(|o| o.field == "throughput_gbps").unwrap();
        assert!(dropped.regressed && dropped.current.is_none());
        // Present, in-tolerance metrics pass; the skewed workload's present
        // metric is reported but not value-gated.
        let ok = outcomes.iter().find(|o| o.workload == "unskewed" && o.field == "steal_s");
        assert!(!ok.unwrap().regressed);
        let reported =
            outcomes.iter().find(|o| o.workload == "skewed" && o.field == "no_steal_s").unwrap();
        assert!(!reported.regressed && !reported.value_gated);
    }

    #[test]
    fn schedule_sensitive_values_are_reported_but_not_value_gated() {
        let baseline = parse_metrics(SAMPLE);
        // A 3x slowdown of the skewed workload does not regress (values not
        // gated), but the same slowdown of the unskewed workload does.
        let current = parse_metrics(
            r#"{"workloads": [
    {"workload": "skewed", "steal_s": 15.9, "no_steal_s": 31.5},
    {"workload": "unskewed", "steal_s": 6.3, "no_steal_s": 2.11},
    {"workload": "scan_sweep", "throughput_gbps": 41.5}
]}"#,
        );
        let outcomes = compare_metrics("BENCH_steal.json", &baseline, &current, 1.10, false);
        assert!(outcomes
            .iter()
            .filter(|o| o.workload == "skewed")
            .all(|o| !o.regressed && !o.value_gated));
        let slow = outcomes.iter().find(|o| o.workload == "unskewed" && o.field == "steal_s");
        assert!(slow.unwrap().regressed);
        assert!(schedule_sensitive("join_reduce_200k_skewed_gpu_8x"));
        assert!(!schedule_sensitive("join_reduce_200k_unskewed"));
    }

    #[test]
    fn new_baseline_set_parses_the_env_shape() {
        assert!(new_baseline_set(None).is_empty());
        assert!(new_baseline_set(Some("")).is_empty());
        let set = new_baseline_set(Some("BENCH_kernel.json, BENCH_other.json ,,"));
        assert_eq!(set.len(), 2);
        assert!(set.contains("BENCH_kernel.json"));
        assert!(set.contains("BENCH_other.json"));
    }

    #[test]
    fn a_declared_new_baseline_accepts_a_missing_current_file() {
        // The new-file path: a freshly committed BENCH_kernel.json with no
        // fresh run at all (every metric missing) must not regress when the
        // file is declared via HETEX_NEW_BASELINES…
        let baseline = parse_metrics(
            r#"{"workloads": [
    {"workload": "filter_heavy_400k_low_sel", "vectorized_s": 1.68, "tuple_at_a_time_s": 3.36},
    {"workload": "group_by_200k_64_groups", "vectorized_s": 26.59, "tuple_at_a_time_s": 26.59}
]}"#,
        );
        let accepted = compare_metrics("BENCH_kernel.json", &baseline, &[], 1.10, true);
        assert_eq!(accepted.len(), baseline.len());
        assert!(accepted.iter().all(|o| !o.regressed && o.current.is_none() && o.new_baseline));
        let summary = render_step_summary(&accepted, 10.0);
        assert!(summary.contains("🆕 new baseline"), "{summary}");
        assert!(summary.contains("no regressions"), "{summary}");

        // …while the same hole without the declaration still fails loudly.
        let gated = compare_metrics("BENCH_kernel.json", &baseline, &[], 1.10, false);
        assert!(gated.iter().all(|o| o.regressed));
    }

    #[test]
    fn a_new_baseline_that_did_run_is_still_value_gated() {
        // The escape hatch only covers *holes*: metrics the fresh run did
        // emit are compared normally, so a declared new baseline cannot
        // smuggle a real regression past the gate.
        let baseline = parse_metrics(r#"{"workloads": [{"workload": "w", "vectorized_s": 1.0}]}"#);
        let current = parse_metrics(r#"{"workloads": [{"workload": "w", "vectorized_s": 2.0}]}"#);
        let outcomes = compare_metrics("BENCH_kernel.json", &baseline, &current, 1.10, true);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].regressed, "a 2x slowdown must regress even for a new baseline");
        // An in-tolerance run of a new baseline passes as usual.
        let ok =
            compare_metrics("BENCH_kernel.json", &baseline, &baseline_to_current(), 1.10, true);
        assert!(!ok[0].regressed);
    }

    /// An identical fresh run for the one-metric baseline above.
    fn baseline_to_current() -> Vec<Metric> {
        parse_metrics(r#"{"workloads": [{"workload": "w", "vectorized_s": 1.0}]}"#)
    }

    #[test]
    fn step_summary_renders_a_delta_table() {
        let baseline = parse_metrics(SAMPLE);
        let current = parse_metrics(
            r#"{"workloads": [
    {"workload": "skewed", "steal_s": 5.3, "no_steal_s": 10.5},
    {"workload": "unskewed", "steal_s": 1.9, "no_steal_s": 2.8}
]}"#,
        );
        let outcomes = compare_metrics("BENCH_steal.json", &baseline, &current, 1.10, false);
        let summary = render_step_summary(&outcomes, 10.0);
        // Header + one row per baseline metric, with markdown table syntax.
        assert!(summary.starts_with("## Bench regression gate"));
        assert!(summary.contains("| file | workload | metric |"));
        assert_eq!(summary.matches("| BENCH_steal.json |").count(), baseline.len());
        // An improvement renders a positive oriented delta, a regression and
        // a missing metric are called out, and schedule-sensitive rows are
        // marked reported-only.
        assert!(summary.contains("+9.5%"), "{summary}");
        assert!(summary.contains("❌ regressed"), "{summary}");
        assert!(summary.contains("❌ missing"), "{summary}");
        assert!(summary.contains("⏭️ reported only"), "{summary}");
        assert!(summary.contains("2 regression(s)"), "{summary}");
    }

    #[test]
    fn field_str_extracts_workload_labels() {
        assert_eq!(
            field_str(r#"{"workload": "Q4.1", "pipelined_s": 5.65}"#, "workload").as_deref(),
            Some("Q4.1")
        );
        assert_eq!(field_str(r#"{"metric": "simulated_seconds"}"#, "workload"), None);
    }
}
