//! Emit `BENCH_reopt.json`: the same query submitted twice to one engine —
//! a mis-planned hybrid(8,2) on a server with a hidden 8× straggler GPU,
//! static routing, stealing disabled — with feedback-driven plan
//! re-optimization on vs off. The reopt leg must correct the placement on
//! the second run (≥ 20% simulated-time recovery, byte-identical rows); the
//! disabled control must never rewrite.
//!
//! Usage: `reopt_ab [out_dir]` — writes `BENCH_reopt.json` into `out_dir`
//! (default: the current directory).

use hetex_bench::reopt_ab;

fn main() {
    let report = reopt_ab::run_all(200_000).expect("re-optimization A/B suite failed");
    let mut ok = true;
    for row in &report.rows {
        println!(
            "{:<40} first {:>9.4}s  second {:>9.4}s  recovery {:>6.2}%  \
             straggler_ewma {:>5.2}  replanned_to {:<14}  rows_identical {}",
            row.workload,
            row.first_s,
            row.second_s,
            row.recovery_pct(),
            row.straggler_ewma,
            row.replanned_to.as_deref().unwrap_or("-"),
            row.rows_identical
        );
        ok &= row.rows_identical;
        if row.workload.contains("reopt_off") {
            ok &= row.replanned_to.is_none() && row.recovery_pct().abs() <= 5.0;
        } else {
            ok &= row.replanned_to.is_some()
                && row.recovery_pct() >= 20.0
                && row.straggler_ewma > 1.5;
        }
    }
    let path =
        hetex_bench::bench_output_path(std::env::args().nth(1).map(Into::into), "BENCH_reopt.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_reopt.json");
    println!("wrote {}", path.display());
    if !ok {
        eprintln!(
            "re-optimization A/B failed its acceptance bar (<20% second-run recovery, \
             missing rewrite, control rewrote or drifted >5%, unobserved straggler, \
             or row mismatch)"
        );
        std::process::exit(1);
    }
}
