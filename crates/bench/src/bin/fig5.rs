//! Regenerates Figure 5: SSB with non-GPU-fitting working sets (nominal
//! SF1000), pre-loaded in CPU memory for all systems.
//!
//! Usage: `cargo run --release -p hetex-bench --bin fig5`

fn main() {
    let sf = hetex_bench::workload::physical_sf_from_env();
    println!("physical SF = {sf}, modeling nominal SF1000\n");
    if let Err(e) = hetex_bench::figures::figure5(sf) {
        eprintln!("figure 5 failed: {e}");
        std::process::exit(1);
    }
}
