//! Emit `BENCH_pipeline.json`: pipelined vs stage-at-a-time A/B numbers for
//! the join+reduce acceptance workload and the SSB queries.

use hetex_bench::pipeline_ab;

fn main() {
    let report = pipeline_ab::run_all(200_000, 0.002).expect("A/B suite failed");
    for row in &report.rows {
        println!(
            "{:<28} pipelined {:>9.4}s  stage-at-a-time {:>9.4}s  improvement {:>6.2}%  rows_identical {}",
            row.workload,
            row.pipelined_s,
            row.stage_at_a_time_s,
            row.improvement_pct(),
            row.rows_identical
        );
    }
    let path = "BENCH_pipeline.json";
    std::fs::write(path, report.to_json()).expect("write BENCH_pipeline.json");
    println!("wrote {path}");
}
