//! Emit `BENCH_pipeline.json`: pipelined vs stage-at-a-time A/B numbers for
//! the join+reduce acceptance workload and the SSB queries.
//!
//! Usage: `pipeline_ab [out_dir]` — writes `BENCH_pipeline.json` into
//! `out_dir` (default: the current directory).

use hetex_bench::pipeline_ab;

fn main() {
    let report = pipeline_ab::run_all(200_000, 0.002).expect("A/B suite failed");
    for row in &report.rows {
        println!(
            "{:<28} pipelined {:>9.4}s  stage-at-a-time {:>9.4}s  improvement {:>6.2}%  rows_identical {}",
            row.workload,
            row.pipelined_s,
            row.stage_at_a_time_s,
            row.improvement_pct(),
            row.rows_identical
        );
    }
    let path = hetex_bench::bench_output_path(
        std::env::args().nth(1).map(Into::into),
        "BENCH_pipeline.json",
    );
    std::fs::write(&path, report.to_json()).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());
}
