//! Regenerates Figure 8: microbenchmark size-up at DOP = 1 — execution time of
//! the sum and join queries, with and without the HetExchange operators, over
//! input sizes from 0.125 GB to 16 GB.
//!
//! Usage: `cargo run --release -p hetex-bench --bin fig8`

fn main() {
    let sizes = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    if let Err(e) = hetex_bench::figures::figure8(200_000, &sizes) {
        eprintln!("figure 8 failed: {e}");
        std::process::exit(1);
    }
}
