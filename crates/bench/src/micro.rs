//! The microbenchmark workload of §6.4.
//!
//! Two queries over purpose-built tables:
//!
//! * **sum** — `SELECT SUM(a) FROM t`, bandwidth-bound and therefore
//!   CPU-friendly (the GPU sits behind the much-slower-than-DRAM PCIe link);
//! * **join** — the count of a non-partitioned 1:N join whose probe side is a
//!   single large column and whose build side is a 7.7 MB column,
//!   random-access bound and therefore GPU-friendly.
//!
//! The paper uses a 23 GB probe column; the physical tables here are small and
//! the `scale_weight` models the nominal size, exactly like the SSB workload.

use hetex_common::{ColumnData, DataType};
use hetex_common::{EngineConfig, Result};
use hetex_core::RelNode;
use hetex_engine::Proteus;
use hetex_jit::{AggSpec, Expr};
use hetex_storage::TableBuilder;
use hetex_topology::ServerTopology;
use std::sync::Arc;

/// The paper's probe-side column size (23 GB) and build-side size (7.7 MB).
pub const PAPER_PROBE_BYTES: f64 = 23.0e9;
/// Build-side column size used in §6.4.
pub const PAPER_BUILD_BYTES: f64 = 7.7e6;

/// The two microbenchmark queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroQuery {
    /// `SELECT SUM(a) FROM probe`.
    Sum,
    /// `SELECT COUNT(*) FROM probe JOIN build ON probe.key = build.key`.
    Join,
}

impl MicroQuery {
    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            MicroQuery::Sum => "sum",
            MicroQuery::Join => "join",
        }
    }
}

/// The constructed microbenchmark workload.
pub struct MicroWorkload {
    /// The engine holding the probe and build tables (CPU-resident).
    pub engine: Proteus,
    /// Physical bytes of the probe column.
    pub physical_probe_bytes: f64,
    /// Physical rows of the probe table.
    pub probe_rows: usize,
    /// Rows of the build table.
    pub build_rows: usize,
    /// Block capacity used for runs.
    pub block_capacity: usize,
}

impl MicroWorkload {
    /// Build the workload with `probe_rows` physical probe tuples and a build
    /// side sized like the paper's (7.7 MB ≈ one million 8-byte keys, scaled
    /// down proportionally to the probe side).
    pub fn build(probe_rows: usize) -> Result<MicroWorkload> {
        let topology = ServerTopology::paper_server();
        let engine = Proteus::new(Arc::clone(&topology));
        let nodes = topology.cpu_memory_nodes();
        let build_rows = ((PAPER_BUILD_BYTES / 8.0) as usize).min(probe_rows.max(1)).max(1_000);

        // Probe table: a measure column and a key column referencing the build
        // side (every probe row matches exactly one build row).
        let values: Vec<i64> = (0..probe_rows as i64).map(|i| i % 1_000).collect();
        let keys: Vec<i64> = (0..probe_rows as i64)
            .map(|i| (i.wrapping_mul(2_654_435_761) % build_rows as i64).abs())
            .collect();
        let segment_rows = (probe_rows / 8).max(1_024);
        let probe = TableBuilder::new("probe")
            .column("a", DataType::Int64, ColumnData::Int64(values))
            .column("key", DataType::Int64, ColumnData::Int64(keys))
            .build(&nodes, segment_rows)?;
        let build = TableBuilder::new("build")
            .column("key", DataType::Int64, ColumnData::Int64((0..build_rows as i64).collect()))
            .build(&nodes, segment_rows)?;
        engine.register_table(probe);
        engine.register_table(build);

        Ok(MicroWorkload {
            engine,
            physical_probe_bytes: probe_rows as f64 * 8.0,
            probe_rows,
            build_rows,
            block_capacity: (probe_rows / 256).clamp(128, 64 * 1024),
        })
    }

    /// The plan of a microbenchmark query. The sum query scans only the
    /// measure column; the join query scans only the key column — both model
    /// the paper's single-column inputs.
    pub fn plan(&self, query: MicroQuery) -> RelNode {
        match query {
            MicroQuery::Sum => {
                RelNode::scan("probe", &["a"]).reduce(vec![AggSpec::sum(Expr::col(0))], &["sum_a"])
            }
            MicroQuery::Join => {
                let build = RelNode::scan("build", &["key"]);
                RelNode::scan("probe", &["key"])
                    .hash_join(build, 0, 0, &[])
                    .reduce(vec![AggSpec::count()], &["matches"])
            }
        }
    }

    /// Engine configuration modeling `nominal_probe_bytes` of input. The
    /// build side keeps its paper size (7.7 MB) regardless of the probe-side
    /// sweep, so it gets its own weight.
    pub fn config(&self, mut base: EngineConfig, nominal_probe_bytes: f64) -> EngineConfig {
        let probe_weight = (nominal_probe_bytes / self.physical_probe_bytes).max(1e-6);
        let build_weight = (PAPER_BUILD_BYTES / (self.build_rows as f64 * 8.0)).max(1.0);
        base.scale_weight = probe_weight;
        base.table_weights =
            vec![("probe".to_string(), probe_weight), ("build".to_string(), build_weight)];
        base.block_capacity = self.block_capacity;
        base
    }

    /// Run one query and return the simulated seconds.
    pub fn run(
        &self,
        query: MicroQuery,
        base: EngineConfig,
        nominal_probe_bytes: f64,
    ) -> Result<f64> {
        let config = self.config(base, nominal_probe_bytes);
        Ok(self.engine.session().execute(&self.plan(query), &config)?.seconds())
    }

    /// Exact expected result of a query on the physical data (for validation).
    pub fn expected(&self, query: MicroQuery) -> i64 {
        match query {
            MicroQuery::Sum => (0..self.probe_rows as i64).map(|i| i % 1_000).sum(),
            MicroQuery::Join => self.probe_rows as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_join_results_are_exact() {
        let w = MicroWorkload::build(20_000).unwrap();
        for query in [MicroQuery::Sum, MicroQuery::Join] {
            let outcome = w
                .engine
                .session()
                .execute(&w.plan(query), &w.config(EngineConfig::cpu_only(2), 1e9))
                .unwrap();
            assert_eq!(outcome.rows[0][0], w.expected(query), "{}", query.label());
        }
    }

    #[test]
    fn sum_is_cpu_friendly_and_join_is_gpu_friendly() {
        // §6.4: the sum query is bandwidth-bound (PCIe hurts the GPU); the
        // join query is random-access bound (the CPU suffers more).
        let w = MicroWorkload::build(50_000).unwrap();
        let nominal = 23.0e9;
        let cpu_sum = w.run(MicroQuery::Sum, EngineConfig::cpu_only(24), nominal).unwrap();
        let gpu_sum = w.run(MicroQuery::Sum, EngineConfig::gpu_only(2), nominal).unwrap();
        let cpu_join = w.run(MicroQuery::Join, EngineConfig::cpu_only(24), nominal).unwrap();
        let gpu_join = w.run(MicroQuery::Join, EngineConfig::gpu_only(2), nominal).unwrap();
        assert!(cpu_sum < gpu_sum, "sum: cpu {cpu_sum} should beat gpu {gpu_sum}");
        assert!(gpu_join < cpu_join, "join: gpu {gpu_join} should beat cpu {cpu_join}");
    }

    #[test]
    fn scale_weight_follows_nominal_bytes() {
        let w = MicroWorkload::build(10_000).unwrap();
        let cfg = w.config(EngineConfig::cpu_only(1), 8.0e9);
        assert!((cfg.scale_weight - 8.0e9 / (10_000.0 * 8.0)).abs() < 1e-9);
        assert_eq!(MicroQuery::Sum.label(), "sum");
    }
}
