//! # hetex-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! paper's evaluation (§6):
//!
//! | Paper artefact | Regenerate with |
//! |---|---|
//! | Table 1 (device-provider interface) | `cargo run --release -p hetex-bench --bin table1` |
//! | Figure 4 (SSB SF100, GPU-fitting working sets) | `... --bin fig4` |
//! | Figure 5 (SSB SF1000, non-GPU-fitting working sets) | `... --bin fig5` |
//! | Figure 6 (scalability of Proteus on SSB SF1000) | `... --bin fig6` |
//! | Figure 7 (microbenchmark scale-up: sum and join) | `... --bin fig7` |
//! | Figure 8 (microbenchmark size-up at DOP = 1) | `... --bin fig8` |
//!
//! `cargo bench --workspace` additionally runs Criterion micro-benchmarks of
//! the HetExchange operators and a reduced-size smoke pass over the figure
//! harnesses.
//!
//! ## Scale modeling
//!
//! The paper evaluates SF100 (~60 GB) and SF1000 (~600 GB). Generating those
//! datasets is neither possible nor useful on this machine, so every figure
//! runs on a physically small dataset (default physical SF ≈ 0.02, overridable
//! with the `HETEX_PHYSICAL_SF` environment variable) while the engines'
//! `scale_weight` models the nominal volume. Functional results stay exact;
//! modeled execution times scale to the nominal data size. EXPERIMENTS.md
//! records the shape comparison against the paper's reported numbers.

pub mod calib_ab;
pub mod fault_ab;
pub mod figures;
pub mod kernel_ab;
pub mod micro;
pub mod pipeline_ab;
pub mod reopt_ab;
pub mod report;
pub mod serve_ab;
pub mod staging_ab;
pub mod steal_ab;
pub mod systems;
pub mod workload;

pub use report::{print_matrix, QueryTimeRow};
pub use systems::System;
pub use workload::SsbWorkload;

/// Where a bench bin writes its `BENCH_*.json`: into `dir` (created if
/// missing) when one is given, the current directory otherwise. The bins
/// pass their first CLI argument — argument parsing stays in each `main`,
/// this helper only resolves (and prepares) the path.
///
/// The directory argument exists so CI (and any comparison run) can
/// generate fresh numbers *next to* the checked-in baselines instead of
/// overwriting them in place: the old flow snapshotted the committed
/// `BENCH_*.json` to a temporary directory before the bins clobbered them,
/// and a bin that ran before the snapshot silently compared a file against
/// itself.
pub fn bench_output_path(dir: Option<std::path::PathBuf>, file: &str) -> std::path::PathBuf {
    let dir = dir.unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("create bench output dir {}: {e}", dir.display()));
    }
    dir.join(file)
}

/// Observed per-stage selectivities of a finished query — one entry per
/// recorded stage (`QueryStats::observed_selectivity`), `None` when a stage
/// saw no input. The A/B harnesses report these next to their a-priori
/// workload selectivity labels so the committed artifacts carry *measured*
/// per-stage row behaviour, the same signal the plan reoptimizer feeds on.
pub fn observed_selectivities(stats: &hetex_engine::QueryStats) -> Vec<Option<f64>> {
    (0..stats.stage_rows.len()).map(|i| stats.observed_selectivity(i)).collect()
}

/// Render observed per-stage selectivities as a JSON array fragment, `null`
/// for a stage that saw no input. Shared by the A/B report serializers.
pub fn selectivities_json(sels: &[Option<f64>]) -> String {
    let items: Vec<String> =
        sels.iter().map(|s| s.map_or_else(|| "null".to_string(), |v| format!("{v:.4}"))).collect();
    format!("[{}]", items.join(", "))
}
