//! A/B harness: vectorized vs tuple-at-a-time CPU kernels.
//!
//! Runs the same plans under both [`KernelMode`](hetex_common::KernelMode)s
//! on a CPU-only engine and reports simulated end-to-end times, the
//! improvement, the workload's filter selectivity, and whether the result
//! rows were byte-identical. Four SSB-shaped workloads:
//!
//! * **filter-heavy, low selectivity** — one narrow column under a fat
//!   predicate (`BETWEEN` + `IN` + arithmetic) keeping 1% of rows. This
//!   is where per-tuple dispatch hurts most: the tuple-at-a-time loop is
//!   compute-bound on predicate evaluation while the vectorized kernel's
//!   tight selection-refinement loops drop it to the memory floor. The
//!   acceptance bar (≥ 20% improvement) gates this shape.
//! * **filter-heavy, high selectivity** — the same predicate weight keeping
//!   ~90%, so the terminal also runs nearly per input tuple. Also gated.
//! * **join-probe** — the hybrid acceptance join on CPU only. Probing is a
//!   per-tuple random access in either mode (the hash work carries no
//!   vectorization discount), so the expected gain is small; reported, not
//!   gated.
//! * **group-by** — 64 groups, two aggregates. Group lookup is per-tuple
//!   hashing either way; only the key/aggregate expression evaluation
//!   vectorizes. Reported, not gated.
//!
//! `cargo run --release -p hetex-bench --bin kernel_ab` emits
//! `BENCH_kernel.json`.

use crate::pipeline_ab::join_reduce_engine;
use hetex_common::{ColumnData, DataType, EngineConfig, KernelMode, Result};
use hetex_core::RelNode;
use hetex_engine::Proteus;
use hetex_jit::{AggSpec, Expr, VEC_CHUNK};
use hetex_storage::TableBuilder;
use hetex_topology::ServerTopology;

/// One vectorized vs tuple-at-a-time measurement.
#[derive(Debug, Clone)]
pub struct KernelAbRow {
    /// Workload label.
    pub workload: String,
    /// Simulated seconds with `KernelMode::Vectorized` (the default).
    pub vectorized_s: f64,
    /// Simulated seconds with `KernelMode::TupleAtATime` (the legacy
    /// differential baseline).
    pub tuple_at_a_time_s: f64,
    /// Fraction of scanned rows the workload's filter keeps (1.0 when the
    /// plan has no filter).
    pub selectivity: f64,
    /// Observed per-stage selectivities (`rows_out / rows_in`) of the
    /// vectorized run — the *measured* counterpart of the constructed
    /// `selectivity` label, `None` for a stage that saw no input.
    pub observed_stage_selectivities: Vec<Option<f64>>,
    /// Whether both modes produced byte-identical result rows.
    pub rows_identical: bool,
}

impl KernelAbRow {
    /// Relative improvement of vectorized over tuple-at-a-time, in percent
    /// (negative = vectorization cost time).
    pub fn improvement_pct(&self) -> f64 {
        if self.tuple_at_a_time_s <= 0.0 {
            return 0.0;
        }
        (1.0 - self.vectorized_s / self.tuple_at_a_time_s) * 100.0
    }
}

/// The full kernel A/B report.
#[derive(Debug, Clone, Default)]
pub struct KernelAbReport {
    /// Every measured workload.
    pub rows: Vec<KernelAbRow>,
}

impl KernelAbReport {
    /// Look up a row by workload label.
    pub fn get(&self, workload: &str) -> Option<&KernelAbRow> {
        self.rows.iter().find(|r| r.workload == workload)
    }

    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency). `chunk_tuples` is a report-level constant: every
    /// workload ran with the same [`VEC_CHUNK`]-tuple chunks.
    pub fn to_json(&self) -> String {
        let mut out =
            String::from("{\n  \"benchmark\": \"kernel_vectorized_vs_tuple_at_a_time\",\n");
        out.push_str(&format!(
            "  \"metric\": \"simulated_seconds\",\n  \"chunk_tuples\": {VEC_CHUNK},\n  \"workloads\": [\n"
        ));
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"vectorized_s\": {:.9}, \
                 \"tuple_at_a_time_s\": {:.9}, \"improvement_pct\": {:.2}, \
                 \"selectivity\": {:.4}, \"observed_stage_selectivities\": {}, \
                 \"rows_identical\": {}}}{}\n",
                row.workload,
                row.vectorized_s,
                row.tuple_at_a_time_s,
                row.improvement_pct(),
                row.selectivity,
                crate::selectivities_json(&row.observed_stage_selectivities),
                row.rows_identical,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// No-regression tolerance for the random-access-bound shapes (join probe,
/// group-by): vectorization carries no speedup bar there, but must not cost
/// meaningful time. The 2% headroom absorbs wall-clock scheduling jitter in
/// governed pipelined execution (live arena occupancy makes single runs
/// schedule-sensitive even without stealing) — it is an allowance for
/// measurement noise, not a performance budget.
pub const NO_REGRESSION_FACTOR: f64 = 1.02;

/// The CPU-only configuration every kernel workload runs under: the kernel
/// A/B isolates the CPU lowering, so no GPUs participate, and the same
/// scale extrapolation as the other A/B suites keeps per-block work well
/// above the fixed router-initialization overhead.
fn base_config() -> EngineConfig {
    let mut config = EngineConfig::cpu_only(8);
    config.scale_weight = 20_000.0;
    config.block_capacity = 2048;
    config
}

/// Run one plan under both kernel modes and compare.
pub fn kernel_ab_compare(
    engine: &Proteus,
    plan: &RelNode,
    base: &EngineConfig,
    workload: &str,
    selectivity: f64,
) -> Result<KernelAbRow> {
    let vectorized =
        engine.session().execute(plan, &base.clone().with_kernel_mode(KernelMode::Vectorized))?;
    let taat =
        engine.session().execute(plan, &base.clone().with_kernel_mode(KernelMode::TupleAtATime))?;
    let observed = crate::observed_selectivities(&vectorized.stats);
    Ok(KernelAbRow {
        workload: workload.to_string(),
        vectorized_s: vectorized.seconds(),
        tuple_at_a_time_s: taat.seconds(),
        selectivity,
        observed_stage_selectivities: observed,
        rows_identical: vectorized.rows == taat.rows,
    })
}

/// Build a single-column engine for the filter-heavy workloads: `v` cycles
/// through 0..1000, so predicate selectivities are exact by construction.
/// One narrow `Int64` column keeps the memory floor low (8 bytes/tuple);
/// the per-tuple win must come from dispatch + predicate compute, which is
/// exactly what the vectorized lowering attacks.
fn filter_engine(rows: usize) -> Result<Proteus> {
    let topology = ServerTopology::paper_server();
    let nodes = topology.cpu_memory_nodes();
    let engine = Proteus::new(topology);
    let table = TableBuilder::new("t")
        .column(
            "v",
            DataType::Int64,
            ColumnData::Int64((0..rows as i64).map(|i| i % 1000).collect()),
        )
        .build(&nodes, 4096)?;
    engine.register_table(table);
    Ok(engine)
}

/// The fat low-selectivity predicate: `v BETWEEN 100 AND 119 AND v IN
/// (a 16-entry list) AND v*v > 0` — keeps 10 of every 1000 values (1%)
/// while costing ~15 simple ops per evaluation, enough that the
/// tuple-at-a-time loop is predicate-compute-bound.
fn low_selectivity_predicate() -> Expr {
    let in_evens: Vec<i64> = (100..120).step_by(2).chain((120..132).step_by(2)).collect();
    Expr::col(0)
        .between(100, 119)
        .and(Expr::col(0).in_list(in_evens))
        .and(Expr::col(0).mul(Expr::col(0)).gt_lit(0))
}

/// Exact selectivity of [`low_selectivity_predicate`] over `v = i % 1000`:
/// the evens of 100..120 (the `BETWEEN` clips the 120..132 tail, and
/// squares of positive values always pass the arithmetic clause).
const LOW_SELECTIVITY: f64 = 10.0 / 1000.0;

/// The fat high-selectivity predicate: the same op weight (`BETWEEN` +
/// arithmetic clauses), keeping 90% of values.
fn high_selectivity_predicate() -> Expr {
    Expr::col(0)
        .between(0, 899)
        .and(Expr::col(0).mul(Expr::col(0)).gt_lit(-1))
        .and(Expr::col(0).sub(Expr::lit(1000)).lt_lit(0))
        .and(
            Expr::col(0)
                .in_list((0..16).map(|i| i * 64).collect())
                .or(Expr::col(0).between(0, 899)),
        )
}

/// Exact selectivity of [`high_selectivity_predicate`] over `v = i % 1000`.
const HIGH_SELECTIVITY: f64 = 900.0 / 1000.0;

/// Filter-heavy workload: `SELECT SUM(v), COUNT(*) FROM t WHERE <pred>`.
fn filter_heavy_ab(
    rows: usize,
    predicate: Expr,
    selectivity: f64,
    label: &str,
) -> Result<KernelAbRow> {
    let engine = filter_engine(rows)?;
    let plan = RelNode::scan("t", &["v"])
        .filter(predicate)
        .reduce(vec![AggSpec::sum(Expr::col(0)), AggSpec::count()], &["sum_v", "cnt"]);
    kernel_ab_compare(&engine, &plan, &base_config(), label, selectivity)
}

/// Filter-heavy, 1% selectivity (the gated shape).
pub fn filter_low_selectivity_ab(rows: usize) -> Result<KernelAbRow> {
    filter_heavy_ab(
        rows,
        low_selectivity_predicate(),
        LOW_SELECTIVITY,
        &format!("filter_heavy_{}k_low_sel", rows / 1000),
    )
}

/// Filter-heavy, 90% selectivity (also gated).
pub fn filter_high_selectivity_ab(rows: usize) -> Result<KernelAbRow> {
    filter_heavy_ab(
        rows,
        high_selectivity_predicate(),
        HIGH_SELECTIVITY,
        &format!("filter_heavy_{}k_high_sel", rows / 1000),
    )
}

/// Join-probe workload: the acceptance join+reduce plan on CPU only. The
/// dimension filter keeps `attr < 3` of 7 values.
pub fn join_probe_ab(fact_rows: usize) -> Result<KernelAbRow> {
    let (engine, plan) = join_reduce_engine(fact_rows)?;
    let config = base_config().with_table_weight("dim", 2_500.0);
    kernel_ab_compare(
        &engine,
        &plan,
        &config,
        &format!("join_probe_{}k_cpu", fact_rows / 1000),
        3.0 / 7.0,
    )
}

/// Group-by workload: `SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g` over
/// 64 groups (no filter; selectivity 1.0).
pub fn group_by_ab(rows: usize) -> Result<KernelAbRow> {
    let topology = ServerTopology::paper_server();
    let nodes = topology.cpu_memory_nodes();
    let engine = Proteus::new(topology);
    let table = TableBuilder::new("t")
        .column("g", DataType::Int64, ColumnData::Int64((0..rows as i64).map(|i| i % 64).collect()))
        .column("v", DataType::Int64, ColumnData::Int64((0..rows as i64).collect()))
        .build(&nodes, 4096)?;
    engine.register_table(table);
    let plan = RelNode::scan("t", &["g", "v"]).group_by(
        &[0],
        vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
        &["sum_v", "cnt"],
    );
    kernel_ab_compare(
        &engine,
        &plan,
        &base_config(),
        &format!("group_by_{}k_64_groups", rows / 1000),
        1.0,
    )
}

/// Of `runs` repeated measurements, the one with the median improvement —
/// governed pipelined execution prices live arena occupancy, so single runs
/// carry a little wall-clock sensitivity even without stealing.
fn median_by_improvement(mut runs: Vec<KernelAbRow>) -> KernelAbRow {
    runs.sort_by(|a, b| {
        a.improvement_pct().partial_cmp(&b.improvement_pct()).unwrap_or(std::cmp::Ordering::Equal)
    });
    runs.swap_remove(runs.len() / 2)
}

/// Run the kernel A/B suite: both filter-heavy shapes, the join-probe and
/// the group-by, each reported as the median of three measurements.
pub fn run_all(rows: usize) -> Result<KernelAbReport> {
    let median = |f: &dyn Fn() -> Result<KernelAbRow>| -> Result<KernelAbRow> {
        Ok(median_by_improvement((0..3).map(|_| f()).collect::<Result<Vec<_>>>()?))
    };
    Ok(KernelAbReport {
        rows: vec![
            median(&|| filter_low_selectivity_ab(rows))?,
            median(&|| filter_high_selectivity_ab(rows))?,
            median(&|| join_probe_ab(rows / 2))?,
            median(&|| group_by_ab(rows / 2))?,
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_filter_heavy_is_20_percent_faster_vectorized() {
        // Acceptance criterion: on both filter-heavy CPU workloads the
        // vectorized kernel improves simulated end-to-end time by >= 20%
        // with byte-identical rows.
        for row in [
            filter_low_selectivity_ab(400_000).unwrap(),
            filter_high_selectivity_ab(400_000).unwrap(),
        ] {
            assert!(row.rows_identical, "{}: kernel modes must agree on rows", row.workload);
            assert!(
                row.improvement_pct() >= 20.0,
                "{}: vectorized {}s vs tuple-at-a-time {}s, improvement {:.1}% < 20%",
                row.workload,
                row.vectorized_s,
                row.tuple_at_a_time_s,
                row.improvement_pct()
            );
        }
    }

    #[test]
    fn join_probe_and_group_by_agree_and_never_regress() {
        // The random-access-bound shapes carry no 20% bar (hash work is not
        // vectorizable), but the rows must match and vectorization must not
        // cost meaningful time. Measured like the bin: median of three, with
        // the same 2% schedule-sensitivity allowance (governed pipelined
        // execution on 8 workers carries a little wall-clock jitter).
        let median = |f: &dyn Fn() -> Result<KernelAbRow>| -> KernelAbRow {
            median_by_improvement((0..3).map(|_| f().unwrap()).collect())
        };
        for row in [median(&|| join_probe_ab(100_000)), median(&|| group_by_ab(100_000))] {
            assert!(row.rows_identical, "{}: kernel modes must agree on rows", row.workload);
            assert!(
                row.vectorized_s <= row.tuple_at_a_time_s * NO_REGRESSION_FACTOR,
                "{}: vectorized {}s slower than tuple-at-a-time {}s",
                row.workload,
                row.vectorized_s,
                row.tuple_at_a_time_s
            );
        }
    }

    #[test]
    fn observed_stage_selectivity_reproduces_the_dimension_filter() {
        // The join-probe's first stage is the dimension filter: its observed
        // rows_out/rows_in must reproduce the constructed 3/7 selectivity.
        // Downstream consumer stages (hash build, reduce) legitimately
        // observe ~0 — they absorb rows into operator state.
        let row = join_probe_ab(50_000).unwrap();
        let first = row.observed_stage_selectivities[0].expect("the filter stage saw input");
        assert!(
            (first - row.selectivity).abs() < 0.01,
            "observed stage-0 selectivity {first} != constructed {}",
            row.selectivity
        );
    }

    #[test]
    fn predicate_selectivities_match_their_constants() {
        // The committed selectivity labels are exact properties of the
        // generated data, not estimates — pin them against a direct count.
        let low = low_selectivity_predicate();
        let high = high_selectivity_predicate();
        let matches = |p: &Expr| (0..1000).filter(|&v| p.eval_bool(&[v])).count() as f64 / 1000.0;
        assert!((matches(&low) - LOW_SELECTIVITY).abs() < 1e-12);
        assert!((matches(&high) - HIGH_SELECTIVITY).abs() < 1e-12);
    }

    #[test]
    fn report_json_shape() {
        let report = KernelAbReport {
            rows: vec![KernelAbRow {
                workload: "w".into(),
                vectorized_s: 0.8,
                tuple_at_a_time_s: 1.0,
                selectivity: 0.016,
                observed_stage_selectivities: vec![Some(0.016), None, Some(1.0)],
                rows_identical: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains(&format!("\"chunk_tuples\": {VEC_CHUNK}")));
        assert!(json.contains("\"improvement_pct\": 20.00"));
        assert!(json.contains("\"selectivity\": 0.0160"));
        assert!(json.contains("\"observed_stage_selectivities\": [0.0160, null, 1.0000]"));
        assert!(json.contains("\"rows_identical\": true"));
        assert!(report.get("w").is_some());
    }
}
