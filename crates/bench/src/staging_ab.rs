//! A/B harness: byte-budget staging governance on vs off.
//!
//! Runs the pipelined executor over the join+reduce hybrid acceptance
//! workload twice — once with the per-node staging byte budget enabled
//! (`EngineConfig::staging_bytes = Some(..)`, every queued block backed by a
//! `BlockLease`) and once with governance disabled (`None`, the PR 1
//! handle-count-only behaviour) — and reports simulated end-to-end times, the
//! relative overhead, the per-node peak staged bytes, and whether the result
//! rows were byte-identical. The acceptance bar: governance must stay within
//! 5% of the ungoverned throughput on identical row counts. `cargo run
//! --release -p hetex-bench --bin staging_ab` emits `BENCH_staging.json`.

use crate::pipeline_ab::join_reduce_engine;
use hetex_common::config::DEFAULT_STAGING_BYTES;
use hetex_common::{EngineConfig, ExecutionMode, Result};

/// One governed-vs-ungoverned measurement.
#[derive(Debug, Clone)]
pub struct StagingAbRow {
    /// Workload label.
    pub workload: String,
    /// Per-node staging budget used for the governed run, in bytes.
    pub budget_bytes: u64,
    /// Simulated seconds with byte-budget governance.
    pub governed_s: f64,
    /// Simulated seconds without governance (PR 1 behaviour).
    pub ungoverned_s: f64,
    /// Largest per-node peak of leased staging bytes in the governed run.
    pub peak_leased_bytes: u64,
    /// Whether both runs produced byte-identical result rows.
    pub rows_identical: bool,
}

impl StagingAbRow {
    /// Relative overhead of governance, in percent (positive = slower).
    pub fn overhead_pct(&self) -> f64 {
        if self.ungoverned_s <= 0.0 {
            return 0.0;
        }
        (self.governed_s / self.ungoverned_s - 1.0) * 100.0
    }
}

/// The full governed-vs-ungoverned report.
#[derive(Debug, Clone, Default)]
pub struct StagingAbReport {
    /// Every measured workload.
    pub rows: Vec<StagingAbRow>,
}

impl StagingAbReport {
    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"staging_governance_ab\",\n");
        out.push_str("  \"metric\": \"simulated_seconds\",\n  \"workloads\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"budget_bytes\": {}, \"governed_s\": {:.9}, \
                 \"ungoverned_s\": {:.9}, \"overhead_pct\": {:.2}, \"peak_leased_bytes\": {}, \
                 \"rows_identical\": {}}}{}\n",
                row.workload,
                row.budget_bytes,
                row.governed_s,
                row.ungoverned_s,
                row.overhead_pct(),
                row.peak_leased_bytes,
                row.rows_identical,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The acceptance workload: join+reduce over `fact_rows` fact rows on
/// `EngineConfig::hybrid(8, 2)` in pipelined mode, with and without the
/// staging byte budget (same scale extrapolation as `pipeline_ab`).
pub fn join_reduce_staging_ab(fact_rows: usize) -> Result<StagingAbRow> {
    let (engine, plan) = join_reduce_engine(fact_rows)?;
    let mut base = EngineConfig::hybrid(8, 2).with_execution_mode(ExecutionMode::Pipelined);
    base.scale_weight = 20_000.0;
    base.block_capacity = 2048;
    let base = base.with_table_weight("dim", 2_500.0);

    let budget = DEFAULT_STAGING_BYTES;
    let governed = engine.execute(&plan, &base.clone().with_staging_bytes(Some(budget)))?;
    let ungoverned = engine.execute(&plan, &base.clone().with_staging_bytes(None))?;
    Ok(StagingAbRow {
        workload: format!("join_reduce_{}k_hybrid_8_2", fact_rows / 1000),
        budget_bytes: budget,
        governed_s: governed.seconds(),
        ungoverned_s: ungoverned.seconds(),
        peak_leased_bytes: governed
            .stats
            .staging_peaks
            .iter()
            .map(|(_, peak)| *peak)
            .max()
            .unwrap_or(0),
        rows_identical: governed.rows == ungoverned.rows,
    })
}

/// Run the A/B suite (currently the join+reduce acceptance workload).
pub fn run_all(fact_rows: usize) -> Result<StagingAbReport> {
    Ok(StagingAbReport { rows: vec![join_reduce_staging_ab(fact_rows)?] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governance_costs_at_most_5_percent_on_the_acceptance_workload() {
        // Acceptance criterion: the governed pipelined executor stays within
        // 5% of PR 1's ungoverned simulated time on the join+reduce hybrid
        // workload, with identical rows, and every staged block was backed by
        // a lease (a non-zero peak within the budget).
        let row = join_reduce_staging_ab(200_000).unwrap();
        assert!(row.rows_identical, "governance must not change results");
        assert!(
            row.overhead_pct() <= 5.0,
            "governed {}s vs ungoverned {}s: overhead {:.2}% > 5%",
            row.governed_s,
            row.ungoverned_s,
            row.overhead_pct()
        );
        assert!(row.peak_leased_bytes > 0, "no block was ever lease-backed");
        assert!(row.peak_leased_bytes <= row.budget_bytes, "peak exceeded the budget");
    }

    #[test]
    fn report_json_shape() {
        let report = StagingAbReport {
            rows: vec![StagingAbRow {
                workload: "w".into(),
                budget_bytes: 1024,
                governed_s: 1.05,
                ungoverned_s: 1.0,
                peak_leased_bytes: 512,
                rows_identical: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"overhead_pct\": 5.00"));
        assert!(json.contains("\"peak_leased_bytes\": 512"));
        assert!(json.contains("\"rows_identical\": true"));
    }
}
