//! A/B harness: byte-budget staging governance on vs off.
//!
//! Runs the pipelined executor over the join+reduce hybrid acceptance
//! workload twice — once with the per-node staging byte budget enabled
//! (`EngineConfig::staging_bytes = Some(..)`, every queued block backed by a
//! `BlockLease`) and once with governance disabled (`None`, the PR 1
//! handle-count-only behaviour) — and reports simulated end-to-end times, the
//! relative overhead, the per-node peak staged bytes, and whether the result
//! rows were byte-identical. The acceptance bar: governance must stay within
//! 5% of the ungoverned throughput on identical row counts. `cargo run
//! --release -p hetex-bench --bin staging_ab` emits `BENCH_staging.json`.

use crate::pipeline_ab::join_reduce_engine;
use hetex_common::config::DEFAULT_STAGING_BYTES;
use hetex_common::{EngineConfig, ExecutionMode, Result};

/// The demand-weighted quota A/B (cost-model term 1) reuses the governed
/// acceptance workload with a deliberately *tight* budget — at the default
/// 64 MiB the quotas never bind, so the split policy would be unobservable.
/// Tight means a small multiple of the validation floor: admission quotas
/// genuinely park producers and the re-split has something to re-balance.
const DEMAND_QUOTA_BUDGET_FLOORS: u64 = 3;

/// One governed-vs-ungoverned measurement.
#[derive(Debug, Clone)]
pub struct StagingAbRow {
    /// Workload label.
    pub workload: String,
    /// Per-node staging budget used for the governed run, in bytes.
    pub budget_bytes: u64,
    /// Simulated seconds with byte-budget governance.
    pub governed_s: f64,
    /// Simulated seconds without governance (PR 1 behaviour).
    pub ungoverned_s: f64,
    /// Largest per-node peak of leased staging bytes in the governed run.
    pub peak_leased_bytes: u64,
    /// Whether both runs produced byte-identical result rows.
    pub rows_identical: bool,
    /// What the two time fields measured — emitted into the JSON so the
    /// committed artifact is self-describing (the demand-quota variant
    /// reuses the fields with both sides governed).
    pub note: &'static str,
}

impl StagingAbRow {
    /// Relative overhead of governance, in percent (positive = slower).
    pub fn overhead_pct(&self) -> f64 {
        if self.ungoverned_s <= 0.0 {
            return 0.0;
        }
        (self.governed_s / self.ungoverned_s - 1.0) * 100.0
    }
}

/// The full governed-vs-ungoverned report.
#[derive(Debug, Clone, Default)]
pub struct StagingAbReport {
    /// Every measured workload.
    pub rows: Vec<StagingAbRow>,
}

impl StagingAbReport {
    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"staging_governance_ab\",\n");
        out.push_str("  \"metric\": \"simulated_seconds\",\n  \"workloads\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"budget_bytes\": {}, \"governed_s\": {:.9}, \
                 \"ungoverned_s\": {:.9}, \"overhead_pct\": {:.2}, \"peak_leased_bytes\": {}, \
                 \"rows_identical\": {}, \"note\": \"{}\"}}{}\n",
                row.workload,
                row.budget_bytes,
                row.governed_s,
                row.ungoverned_s,
                row.overhead_pct(),
                row.peak_leased_bytes,
                row.rows_identical,
                row.note,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The acceptance workload: join+reduce over `fact_rows` fact rows on
/// `EngineConfig::hybrid(8, 2)` in pipelined mode, with and without the
/// staging byte budget (same scale extrapolation as `pipeline_ab`).
pub fn join_reduce_staging_ab(fact_rows: usize) -> Result<StagingAbRow> {
    let (engine, plan) = join_reduce_engine(fact_rows)?;
    let mut base = EngineConfig::hybrid(8, 2).with_execution_mode(ExecutionMode::Pipelined);
    base.scale_weight = 20_000.0;
    base.block_capacity = 2048;
    let base = base.with_table_weight("dim", 2_500.0);

    let budget = DEFAULT_STAGING_BYTES;
    let governed =
        engine.session().execute(&plan, &base.clone().with_staging_bytes(Some(budget)))?;
    let ungoverned = engine.session().execute(&plan, &base.clone().with_staging_bytes(None))?;
    Ok(StagingAbRow {
        workload: format!("join_reduce_{}k_hybrid_8_2", fact_rows / 1000),
        budget_bytes: budget,
        governed_s: governed.seconds(),
        ungoverned_s: ungoverned.seconds(),
        peak_leased_bytes: governed
            .stats
            .staging_peaks
            .iter()
            .map(|(_, peak)| *peak)
            .max()
            .unwrap_or(0),
        rows_identical: governed.rows == ungoverned.rows,
        note: "governed_s=byte-governed, ungoverned_s=ungoverned (PR 1)",
    })
}

/// Demand-weighted vs even staging quota split (cost-model term 1), both
/// governed under a tight budget: `governed_s` is the demand-weighted run,
/// `ungoverned_s` the even-split (PR 2) run. The acceptance bar mirrors the
/// governance bar: demand weighting must stay within 5% of the even split
/// on identical rows (its win is back-pressure fairness under skewed
/// per-stage demand, not raw simulated time).
pub fn join_reduce_demand_quota_ab(fact_rows: usize) -> Result<StagingAbRow> {
    let (engine, plan) = join_reduce_engine(fact_rows)?;
    let mut base = EngineConfig::hybrid(8, 2).with_execution_mode(ExecutionMode::Pipelined);
    base.scale_weight = 20_000.0;
    base.block_capacity = 2048;
    let mut base = base.with_table_weight("dim", 2_500.0);
    let budget = base.min_staging_bytes() * DEMAND_QUOTA_BUDGET_FLOORS;
    base.staging_bytes = Some(budget);

    let demand = engine.session().execute(&plan, &base)?;
    let even = engine.session().execute(
        &plan,
        &base.clone().with_cost_model(base.cost_model.with_demand_weighted_quotas(false)),
    )?;
    Ok(StagingAbRow {
        workload: format!("join_reduce_{}k_hybrid_8_2_demand_quota", fact_rows / 1000),
        budget_bytes: budget,
        governed_s: demand.seconds(),
        ungoverned_s: even.seconds(),
        peak_leased_bytes: demand
            .stats
            .staging_peaks
            .iter()
            .map(|(_, peak)| *peak)
            .max()
            .unwrap_or(0),
        rows_identical: demand.rows == even.rows,
        note: "governed_s=demand-weighted split, ungoverned_s=even split (both governed)",
    })
}

/// Run the A/B suite: the governed-vs-ungoverned acceptance workload plus
/// the demand-weighted quota variant.
pub fn run_all(fact_rows: usize) -> Result<StagingAbReport> {
    Ok(StagingAbReport {
        rows: vec![join_reduce_staging_ab(fact_rows)?, join_reduce_demand_quota_ab(fact_rows)?],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governance_costs_at_most_5_percent_on_the_acceptance_workload() {
        // Acceptance criterion: the governed pipelined executor stays within
        // 5% of PR 1's ungoverned simulated time on the join+reduce hybrid
        // workload, with identical rows, and every staged block was backed by
        // a lease (a non-zero peak within the budget).
        let row = join_reduce_staging_ab(200_000).unwrap();
        assert!(row.rows_identical, "governance must not change results");
        assert!(
            row.overhead_pct() <= 5.0,
            "governed {}s vs ungoverned {}s: overhead {:.2}% > 5%",
            row.governed_s,
            row.ungoverned_s,
            row.overhead_pct()
        );
        assert!(row.peak_leased_bytes > 0, "no block was ever lease-backed");
        assert!(row.peak_leased_bytes <= row.budget_bytes, "peak exceeded the budget");
    }

    #[test]
    fn demand_weighted_quotas_cost_at_most_5_percent_under_a_tight_budget() {
        // Cost-model term 1 acceptance: with admission quotas genuinely
        // binding (tight budget), the demand-weighted split stays within 5%
        // of the even split with identical rows and a governed peak.
        let row = join_reduce_demand_quota_ab(200_000).unwrap();
        assert!(row.rows_identical, "quota policy must not change results");
        assert!(
            row.overhead_pct() <= 5.0,
            "demand-weighted {}s vs even {}s: overhead {:.2}% > 5%",
            row.governed_s,
            row.ungoverned_s,
            row.overhead_pct()
        );
        assert!(row.peak_leased_bytes > 0, "no block was ever lease-backed");
        assert!(row.peak_leased_bytes <= row.budget_bytes, "peak exceeded the budget");
    }

    #[test]
    fn report_json_shape() {
        let report = StagingAbReport {
            rows: vec![StagingAbRow {
                workload: "w".into(),
                budget_bytes: 1024,
                governed_s: 1.05,
                ungoverned_s: 1.0,
                peak_leased_bytes: 512,
                rows_identical: true,
                note: "governed_s=a, ungoverned_s=b",
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"overhead_pct\": 5.00"));
        assert!(json.contains("\"peak_leased_bytes\": 512"));
        assert!(json.contains("\"rows_identical\": true"));
    }
}
