//! Result records and plain-text rendering of the figures.
//!
//! The figure binaries print aligned text tables — one row per SSB query (or
//! sweep point), one column per system/series — which is the textual
//! equivalent of the paper's bar charts and line plots.

/// One (query, system) measurement.
#[derive(Debug, Clone)]
pub struct QueryTimeRow {
    /// Query name ("Q1.1" … "Q4.3") or sweep label.
    pub query: String,
    /// System / series label.
    pub system: String,
    /// Execution time in seconds, `None` if the system failed the query.
    pub seconds: Option<f64>,
    /// Failure note (e.g. DBMS G on Q2.2).
    pub note: Option<String>,
}

impl QueryTimeRow {
    /// Render the time or the failure marker.
    pub fn rendered(&self) -> String {
        match self.seconds {
            Some(s) => format!("{s:.3}"),
            None => "FAIL".to_string(),
        }
    }
}

/// Pivot a list of rows into a query × system matrix and render it.
pub fn print_matrix(title: &str, rows: &[QueryTimeRow]) -> String {
    let mut queries: Vec<String> = Vec::new();
    let mut systems: Vec<String> = Vec::new();
    for row in rows {
        if !queries.contains(&row.query) {
            queries.push(row.query.clone());
        }
        if !systems.contains(&row.system) {
            systems.push(row.system.clone());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{:<10}", "query"));
    for system in &systems {
        out.push_str(&format!("{system:>18}"));
    }
    out.push('\n');
    for query in &queries {
        out.push_str(&format!("{query:<10}"));
        for system in &systems {
            let cell = rows
                .iter()
                .find(|r| &r.query == query && &r.system == system)
                .map(QueryTimeRow::rendered)
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!("{cell:>18}"));
        }
        out.push('\n');
    }
    let failures: Vec<&QueryTimeRow> = rows.iter().filter(|r| r.seconds.is_none()).collect();
    if !failures.is_empty() {
        out.push_str("failures:\n");
        for f in failures {
            out.push_str(&format!(
                "  {} on {}: {}\n",
                f.system,
                f.query,
                f.note.clone().unwrap_or_default()
            ));
        }
    }
    println!("{out}");
    out
}

/// Geometric-mean speed-up of `faster` over `slower` across the queries both
/// systems completed (the "up to X×" style summary statements of §6).
pub fn speedup_summary(rows: &[QueryTimeRow], slower: &str, faster: &str) -> Option<(f64, f64)> {
    let mut ratios = Vec::new();
    for row in rows.iter().filter(|r| r.system == faster) {
        let Some(fast) = row.seconds else { continue };
        let Some(slow) = rows
            .iter()
            .find(|r| r.system == slower && r.query == row.query)
            .and_then(|r| r.seconds)
        else {
            continue;
        };
        if fast > 0.0 {
            ratios.push(slow / fast);
        }
    }
    if ratios.is_empty() {
        return None;
    }
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let geo = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    Some((geo, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<QueryTimeRow> {
        vec![
            QueryTimeRow {
                query: "Q1.1".into(),
                system: "A".into(),
                seconds: Some(2.0),
                note: None,
            },
            QueryTimeRow {
                query: "Q1.1".into(),
                system: "B".into(),
                seconds: Some(1.0),
                note: None,
            },
            QueryTimeRow {
                query: "Q1.2".into(),
                system: "A".into(),
                seconds: Some(8.0),
                note: None,
            },
            QueryTimeRow {
                query: "Q1.2".into(),
                system: "B".into(),
                seconds: Some(2.0),
                note: None,
            },
            QueryTimeRow {
                query: "Q2.2".into(),
                system: "B".into(),
                seconds: None,
                note: Some("unsupported".into()),
            },
        ]
    }

    #[test]
    fn matrix_contains_all_cells_and_failures() {
        let text = print_matrix("test", &rows());
        assert!(text.contains("Q1.1"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("unsupported"));
        assert!(text.contains("2.000"));
        // Missing (query, system) combinations render as '-'.
        assert!(text.contains('-'));
    }

    #[test]
    fn speedup_summary_computes_geo_and_max() {
        let (geo, max) = speedup_summary(&rows(), "A", "B").unwrap();
        assert!((max - 4.0).abs() < 1e-9);
        assert!((geo - (2.0f64 * 4.0).sqrt()).abs() < 1e-9);
        assert!(speedup_summary(&rows(), "A", "missing").is_none());
    }
}
