//! A/B harness: online calibration (observed-slowdown feedback routing +
//! measured topology constants) on vs off — with **stealing disabled**, so
//! the feedback loop is the only defence against a hidden straggler.
//!
//! Two workloads, both the join+reduce hybrid acceptance plan in pipelined
//! mode with `StealPolicy::Disabled`:
//!
//! * **skewed** — the paper server with one GPU marked as a hidden 8×
//!   straggler. PR 3's answer was stealing the straggler's backlog *back*;
//!   calibration must instead stop the straggler from *receiving* new
//!   blocks: after its first completions the shared slowdown EWMA multiplies
//!   its projections by ~8× and least-loaded routing diverts the rest of the
//!   stream. Feedback routing alone must recover ≥ 20% of end-to-end
//!   simulated time with byte-identical rows.
//! * **unskewed** — the healthy paper server, where calibration must cost
//!   ≤ 2% (healthy EWMAs read exactly 1.0, so the only deltas are the
//!   measured constants replacing the declared ones).
//!
//! `cargo run --release -p hetex-bench --bin calib_ab [out_dir]` emits
//! `BENCH_calib.json`.

use crate::pipeline_ab::join_reduce_engine_on;
use hetex_common::{CalibrationConfig, EngineConfig, Result, StealPolicy};
use hetex_topology::ServerTopology;

/// Hidden slowdown factor of the straggler GPU in the skewed workload (the
/// same skew the stealing A/B uses, so the two defences are comparable).
pub const SKEW_FACTOR: f64 = 8.0;

/// One calibration-on vs calibration-off measurement.
#[derive(Debug, Clone)]
pub struct CalibAbRow {
    /// Workload label.
    pub workload: String,
    /// Simulated seconds with `CalibrationConfig::default()` (feedback
    /// routing + measured constants).
    pub calibrated_s: f64,
    /// Simulated seconds with `CalibrationConfig::disabled()` (the PR 4
    /// nominal-profile behaviour).
    pub nominal_s: f64,
    /// Whether both runs produced byte-identical result rows.
    pub rows_identical: bool,
    /// Largest observed-slowdown EWMA of any device in the calibrated run
    /// (~[`SKEW_FACTOR`] on the skewed workload, 1.0 on the healthy one).
    pub straggler_ewma: f64,
    /// The probe's measured control-plane round trip, nanoseconds.
    pub control_plane_ns: u64,
    /// Observed per-stage selectivities (`rows_out / rows_in`) of the
    /// calibrated run, `None` for a stage that saw no input.
    pub observed_stage_selectivities: Vec<Option<f64>>,
}

impl CalibAbRow {
    /// Relative improvement of calibrated over nominal routing, in percent
    /// (negative = calibration cost time).
    pub fn improvement_pct(&self) -> f64 {
        if self.nominal_s <= 0.0 {
            return 0.0;
        }
        (1.0 - self.calibrated_s / self.nominal_s) * 100.0
    }
}

/// The full calibration A/B report.
#[derive(Debug, Clone, Default)]
pub struct CalibAbReport {
    /// Every measured workload.
    pub rows: Vec<CalibAbRow>,
}

impl CalibAbReport {
    /// Look up a row by workload label.
    pub fn get(&self, workload: &str) -> Option<&CalibAbRow> {
        self.rows.iter().find(|r| r.workload == workload)
    }

    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"online_calibration_ab\",\n");
        out.push_str("  \"metric\": \"simulated_seconds\",\n  \"workloads\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"calibrated_s\": {:.9}, \"nominal_s\": {:.9}, \
                 \"improvement_pct\": {:.2}, \"rows_identical\": {}, \
                 \"straggler_ewma\": {:.2}, \"control_plane_ns\": {}, \
                 \"observed_stage_selectivities\": {}}}{}\n",
                row.workload,
                row.calibrated_s,
                row.nominal_s,
                row.improvement_pct(),
                row.rows_identical,
                row.straggler_ewma,
                row.control_plane_ns,
                crate::selectivities_json(&row.observed_stage_selectivities),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The acceptance configuration shared by both workloads: exactly the
/// steal_ab acceptance setup (same scale extrapolation and block
/// granularity, so the two defences are directly comparable) with
/// **stealing disabled** — feedback routing is the only adaptive mechanism
/// under test.
fn base_config() -> EngineConfig {
    let mut config = EngineConfig::hybrid(8, 2);
    config.scale_weight = 20_000.0;
    config.block_capacity = 2048;
    config.steal_policy = StealPolicy::Disabled;
    config.with_table_weight("dim", 2_500.0)
}

/// Run the join+reduce plan on `topology` with calibration on and off.
fn calib_ab_on(
    topology: std::sync::Arc<ServerTopology>,
    fact_rows: usize,
    workload: String,
) -> Result<CalibAbRow> {
    let (engine, plan) = join_reduce_engine_on(topology, fact_rows)?;
    let config = base_config();
    let calibrated = engine
        .session()
        .execute(&plan, &config.clone().with_calibration(CalibrationConfig::default()))?;
    let nominal =
        engine.session().execute(&plan, &config.with_calibration(CalibrationConfig::disabled()))?;
    let observed = crate::observed_selectivities(&calibrated.stats);
    Ok(CalibAbRow {
        workload,
        calibrated_s: calibrated.seconds(),
        nominal_s: nominal.seconds(),
        rows_identical: calibrated.rows == nominal.rows,
        straggler_ewma: calibrated.stats.max_observed_slowdown(),
        control_plane_ns: calibrated
            .stats
            .probed_constants
            .as_ref()
            .map(|c| c.control_plane_ns)
            .unwrap_or(0),
        observed_stage_selectivities: observed,
    })
}

/// The skewed workload: one GPU is a hidden [`SKEW_FACTOR`]× straggler.
pub fn skewed_calib_ab(fact_rows: usize) -> Result<CalibAbRow> {
    let topology = ServerTopology::paper_server();
    let slow_gpu = topology.gpus()[1];
    let skewed = topology.with_device_slowdown(slow_gpu, SKEW_FACTOR)?;
    calib_ab_on(skewed, fact_rows, format!("join_reduce_{}k_skewed_gpu_8x", fact_rows / 1000))
}

/// The unskewed control: calibration on a healthy server must be ~free.
pub fn unskewed_calib_ab(fact_rows: usize) -> Result<CalibAbRow> {
    calib_ab_on(
        ServerTopology::paper_server(),
        fact_rows,
        format!("join_reduce_{}k_unskewed", fact_rows / 1000),
    )
}

/// Of `runs` repeated measurements, the one with the median improvement —
/// when the feedback engages (relative to how much of the stream was already
/// routed) is wall-clock sensitive, and the acceptance bars should gate the
/// typical outcome, not a scheduler tail.
fn median_by_improvement(mut runs: Vec<CalibAbRow>) -> CalibAbRow {
    runs.sort_by(|a, b| {
        a.improvement_pct().partial_cmp(&b.improvement_pct()).unwrap_or(std::cmp::Ordering::Equal)
    });
    runs.swap_remove(runs.len() / 2)
}

/// Run the A/B suite: the skewed straggler workload plus the unskewed
/// control, each reported as the median of three measurements.
pub fn run_all(fact_rows: usize) -> Result<CalibAbReport> {
    let skewed = median_by_improvement(
        (0..3).map(|_| skewed_calib_ab(fact_rows)).collect::<Result<Vec<_>>>()?,
    );
    let unskewed = median_by_improvement(
        (0..3).map(|_| unskewed_calib_ab(fact_rows)).collect::<Result<Vec<_>>>()?,
    );
    Ok(CalibAbReport { rows: vec![skewed, unskewed] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_routing_rescues_the_skewed_workload_without_stealing() {
        // Single-run sanity bar at 10%: one measurement's engagement point is
        // wall-clock sensitive, so the full ≥ 20% acceptance bar is enforced
        // by the `calib_ab` bin on the median of three runs.
        let row = skewed_calib_ab(200_000).unwrap();
        assert!(row.rows_identical, "calibration must not change results");
        assert!(
            row.straggler_ewma > 1.5,
            "the hidden straggler was never observed: EWMA {}",
            row.straggler_ewma
        );
        assert!(
            row.improvement_pct() >= 10.0,
            "calibrated {}s vs nominal {}s: improvement {:.1}% < 10%",
            row.calibrated_s,
            row.nominal_s,
            row.improvement_pct()
        );
    }

    #[test]
    fn calibration_is_near_free_on_the_unskewed_workload() {
        // Single-run sanity bar at 5% (the tight ≤ 2% bar is enforced by the
        // bin on the median of three runs, mirroring steal_ab).
        let row = unskewed_calib_ab(200_000).unwrap();
        assert!(row.rows_identical, "calibration must not change results");
        assert!(
            (row.straggler_ewma - 1.0).abs() < 1e-9,
            "healthy devices must observe exactly nominal: {}",
            row.straggler_ewma
        );
        assert!(
            row.improvement_pct() >= -5.0,
            "calibrated {}s vs nominal {}s on a healthy server: cost {:.1}% > 5%",
            row.calibrated_s,
            row.nominal_s,
            -row.improvement_pct()
        );
    }

    #[test]
    fn observed_stage_selectivity_is_recorded() {
        // The calibrated run's first stage is the dimension filter (attr < 3
        // of 7 values); its observed selectivity must reproduce that ratio.
        let row = unskewed_calib_ab(50_000).unwrap();
        let first = row.observed_stage_selectivities[0].expect("the filter stage saw input");
        assert!((first - 3.0 / 7.0).abs() < 0.01, "observed stage-0 selectivity {first} != 3/7");
    }

    #[test]
    fn report_json_shape() {
        let report = CalibAbReport {
            rows: vec![CalibAbRow {
                workload: "w".into(),
                calibrated_s: 0.8,
                nominal_s: 1.0,
                rows_identical: true,
                straggler_ewma: 7.93,
                control_plane_ns: 1004,
                observed_stage_selectivities: vec![Some(0.4286), Some(1.0)],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"improvement_pct\": 20.00"));
        assert!(json.contains("\"straggler_ewma\": 7.93"));
        assert!(json.contains("\"control_plane_ns\": 1004"));
        assert!(json.contains("\"observed_stage_selectivities\": [0.4286, 1.0000]"));
        assert!(report.get("w").is_some());
    }
}
