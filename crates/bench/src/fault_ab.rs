//! A/B harness for the fault-tolerant execution ladder: injected device
//! faults vs the healthy baseline, plus the cost of having the fault
//! machinery armed at all.
//!
//! Four workloads, all on the join+reduce acceptance plan with stealing
//! disabled (so the takeover drain — not PR 3's stealing — is the rescue
//! path under test):
//!
//! * **healthy** — no fault plan; `FaultConfig::default()` (armed) vs
//!   `FaultConfig::disabled()`. Without an injected plan the executor never
//!   constructs fault state, so the armed run must cost ≤ 2%. This pair is
//!   deterministic and is the regression-gated baseline.
//! * **gpu_loss (skewed)** — one GPU aborts permanently after its first
//!   block; the quarantine + takeover drain re-executes its backlog on the
//!   surviving devices. Rows must be byte-identical to the healthy run.
//! * **transient (skewed)** — every kernel invocation on one GPU fails with
//!   p=0.3 for the whole run; bounded in-place retry absorbs the failures
//!   at ≤ 10% simulated overhead with byte-identical rows.
//! * **total_gpu_loss (skewed)** — a GPU-only query loses *both* GPUs at
//!   t=0: the engine's degraded-restart ladder excludes them one by one and
//!   retargets the query to CPU-only, still with exact rows.
//!
//! The skewed workloads' timings depend on where in the stream the fault
//! lands (wall-clock sensitive), so — like `steal_ab`/`calib_ab` — their
//! values are reported but not regression-gated; the real acceptance bars
//! live in the `fault_ab` bin and in this module's tests.
//!
//! `cargo run --release -p hetex-bench --bin fault_ab [out_dir]` emits
//! `BENCH_fault.json`.

use crate::pipeline_ab::join_reduce_engine_on;
use hetex_common::{EngineConfig, FaultConfig, Result, StealPolicy};
use hetex_topology::{FaultPlan, ServerTopology, SimTime};

/// Transient failure probability of the flaky GPU in the transient workload.
pub const TRANSIENT_P: f64 = 0.3;

/// One faulted-vs-baseline measurement.
#[derive(Debug, Clone)]
pub struct FaultAbRow {
    /// Workload label.
    pub workload: String,
    /// Simulated seconds of the faulted (or fault-armed) run.
    pub faulted_s: f64,
    /// Simulated seconds of the healthy baseline run.
    pub baseline_s: f64,
    /// Whether both runs produced byte-identical result rows.
    pub rows_identical: bool,
    /// Blocks re-executed on a surviving sibling after a quarantine.
    pub recovered_blocks: u64,
    /// Transient kernel failures absorbed by in-place retry.
    pub transient_retries: u64,
    /// Degraded restarts (device-loss replans) the faulted run needed.
    pub degraded_restarts: usize,
    /// Staging bytes still leased when the faulted run finished (the leak
    /// invariant: must be zero).
    pub staging_leaked_bytes: u64,
}

impl FaultAbRow {
    /// Simulated-time overhead of the faulted run over the baseline, in
    /// percent (negative = the faulted run was faster).
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline_s <= 0.0 {
            return 0.0;
        }
        (self.faulted_s / self.baseline_s - 1.0) * 100.0
    }
}

/// The full fault A/B report.
#[derive(Debug, Clone, Default)]
pub struct FaultAbReport {
    /// Every measured workload.
    pub rows: Vec<FaultAbRow>,
}

impl FaultAbReport {
    /// Look up a row by workload label.
    pub fn get(&self, workload: &str) -> Option<&FaultAbRow> {
        self.rows.iter().find(|r| r.workload == workload)
    }

    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"fault_tolerance_ab\",\n");
        out.push_str("  \"metric\": \"simulated_seconds\",\n  \"workloads\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"faulted_s\": {:.9}, \"baseline_s\": {:.9}, \
                 \"overhead_pct\": {:.2}, \"rows_identical\": {}, \"recovered_blocks\": {}, \
                 \"transient_retries\": {}, \"degraded_restarts\": {}, \
                 \"staging_leaked_bytes\": {}}}{}\n",
                row.workload,
                row.faulted_s,
                row.baseline_s,
                row.overhead_pct(),
                row.rows_identical,
                row.recovered_blocks,
                row.transient_retries,
                row.degraded_restarts,
                row.staging_leaked_bytes,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The shared configuration: the calib_ab acceptance setup (same scale
/// extrapolation and block granularity) with stealing disabled, so the
/// quarantine drain is the only rescue path.
fn base_config() -> EngineConfig {
    let mut config = EngineConfig::hybrid(8, 2);
    config.scale_weight = 20_000.0;
    config.block_capacity = 2048;
    config.steal_policy = StealPolicy::Disabled;
    config.with_table_weight("dim", 2_500.0)
}

/// Run the faulted topology against the healthy paper server with the same
/// configuration and compare.
fn fault_ab_on(
    plan: FaultPlan,
    config: &EngineConfig,
    fact_rows: usize,
    workload: String,
) -> Result<FaultAbRow> {
    let faulted_topology = ServerTopology::paper_server().with_fault_plan(plan)?;
    let (faulted_engine, rel) = join_reduce_engine_on(faulted_topology, fact_rows)?;
    let (healthy_engine, _) = join_reduce_engine_on(ServerTopology::paper_server(), fact_rows)?;
    let faulted = faulted_engine.session().execute(&rel, config)?;
    let baseline = healthy_engine.session().execute(&rel, config)?;
    Ok(FaultAbRow {
        workload,
        faulted_s: faulted.seconds(),
        baseline_s: baseline.seconds(),
        rows_identical: faulted.rows == baseline.rows,
        recovered_blocks: faulted.stats.recovered_blocks,
        transient_retries: faulted.stats.transient_retries,
        degraded_restarts: faulted.stats.degraded_restarts,
        staging_leaked_bytes: faulted.stats.staging_leaked_bytes,
    })
}

/// The healthy control: no fault plan, fault machinery armed vs disabled.
/// Without a plan the executor constructs no fault state, so the armed run
/// must be free — this is the pair the regression gate prices.
pub fn healthy_fault_ab(fact_rows: usize) -> Result<FaultAbRow> {
    let (engine, rel) = join_reduce_engine_on(ServerTopology::paper_server(), fact_rows)?;
    let config = base_config();
    let armed =
        engine.session().execute(&rel, &config.clone().with_fault(FaultConfig::default()))?;
    let disabled = engine.session().execute(&rel, &config.with_fault(FaultConfig::disabled()))?;
    Ok(FaultAbRow {
        workload: format!("join_reduce_{}k_healthy", fact_rows / 1000),
        faulted_s: armed.seconds(),
        baseline_s: disabled.seconds(),
        rows_identical: armed.rows == disabled.rows,
        recovered_blocks: armed.stats.recovered_blocks,
        transient_retries: armed.stats.transient_retries,
        degraded_restarts: armed.stats.degraded_restarts,
        staging_leaked_bytes: armed.stats.staging_leaked_bytes,
    })
}

/// One GPU aborts permanently after its first block; quarantine + takeover
/// drain must save the run with byte-identical rows.
pub fn gpu_loss_fault_ab(fact_rows: usize) -> Result<FaultAbRow> {
    let gpu = ServerTopology::paper_server().gpus()[1];
    fault_ab_on(
        FaultPlan::new().abort_device(gpu, SimTime::from_nanos(1)),
        &base_config(),
        fact_rows,
        format!("join_reduce_{}k_gpu_loss_skewed", fact_rows / 1000),
    )
}

/// Every kernel invocation on one GPU fails with [`TRANSIENT_P`] for the
/// whole run; bounded in-place retry must absorb it at ≤ 10% overhead.
pub fn transient_fault_ab(fact_rows: usize) -> Result<FaultAbRow> {
    let gpu = ServerTopology::paper_server().gpus()[0];
    fault_ab_on(
        FaultPlan::new().transient_window(
            gpu,
            SimTime::ZERO,
            SimTime::from_millis(600_000),
            TRANSIENT_P,
            0xfau64,
        ),
        &base_config(),
        fact_rows,
        format!("join_reduce_{}k_transient_skewed", fact_rows / 1000),
    )
}

/// A GPU-only query loses both GPUs at t=0; the engine's degraded-restart
/// ladder must retarget it to CPU-only with exact rows. The baseline is the
/// healthy GPU-only run, so the reported overhead is the honest price of
/// falling back to one CPU core.
pub fn total_gpu_loss_fault_ab(fact_rows: usize) -> Result<FaultAbRow> {
    let topology = ServerTopology::paper_server();
    let gpus = topology.gpus();
    let mut config = EngineConfig::gpu_only(2);
    config.scale_weight = 20_000.0;
    config.block_capacity = 2048;
    config.steal_policy = StealPolicy::Disabled;
    let config = config.with_table_weight("dim", 2_500.0);
    fault_ab_on(
        FaultPlan::new().abort_device(gpus[0], SimTime::ZERO).abort_device(gpus[1], SimTime::ZERO),
        &config,
        fact_rows,
        format!("join_reduce_{}k_total_gpu_loss_skewed", fact_rows / 1000),
    )
}

/// Of `runs` repeated measurements, the one with the median overhead — where
/// in the stream a fault lands (and so how much backlog needs draining) is
/// wall-clock sensitive, and the acceptance bars should gate the typical
/// outcome, not a scheduler tail.
fn median_by_overhead(mut runs: Vec<FaultAbRow>) -> FaultAbRow {
    runs.sort_by(|a, b| {
        a.overhead_pct().partial_cmp(&b.overhead_pct()).unwrap_or(std::cmp::Ordering::Equal)
    });
    runs.swap_remove(runs.len() / 2)
}

/// Run the A/B suite: the gated healthy control plus the three injected
/// fault scenarios, each reported as the median of three measurements.
pub fn run_all(fact_rows: usize) -> Result<FaultAbReport> {
    let mut rows = Vec::new();
    for scenario in [healthy_fault_ab, gpu_loss_fault_ab, transient_fault_ab] {
        rows.push(median_by_overhead(
            (0..3).map(|_| scenario(fact_rows)).collect::<Result<Vec<_>>>()?,
        ));
    }
    rows.push(median_by_overhead(
        (0..3).map(|_| total_gpu_loss_fault_ab(fact_rows / 2)).collect::<Result<Vec<_>>>()?,
    ));
    Ok(FaultAbReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_loss_recovers_byte_identical_rows_without_stealing() {
        let row = gpu_loss_fault_ab(200_000).unwrap();
        assert!(row.rows_identical, "takeover drain must preserve rows exactly");
        assert!(row.recovered_blocks > 0, "the dead GPU's backlog was never drained");
        assert_eq!(row.staging_leaked_bytes, 0, "recovery must not leak leases");
        assert_eq!(row.degraded_restarts, 0, "executor-level recovery needs no restart");
    }

    #[test]
    fn transient_faults_cost_under_ten_percent() {
        let row = transient_fault_ab(200_000).unwrap();
        assert!(row.rows_identical, "in-place retry must preserve rows exactly");
        assert!(row.transient_retries > 0, "p=0.3 over ~100 invocations never failed");
        assert!(
            row.overhead_pct() <= 10.0,
            "transient recovery cost {:.1}% > 10% ({}s vs {}s)",
            row.overhead_pct(),
            row.faulted_s,
            row.baseline_s
        );
    }

    #[test]
    fn losing_both_gpus_degrades_to_cpu_with_exact_rows() {
        let row = total_gpu_loss_fault_ab(100_000).unwrap();
        assert!(row.rows_identical, "degraded restart must preserve rows exactly");
        assert!(row.degraded_restarts >= 1, "a GPU-only query with no GPUs must restart");
    }

    #[test]
    fn armed_fault_machinery_is_free_without_a_plan() {
        // Single-run sanity bar at 5%; the tight ≤ 2% bar is enforced by the
        // bin on the median of three runs, mirroring calib_ab.
        let row = healthy_fault_ab(200_000).unwrap();
        assert!(row.rows_identical);
        assert_eq!(row.recovered_blocks + row.transient_retries, 0);
        assert!(
            row.overhead_pct().abs() <= 5.0,
            "armed fault machinery cost {:.1}% on a healthy run",
            row.overhead_pct()
        );
    }

    #[test]
    fn report_json_shape() {
        let report = FaultAbReport {
            rows: vec![FaultAbRow {
                workload: "w".into(),
                faulted_s: 1.2,
                baseline_s: 1.0,
                rows_identical: true,
                recovered_blocks: 7,
                transient_retries: 3,
                degraded_restarts: 1,
                staging_leaked_bytes: 0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"overhead_pct\": 20.00"));
        assert!(json.contains("\"recovered_blocks\": 7"));
        assert!(json.contains("\"degraded_restarts\": 1"));
        assert!(report.get("w").is_some());
    }
}
