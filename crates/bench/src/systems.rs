//! The systems under comparison and how to run one query on each.
//!
//! Mirrors the legend of Figures 4 and 5: DBMS C, Proteus CPUs, Proteus
//! Hybrid, Proteus GPUs, DBMS G. Proteus configurations run through the real
//! HetExchange engine; the baselines run through their cost-modeled stand-ins.
//! All five see exactly the same data and the same logical plans.

use crate::report::QueryTimeRow;
use crate::workload::SsbWorkload;
use hetex_baselines::{DbmsC, DbmsG};
use hetex_common::config::DataPlacement;
use hetex_common::{EngineConfig, HetError, Result};
use hetex_ssb::SsbQuery;
use std::sync::Arc;

/// A system under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The commercial vectorized CPU DBMS stand-in.
    DbmsC { cores: usize },
    /// Proteus restricted to CPU cores.
    ProteusCpu { cores: usize },
    /// Proteus restricted to GPUs.
    ProteusGpu { gpus: usize },
    /// Proteus using CPUs and GPUs together.
    ProteusHybrid { cores: usize, gpus: usize },
    /// The commercial GPU DBMS stand-in.
    DbmsG { gpus: usize },
}

impl System {
    /// Label used in figure output (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            System::DbmsC { .. } => "DBMS C".to_string(),
            System::ProteusCpu { .. } => "Proteus CPUs".to_string(),
            System::ProteusGpu { .. } => "Proteus GPUs".to_string(),
            System::ProteusHybrid { .. } => "Proteus Hybrid".to_string(),
            System::DbmsG { .. } => "DBMS G".to_string(),
        }
    }

    /// The default line-up of Figure 4 (GPU-fitting working sets).
    pub fn figure4_lineup() -> Vec<System> {
        vec![
            System::DbmsC { cores: 24 },
            System::ProteusCpu { cores: 24 },
            System::ProteusGpu { gpus: 2 },
            System::DbmsG { gpus: 2 },
        ]
    }

    /// The default line-up of Figure 5 (non-GPU-fitting working sets).
    pub fn figure5_lineup() -> Vec<System> {
        vec![
            System::DbmsC { cores: 24 },
            System::ProteusCpu { cores: 24 },
            System::ProteusHybrid { cores: 24, gpus: 2 },
            System::ProteusGpu { gpus: 2 },
            System::DbmsG { gpus: 2 },
        ]
    }
}

/// Run one SSB query on one system. `gpu_resident` selects the SF100-style
/// data placement (working set pre-loaded in device memory) for the GPU
/// systems.
pub fn run_query(
    workload: &SsbWorkload,
    system: System,
    query: &SsbQuery,
    gpu_resident: bool,
) -> QueryTimeRow {
    let result = execute(workload, system, query, gpu_resident);
    match result {
        Ok(seconds) => QueryTimeRow {
            query: query.name.clone(),
            system: system.label(),
            seconds: Some(seconds),
            note: None,
        },
        Err(e) => QueryTimeRow {
            query: query.name.clone(),
            system: system.label(),
            seconds: None,
            note: Some(format!("{} ({})", e.category(), e)),
        },
    }
}

fn execute(
    workload: &SsbWorkload,
    system: System,
    query: &SsbQuery,
    gpu_resident: bool,
) -> Result<f64> {
    match system {
        System::DbmsC { cores } => {
            let dbms = DbmsC::new(Arc::clone(&workload.topology), cores);
            let weights = workload.config(EngineConfig::cpu_only(cores.max(1)));
            Ok(dbms.execute(&query.plan, &workload.catalog_cpu, &weights)?.seconds())
        }
        System::DbmsG { gpus } => {
            let (catalog, placement) = if gpu_resident {
                (
                    workload.catalog_gpu.as_ref().ok_or_else(|| {
                        HetError::Config("workload has no GPU-resident dataset".into())
                    })?,
                    DataPlacement::GpuResident,
                )
            } else {
                (&workload.catalog_cpu, DataPlacement::CpuResident)
            };
            let dbms = DbmsG::new(Arc::clone(&workload.topology), gpus, placement);
            let weights = workload.config(EngineConfig::gpu_only(gpus.max(1)));
            Ok(dbms.execute(&query.plan, catalog, &weights)?.seconds())
        }
        System::ProteusCpu { cores } => {
            let config = workload.config(EngineConfig::cpu_only(cores));
            Ok(workload.engine_cpu_data.session().execute(&query.plan, &config)?.seconds())
        }
        System::ProteusGpu { gpus } => {
            let mut config = workload.config(EngineConfig::gpu_only(gpus));
            config.placement =
                if gpu_resident { DataPlacement::GpuResident } else { DataPlacement::CpuResident };
            let engine = if gpu_resident {
                workload.engine_gpu_data.as_ref().ok_or_else(|| {
                    HetError::Config("workload has no GPU-resident dataset".into())
                })?
            } else {
                &workload.engine_cpu_data
            };
            Ok(engine.session().execute(&query.plan, &config)?.seconds())
        }
        System::ProteusHybrid { cores, gpus } => {
            let config = workload.config(EngineConfig::hybrid(cores, gpus));
            Ok(workload.engine_cpu_data.session().execute(&query.plan, &config)?.seconds())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload(gpu_resident: bool) -> SsbWorkload {
        SsbWorkload::build(0.002, 10.0, gpu_resident).unwrap()
    }

    #[test]
    fn all_systems_run_q1_1() {
        let w = tiny_workload(true);
        let q = w.query("Q1.1").unwrap().clone();
        for system in System::figure4_lineup() {
            let row = run_query(&w, system, &q, true);
            assert!(row.seconds.is_some(), "{} failed: {:?}", row.system, row.note);
            assert!(row.seconds.unwrap() > 0.0);
        }
    }

    #[test]
    fn proteus_results_agree_across_systems() {
        let w = tiny_workload(true);
        let q = w.query("Q2.1").unwrap().clone();
        let cpu = w
            .engine_cpu_data
            .session()
            .execute(&q.plan, &w.config(EngineConfig::cpu_only(4)))
            .unwrap();
        let hybrid = w
            .engine_cpu_data
            .session()
            .execute(&q.plan, &w.config(EngineConfig::hybrid(4, 2)))
            .unwrap();
        assert_eq!(cpu.rows, hybrid.rows);
        let gpu = w
            .engine_gpu_data
            .as_ref()
            .unwrap()
            .session()
            .execute(&q.plan, &w.config(EngineConfig::gpu_only(2)))
            .unwrap();
        assert_eq!(cpu.rows, gpu.rows);
    }

    #[test]
    fn dbms_g_reports_q2_2_failure_as_a_note() {
        let w = tiny_workload(true);
        let q = w.query("Q2.2").unwrap().clone();
        let row = run_query(&w, System::DbmsG { gpus: 2 }, &q, true);
        assert!(row.seconds.is_none());
        assert!(row.note.unwrap().contains("unsupported"));
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(System::DbmsC { cores: 24 }.label(), "DBMS C");
        assert_eq!(System::ProteusHybrid { cores: 24, gpus: 2 }.label(), "Proteus Hybrid");
        assert_eq!(System::figure4_lineup().len(), 4);
        assert_eq!(System::figure5_lineup().len(), 5);
    }
}
