//! A/B harness for the multi-query serving layer: N concurrent SSB query
//! streams through one [`QueryServer`] vs the same queries executed serially
//! back-to-back.
//!
//! Every stream submits the full thirteen-query SSB flight up front
//! (open-loop batch: all sessions arrive at virtual time zero), at hybrid
//! CPU+GPU placement with stealing disabled so the isolated simulated times
//! — and therefore the fair timeline built from them — are deterministic and
//! regression-gateable. The serving layer overlaps queries up to the
//! admission budget and the worker pool; the **served** time is the fair
//! timeline's makespan and the **serial** baseline is the sum of the
//! isolated times (back-to-back execution pays every query's full demand).
//!
//! Acceptance bars (enforced by the `serve_ab` bin):
//!
//! * rows of every served query byte-identical to its single-query run;
//! * aggregate speedup of serving over serial ≥ 1.5× at four streams;
//! * admission peaks never exceed the per-node byte budget;
//! * zero staging bytes leaked by any served query.
//!
//! `cargo run --release -p hetex-bench --bin serve_ab [out_dir]` emits
//! `BENCH_serve.json`.

use crate::workload::{physical_sf_from_env, SsbWorkload};
use hetex_common::{EngineConfig, Result, ServeConfig, StealPolicy};
use hetex_engine::QueryServer;
use std::sync::Arc;

/// Concurrent query streams the acceptance bar is defined at.
pub const DEFAULT_STREAMS: usize = 4;

/// Aggregate speedup the served batch must reach over serial execution.
pub const SPEEDUP_BAR: f64 = 1.5;

/// The serve-vs-serial measurement.
#[derive(Debug, Clone)]
pub struct ServeAbReport {
    /// Workload label.
    pub workload: String,
    /// Concurrent streams served.
    pub streams: usize,
    /// Total query sessions (streams × SSB queries).
    pub sessions: usize,
    /// Simulated seconds of the serial back-to-back baseline (Σ isolated).
    pub serial_s: f64,
    /// Simulated seconds of the served batch (fair-timeline makespan).
    pub served_s: f64,
    /// Median served latency (simulated seconds).
    pub p50_latency_s: f64,
    /// 99th-percentile served latency (simulated seconds).
    pub p99_latency_s: f64,
    /// Whether every served query's rows were byte-identical to its
    /// single-query run.
    pub rows_identical: bool,
    /// Largest admission bytes ever held on any node.
    pub peak_admitted_bytes: u64,
    /// The per-node admission budget the peaks are bounded by.
    pub admission_budget_bytes: u64,
    /// Staging bytes leaked by any served query (must be zero).
    pub staging_leaked_bytes: u64,
}

impl ServeAbReport {
    /// Aggregate speedup of serving over the serial baseline.
    pub fn speedup(&self) -> f64 {
        if self.served_s <= 0.0 {
            return 1.0;
        }
        self.serial_s / self.served_s
    }

    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"multi_query_serving_ab\",\n");
        out.push_str("  \"metric\": \"simulated_seconds\",\n  \"workloads\": [\n");
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"streams\": {}, \"sessions\": {}, \
             \"serial_s\": {:.9}, \"served_s\": {:.9}, \"speedup\": {:.3}, \
             \"p50_latency_s\": {:.9}, \"p99_latency_s\": {:.9}, \
             \"rows_identical\": {}, \"peak_admitted_bytes\": {}, \
             \"admission_budget_bytes\": {}, \"staging_leaked_bytes\": {}}}\n",
            self.workload,
            self.streams,
            self.sessions,
            self.serial_s,
            self.served_s,
            self.speedup(),
            self.p50_latency_s,
            self.p99_latency_s,
            self.rows_identical,
            self.peak_admitted_bytes,
            self.admission_budget_bytes,
            self.staging_leaked_bytes,
        ));
        out.push_str("  ]\n}\n");
        out
    }
}

/// Serve `streams` concurrent SSB flights and compare against serial
/// back-to-back execution of the same queries.
pub fn run(streams: usize) -> Result<ServeAbReport> {
    let workload = SsbWorkload::build(physical_sf_from_env(), 100.0, false)?;
    let mut config = workload.config(EngineConfig::hybrid(6, 1));
    config.steal_policy = StealPolicy::Disabled;
    let queries = workload.queries.clone();
    let engine = Arc::new(workload.engine_cpu_data);

    // Single-query ground truth: rows for the byte-identity check. (The
    // serial *time* baseline comes from the served sessions' own isolated
    // times — identical by the private-clock determinism the serving test
    // suite asserts.)
    let expected: Vec<Vec<Vec<i64>>> = queries
        .iter()
        .map(|q| Ok(engine.session().execute(&q.plan, &config)?.rows))
        .collect::<Result<Vec<_>>>()?;

    // Budget for every stream at once: the worker pool and device
    // capacities, not admission, bound this batch.
    let footprint = config.est_serve_footprint_bytes();
    let serve = ServeConfig::serving()
        .with_workers(streams)
        .with_admission_bytes(Some(streams as u64 * footprint));
    let budget = serve.effective_admission_bytes();
    let mut server = QueryServer::new(Arc::clone(&engine), serve)?;

    // Open-loop batch: every stream's full flight submitted up front,
    // round-robin across streams so co-runners are a mix of queries.
    let mut tickets = Vec::new();
    for _ in 0..streams {
        for query in &queries {
            tickets.push(server.session().submit(query.plan.clone(), config.clone())?);
        }
    }
    let mut rows_identical = true;
    let mut staging_leaked = 0u64;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait()?;
        rows_identical &= outcome.rows == expected[i % queries.len()];
        staging_leaked += outcome.stats.staging_leaked_bytes;
    }
    let report = server.shutdown()?;

    let peak_admitted_bytes = report.admission_peaks.iter().map(|(_, p)| *p).max().unwrap_or(0);
    Ok(ServeAbReport {
        workload: format!("ssb_sf100_{streams}streams_hybrid"),
        streams,
        sessions: report.sessions.len(),
        serial_s: report.serial.as_secs_f64(),
        served_s: report.makespan.as_secs_f64(),
        p50_latency_s: report.latency_quantile(0.50).as_secs_f64(),
        p99_latency_s: report.latency_quantile(0.99).as_secs_f64(),
        rows_identical,
        peak_admitted_bytes,
        admission_budget_bytes: budget,
        staging_leaked_bytes: staging_leaked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_streams_serve_faster_than_serial_with_exact_rows() {
        // The debug-build smoke pass runs two streams; the release bin
        // enforces the full four-stream ≥ 1.5× bar.
        let report = run(2).unwrap();
        assert!(report.rows_identical, "served rows must match single-query runs");
        assert_eq!(report.staging_leaked_bytes, 0);
        assert_eq!(report.sessions, 2 * 13);
        assert!(report.peak_admitted_bytes <= report.admission_budget_bytes);
        assert!(report.served_s < report.serial_s, "two streams must overlap somewhere");
        assert!(report.p50_latency_s <= report.p99_latency_s);
        assert!(report.p99_latency_s <= report.served_s + 1e-12);
    }

    #[test]
    fn report_json_shape() {
        let report = ServeAbReport {
            workload: "w".into(),
            streams: 4,
            sessions: 52,
            serial_s: 4.0,
            served_s: 2.0,
            p50_latency_s: 1.0,
            p99_latency_s: 1.9,
            rows_identical: true,
            peak_admitted_bytes: 1024,
            admission_budget_bytes: 4096,
            staging_leaked_bytes: 0,
        };
        let json = report.to_json();
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"serial_s\": 4.000000000"));
        assert!(json.contains("\"workload\": \"w\""));
        assert!(json.contains("\"staging_leaked_bytes\": 0"));
    }
}
