//! Workload construction for the figure harnesses.
//!
//! An [`SsbWorkload`] bundles everything a figure needs: the simulated server,
//! one Proteus engine over CPU-resident data, optionally a second Proteus
//! engine over GPU-resident data (the SF100 setup pre-loads the working set
//! into the GPUs' device memories), the thirteen SSB query plans, and the
//! scale weight that models the nominal scale factor.

use hetex_common::{EngineConfig, MemoryNodeId, Result};
use hetex_engine::Proteus;
use hetex_ssb::{all_queries, SsbDataset, SsbGenerator, SsbQuery};
use hetex_storage::Catalog;
use hetex_topology::ServerTopology;
use std::sync::Arc;

/// Default physical scale factor used when `HETEX_PHYSICAL_SF` is not set.
pub const DEFAULT_PHYSICAL_SF: f64 = 0.02;

/// The physical scale factor to use, honouring the environment override.
pub fn physical_sf_from_env() -> f64 {
    std::env::var("HETEX_PHYSICAL_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(DEFAULT_PHYSICAL_SF)
}

/// A fully constructed SSB workload.
pub struct SsbWorkload {
    /// The simulated server.
    pub topology: Arc<ServerTopology>,
    /// Proteus over CPU-resident data (always present).
    pub engine_cpu_data: Proteus,
    /// Proteus over GPU-resident data (present when the nominal working set
    /// fits in aggregate device memory, i.e. the SF100 experiments).
    pub engine_gpu_data: Option<Proteus>,
    /// Catalog over the CPU-resident dataset (used by DBMS C and DBMS G when
    /// streaming).
    pub catalog_cpu: Catalog,
    /// Catalog over the GPU-resident dataset.
    pub catalog_gpu: Option<Catalog>,
    /// The thirteen SSB queries.
    pub queries: Vec<SsbQuery>,
    /// Modeled-over-physical scale ratio applied to every scan.
    pub scale_weight: f64,
    /// Nominal scale factor being modeled.
    pub nominal_sf: f64,
    /// Physical scale factor of the generated data.
    pub physical_sf: f64,
    /// Block capacity used by the engines (sized so a run produces a few
    /// hundred blocks regardless of the physical scale).
    pub block_capacity: usize,
    /// Dataset generated with CPU placement (kept for working-set sizing).
    pub dataset: SsbDataset,
    /// Per-table nominal/physical weights (SSB tables scale differently with
    /// the scale factor).
    pub table_weights: Vec<(String, f64)>,
}

impl SsbWorkload {
    /// Build a workload modeling `nominal_sf` from data generated at
    /// `physical_sf`. `gpu_resident` additionally builds the GPU-placed copy
    /// used by the SF100 experiments.
    pub fn build(physical_sf: f64, nominal_sf: f64, gpu_resident: bool) -> Result<SsbWorkload> {
        let topology = ServerTopology::paper_server();
        let cpu_nodes = topology.cpu_memory_nodes();
        let gpu_nodes = topology.gpu_memory_nodes();

        let mut generator =
            SsbGenerator { scale_factor: physical_sf, seed: 42, ..Default::default() };
        // Spread every table over several segments so data is interleaved
        // across the placement's memory nodes, like the paper's setup ("the
        // dataset is loaded and evenly distributed to the sockets" /
        // "randomly partitioned between the two GPUs").
        generator.segment_rows = (generator.row_counts().0 / 8).max(2_048);
        let dataset = generator.generate(&cpu_nodes)?;
        let queries = all_queries(&dataset)?;

        let catalog_cpu = Catalog::new();
        dataset.register_into(&catalog_cpu);
        let engine_cpu_data = Proteus::new(Arc::clone(&topology));
        dataset.register_into(engine_cpu_data.catalog());

        let (engine_gpu_data, catalog_gpu) = if gpu_resident {
            let gpu_dataset = generator.generate(&gpu_nodes)?;
            let catalog = Catalog::new();
            gpu_dataset.register_into(&catalog);
            let engine = Proteus::new(Arc::clone(&topology));
            gpu_dataset.register_into(engine.catalog());
            (Some(engine), Some(catalog))
        } else {
            (None, None)
        };

        let fact_rows = dataset.fact_rows();
        let block_capacity = (fact_rows / 256).clamp(128, 64 * 1024);

        // Per-table weights: SSB tables scale differently with the scale
        // factor (date is fixed, part grows logarithmically), so each table
        // gets its own nominal/physical ratio.
        let nominal = SsbGenerator::new(nominal_sf).row_counts();
        let weight = |nominal_rows: usize, physical_rows: usize| {
            (nominal_rows as f64 / physical_rows.max(1) as f64).max(1.0)
        };
        let table_weights = vec![
            ("lineorder".to_string(), weight(nominal.0, dataset.lineorder.rows())),
            ("date".to_string(), weight(nominal.1, dataset.date.rows())),
            ("customer".to_string(), weight(nominal.2, dataset.customer.rows())),
            ("supplier".to_string(), weight(nominal.3, dataset.supplier.rows())),
            ("part".to_string(), weight(nominal.4, dataset.part.rows())),
        ];
        let scale_weight = table_weights[0].1;

        Ok(SsbWorkload {
            topology,
            engine_cpu_data,
            engine_gpu_data,
            catalog_cpu,
            catalog_gpu,
            queries,
            scale_weight,
            nominal_sf,
            physical_sf,
            block_capacity,
            dataset,
            table_weights,
        })
    }

    /// The engine configuration for a Proteus run, with the workload's scale
    /// weights and block capacity applied.
    pub fn config(&self, mut base: EngineConfig) -> EngineConfig {
        base.scale_weight = self.scale_weight;
        base.table_weights = self.table_weights.clone();
        base.block_capacity = self.block_capacity;
        base
    }

    /// A query by paper name.
    pub fn query(&self, name: &str) -> Option<&SsbQuery> {
        self.queries.iter().find(|q| q.name == name)
    }

    /// Nominal working-set bytes of a query (fact columns only, scaled to the
    /// nominal SF) — the quantity used for throughput figures.
    pub fn nominal_working_set(&self, query: &SsbQuery) -> Result<f64> {
        let physical = self.dataset.working_set_bytes(&query.lineorder_columns)? as f64;
        Ok(physical * self.scale_weight)
    }

    /// The GPU memory nodes of the topology (used by placement checks).
    pub fn gpu_nodes(&self) -> Vec<MemoryNodeId> {
        self.topology.gpu_memory_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::config::ExecutionTarget;

    #[test]
    fn workload_builds_both_placements() {
        let w = SsbWorkload::build(0.002, 100.0, true).unwrap();
        assert_eq!(w.queries.len(), 13);
        assert!(w.engine_gpu_data.is_some());
        assert!(w.catalog_gpu.is_some());
        assert!((w.scale_weight - 50_000.0).abs() < 1e-6);
        assert!(w.block_capacity >= 128);
        assert!(w.query("Q1.1").is_some());
        assert!(w.query("Q9.1").is_none());
        let q = w.query("Q1.1").unwrap().clone();
        assert!(w.nominal_working_set(&q).unwrap() > 0.0);
    }

    #[test]
    fn config_applies_scale_weight() {
        let w = SsbWorkload::build(0.002, 1000.0, false).unwrap();
        assert!(w.engine_gpu_data.is_none());
        let cfg = w.config(EngineConfig::hybrid(24, 2));
        assert_eq!(cfg.target, ExecutionTarget::Hybrid);
        assert!((cfg.scale_weight - 500_000.0).abs() < 1e-6);
        assert_eq!(cfg.block_capacity, w.block_capacity);
    }

    #[test]
    fn physical_sf_env_override() {
        // Without the variable the default applies.
        std::env::remove_var("HETEX_PHYSICAL_SF");
        assert_eq!(physical_sf_from_env(), DEFAULT_PHYSICAL_SF);
    }
}
