//! A/B harness: adaptive re-routing (work stealing) on vs off.
//!
//! Two workloads, both the join+reduce hybrid acceptance plan in pipelined
//! mode:
//!
//! * **skewed** — the paper server with one GPU marked as a hidden 8×
//!   straggler (`ServerTopology::with_device_slowdown`): work charged to it
//!   takes 8× its modeled time while routing keeps pricing the nominal
//!   profile, so its queue backs up exactly the way an unforeseen slowdown
//!   (thermal throttling, a co-tenant) would in a real engine. Stealing must
//!   recover ≥ 10% of end-to-end simulated time with byte-identical rows.
//! * **unskewed** — the healthy paper server, where stealing must cost ≤ 2%.
//!
//! `cargo run --release -p hetex-bench --bin steal_ab` emits
//! `BENCH_steal.json`.

use crate::pipeline_ab::join_reduce_engine_on;
use hetex_common::{EngineConfig, Result, StealPolicy};
use hetex_topology::ServerTopology;

/// Hidden slowdown factor of the straggler GPU in the skewed workload.
pub const SKEW_FACTOR: f64 = 8.0;

/// One steal-on vs steal-off measurement.
#[derive(Debug, Clone)]
pub struct StealAbRow {
    /// Workload label.
    pub workload: String,
    /// Simulated seconds with `StealPolicy::TailMostLoaded`.
    pub steal_s: f64,
    /// Simulated seconds with `StealPolicy::Disabled`.
    pub no_steal_s: f64,
    /// Blocks adaptively re-routed in the stealing run (all stages).
    pub blocks_stolen: u64,
    /// Whether both runs produced byte-identical result rows.
    pub rows_identical: bool,
}

impl StealAbRow {
    /// Relative improvement of stealing over binding, in percent (negative =
    /// stealing cost time).
    pub fn improvement_pct(&self) -> f64 {
        if self.no_steal_s <= 0.0 {
            return 0.0;
        }
        (1.0 - self.steal_s / self.no_steal_s) * 100.0
    }
}

/// The full steal A/B report.
#[derive(Debug, Clone, Default)]
pub struct StealAbReport {
    /// Every measured workload.
    pub rows: Vec<StealAbRow>,
}

impl StealAbReport {
    /// Look up a row by workload label.
    pub fn get(&self, workload: &str) -> Option<&StealAbRow> {
        self.rows.iter().find(|r| r.workload == workload)
    }

    /// Serialize as pretty-printed JSON (hand-rolled; the build has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"work_stealing_ab\",\n");
        out.push_str("  \"metric\": \"simulated_seconds\",\n  \"workloads\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"steal_s\": {:.9}, \"no_steal_s\": {:.9}, \
                 \"improvement_pct\": {:.2}, \"blocks_stolen\": {}, \"rows_identical\": {}}}{}\n",
                row.workload,
                row.steal_s,
                row.no_steal_s,
                row.improvement_pct(),
                row.blocks_stolen,
                row.rows_identical,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The acceptance configuration shared by both workloads (same scale
/// extrapolation as `pipeline_ab`).
fn base_config() -> EngineConfig {
    let mut config = EngineConfig::hybrid(8, 2);
    config.scale_weight = 20_000.0;
    config.block_capacity = 2048;
    config.with_table_weight("dim", 2_500.0)
}

/// Run the join+reduce plan on `topology` with stealing on and off.
fn steal_ab_on(
    topology: std::sync::Arc<ServerTopology>,
    fact_rows: usize,
    workload: String,
) -> Result<StealAbRow> {
    let (engine, plan) = join_reduce_engine_on(topology, fact_rows)?;
    let config = base_config();
    let stealing = engine
        .session()
        .execute(&plan, &config.clone().with_steal_policy(StealPolicy::TailMostLoaded))?;
    let bound =
        engine.session().execute(&plan, &config.with_steal_policy(StealPolicy::Disabled))?;
    Ok(StealAbRow {
        workload,
        steal_s: stealing.seconds(),
        no_steal_s: bound.seconds(),
        blocks_stolen: stealing.stats.total_blocks_stolen(),
        rows_identical: stealing.rows == bound.rows,
    })
}

/// The skewed workload: one GPU is a hidden [`SKEW_FACTOR`]× straggler.
pub fn skewed_steal_ab(fact_rows: usize) -> Result<StealAbRow> {
    let topology = ServerTopology::paper_server();
    let slow_gpu = topology.gpus()[1];
    let skewed = topology.with_device_slowdown(slow_gpu, SKEW_FACTOR)?;
    steal_ab_on(skewed, fact_rows, format!("join_reduce_{}k_skewed_gpu_8x", fact_rows / 1000))
}

/// The unskewed control: stealing on a healthy server must be ~free.
pub fn unskewed_steal_ab(fact_rows: usize) -> Result<StealAbRow> {
    steal_ab_on(
        ServerTopology::paper_server(),
        fact_rows,
        format!("join_reduce_{}k_unskewed", fact_rows / 1000),
    )
}

/// Of `runs` repeated measurements, the one with the median improvement —
/// steal timing (and, in governed mode, arena-occupancy pricing) makes
/// single runs wall-clock sensitive, and the acceptance bars should gate the
/// typical outcome, not a scheduler tail.
fn median_by_improvement(mut runs: Vec<StealAbRow>) -> StealAbRow {
    runs.sort_by(|a, b| {
        a.improvement_pct().partial_cmp(&b.improvement_pct()).unwrap_or(std::cmp::Ordering::Equal)
    });
    runs.swap_remove(runs.len() / 2)
}

/// Run the A/B suite: the skewed straggler workload plus the unskewed
/// control, each reported as the median of three measurements.
pub fn run_all(fact_rows: usize) -> Result<StealAbReport> {
    let skewed = median_by_improvement(
        (0..3).map(|_| skewed_steal_ab(fact_rows)).collect::<Result<Vec<_>>>()?,
    );
    let unskewed = median_by_improvement(
        (0..3).map(|_| unskewed_steal_ab(fact_rows)).collect::<Result<Vec<_>>>()?,
    );
    Ok(StealAbReport { rows: vec![skewed, unskewed] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealing_recovers_at_least_10_percent_on_the_skewed_workload() {
        // Acceptance criterion: on the hidden-straggler workload, adaptive
        // re-routing improves end-to-end simulated time by >= 10% with
        // byte-identical rows and a non-zero steal count.
        let row = skewed_steal_ab(200_000).unwrap();
        assert!(row.rows_identical, "stealing must not change results");
        assert!(row.blocks_stolen > 0, "the straggler's backlog was never rescued");
        assert!(
            row.improvement_pct() >= 10.0,
            "stealing {}s vs bound {}s: improvement {:.1}% < 10%",
            row.steal_s,
            row.no_steal_s,
            row.improvement_pct()
        );
    }

    #[test]
    fn stealing_is_near_free_on_the_unskewed_workload() {
        // Single-run sanity bar at 5%: one measurement carries ~±2% of
        // wall-clock-dependent noise (governed routing prices live arena
        // occupancy even with zero steals), so the tight ≤2% acceptance bar
        // is enforced by the `steal_ab` bin on the median of three runs.
        let row = unskewed_steal_ab(200_000).unwrap();
        assert!(row.rows_identical, "stealing must not change results");
        assert!(
            row.improvement_pct() >= -5.0,
            "stealing {}s vs bound {}s on a healthy server: cost {:.1}% > 5%",
            row.steal_s,
            row.no_steal_s,
            -row.improvement_pct()
        );
    }

    #[test]
    fn report_json_shape() {
        let report = StealAbReport {
            rows: vec![StealAbRow {
                workload: "w".into(),
                steal_s: 0.9,
                no_steal_s: 1.0,
                blocks_stolen: 7,
                rows_identical: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"improvement_pct\": 10.00"));
        assert!(json.contains("\"blocks_stolen\": 7"));
        assert!(json.contains("\"rows_identical\": true"));
        assert!(report.get("w").is_some());
    }
}
