//! One harness per figure/table of the paper's evaluation.
//!
//! Each function builds the workload, runs every (query, system) combination
//! of the corresponding figure, prints the matrix and returns the rows so
//! tests (and EXPERIMENTS.md) can check the *shape* of the result: who wins,
//! by roughly what factor, and where the crossovers are.

use crate::micro::{MicroQuery, MicroWorkload, PAPER_PROBE_BYTES};
use crate::report::{print_matrix, speedup_summary, QueryTimeRow};
use crate::systems::{run_query, System};
use crate::workload::SsbWorkload;
use hetex_common::{EngineConfig, MemoryNodeId, Result};
use hetex_gpu_sim::device::standalone_gpu;
use hetex_jit::{CpuProvider, DeviceProvider, GpuProvider};
use std::sync::Arc;

/// A regenerated figure: its title and every measured point.
#[derive(Debug)]
pub struct Figure {
    /// Title used when printing.
    pub title: String,
    /// Every (label, series, value) measurement.
    pub rows: Vec<QueryTimeRow>,
}

impl Figure {
    /// The measurement for a (query, system) pair, if present and successful.
    pub fn seconds(&self, query: &str, system: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.query == query && r.system == system).and_then(|r| r.seconds)
    }
}

// ----------------------------------------------------------------- Figure 4

/// Figure 4: SSB with GPU-fitting working sets (nominal SF100), data resident
/// in GPU memory for the GPU systems.
pub fn figure4(physical_sf: f64) -> Result<Figure> {
    let workload = SsbWorkload::build(physical_sf, 100.0, true)?;
    let mut rows = Vec::new();
    for query in &workload.queries {
        for system in System::figure4_lineup() {
            rows.push(run_query(&workload, system, query, true));
        }
    }
    let text_rows = rows.clone();
    print_matrix("Figure 4: SSB SF100, GPU-resident working sets (seconds)", &rows);
    if let Some((geo, max)) = speedup_summary(&text_rows, "DBMS G", "Proteus GPUs") {
        println!("Proteus GPUs vs DBMS G: geo-mean {geo:.2}x, max {max:.2}x (paper: up to 10.8x)");
    }
    if let Some((geo, max)) = speedup_summary(&text_rows, "DBMS C", "Proteus CPUs") {
        println!("Proteus CPUs vs DBMS C: geo-mean {geo:.2}x, max {max:.2}x (paper: up to 2x)");
    }
    Ok(Figure { title: "Figure 4".into(), rows })
}

// ----------------------------------------------------------------- Figure 5

/// Figure 5: SSB with non-GPU-fitting working sets (nominal SF1000),
/// pre-loaded in CPU memory for every system.
pub fn figure5(physical_sf: f64) -> Result<Figure> {
    let workload = SsbWorkload::build(physical_sf, 1000.0, false)?;
    let mut rows = Vec::new();
    for query in &workload.queries {
        for system in System::figure5_lineup() {
            rows.push(run_query(&workload, system, query, false));
        }
    }
    print_matrix("Figure 5: SSB SF1000, CPU-resident working sets (seconds)", &rows);

    // §6.2: "On average, Proteus Hybrid throughput is 88.5% of the sum of the
    // throughputs of Proteus CPU and Proteus GPU."
    let mut ratios = Vec::new();
    for query in &workload.queries {
        let ws = workload.nominal_working_set(query)?;
        let get = |system: &str| {
            rows.iter()
                .find(|r| r.query == query.name && r.system == system)
                .and_then(|r| r.seconds)
        };
        if let (Some(c), Some(g), Some(h)) =
            (get("Proteus CPUs"), get("Proteus GPUs"), get("Proteus Hybrid"))
        {
            let tp = |seconds: f64| ws / seconds / 1e9;
            ratios.push(tp(h) / (tp(c) + tp(g)));
        }
    }
    if !ratios.is_empty() {
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "Proteus Hybrid throughput / (CPU + GPU throughput): {:.1}% (paper: 88.5%)",
            avg * 100.0
        );
    }
    if let Some((geo, max)) = speedup_summary(&rows, "DBMS C", "Proteus Hybrid") {
        println!("Proteus Hybrid vs DBMS C: geo-mean {geo:.2}x, max {max:.2}x (paper: 1.5-5.1x)");
    }
    if let Some((geo, max)) = speedup_summary(&rows, "DBMS G", "Proteus Hybrid") {
        println!("Proteus Hybrid vs DBMS G: geo-mean {geo:.2}x, max {max:.2}x (paper: 3.4-11.4x)");
    }
    Ok(Figure { title: "Figure 5".into(), rows })
}

// ----------------------------------------------------------------- Figure 6

/// Figure 6: scalability of Proteus on SSB SF1000 — speed-up of each query
/// group over single-threaded CPU execution, as CPU cores are added, with and
/// without the two GPUs.
pub fn figure6(physical_sf: f64, core_counts: &[usize]) -> Result<Figure> {
    let workload = SsbWorkload::build(physical_sf, 1000.0, false)?;
    let groups = [1usize, 2, 3, 4];

    let group_time = |config: EngineConfig, group: usize| -> Result<f64> {
        let mut total = 0.0;
        for query in workload.queries.iter().filter(|q| q.group == group) {
            total += workload
                .engine_cpu_data
                .session()
                .execute(&query.plan, &workload.config(config.clone()))?
                .seconds();
        }
        Ok(total)
    };

    let mut rows = Vec::new();
    for &group in &groups {
        let sequential = group_time(EngineConfig::cpu_only(1), group)?;
        for &gpus in &[0usize, 2] {
            let series = if gpus == 0 { "No GPUs".to_string() } else { "2 GPUs".to_string() };
            for &cores in core_counts {
                if cores == 0 && gpus == 0 {
                    continue;
                }
                let config = match (cores, gpus) {
                    (0, g) => EngineConfig::gpu_only(g),
                    (c, 0) => EngineConfig::cpu_only(c),
                    (c, g) => EngineConfig::hybrid(c, g),
                };
                let time = group_time(config, group)?;
                rows.push(QueryTimeRow {
                    query: format!("group {group} @ {cores} cores"),
                    system: series.clone(),
                    seconds: Some(sequential / time),
                    note: None,
                });
            }
        }
    }
    print_matrix("Figure 6: Proteus scalability on SSB SF1000 (speed-up over 1 CPU core)", &rows);
    Ok(Figure { title: "Figure 6".into(), rows })
}

// ----------------------------------------------------------------- Figure 7

/// Figure 7: microbenchmark scale-up — the sum and join queries across CPU
/// core counts and 0/1/2 GPUs, plus the "without HetExchange" single-device
/// baselines, reported as speed-up over 1 CPU core without HetExchange.
pub fn figure7(probe_rows: usize, core_counts: &[usize]) -> Result<Figure> {
    let workload = MicroWorkload::build(probe_rows)?;
    let nominal = PAPER_PROBE_BYTES;
    let mut rows = Vec::new();

    for query in [MicroQuery::Sum, MicroQuery::Join] {
        // Baselines without HetExchange (dashed lines in the paper).
        let mut no_hetex_cpu = EngineConfig::cpu_only(1);
        no_hetex_cpu.hetexchange_enabled = false;
        let base_cpu = workload.run(query, no_hetex_cpu, nominal)?;
        let mut no_hetex_gpu = EngineConfig::gpu_only(1);
        no_hetex_gpu.hetexchange_enabled = false;
        let base_gpu = workload.run(query, no_hetex_gpu, nominal)?;
        rows.push(QueryTimeRow {
            query: format!("{} w/o HetExchange 1 CPU", query.label()),
            system: "baseline".into(),
            seconds: Some(1.0),
            note: None,
        });
        rows.push(QueryTimeRow {
            query: format!("{} w/o HetExchange 1 GPU", query.label()),
            system: "baseline".into(),
            seconds: Some(base_cpu / base_gpu),
            note: None,
        });

        for &gpus in &[0usize, 1, 2] {
            let series = format!("{} GPUs", gpus);
            for &cores in core_counts {
                if cores == 0 && gpus == 0 {
                    continue;
                }
                let config = match (cores, gpus) {
                    (0, g) => EngineConfig::gpu_only(g),
                    (c, 0) => EngineConfig::cpu_only(c),
                    (c, g) => EngineConfig::hybrid(c, g),
                };
                let time = workload.run(query, config, nominal)?;
                rows.push(QueryTimeRow {
                    query: format!("{} @ {cores} cores", query.label()),
                    system: series.clone(),
                    seconds: Some(base_cpu / time),
                    note: None,
                });
            }
        }
    }
    print_matrix(
        "Figure 7: microbenchmark scale-up (speed-up over 1 CPU core without HetExchange)",
        &rows,
    );
    Ok(Figure { title: "Figure 7".into(), rows })
}

// ----------------------------------------------------------------- Figure 8

/// Figure 8: microbenchmark size-up at DOP = 1 — execution time of the sum and
/// join queries with and without the HetExchange operators, over input sizes.
pub fn figure8(probe_rows: usize, sizes_gb: &[f64]) -> Result<Figure> {
    let workload = MicroWorkload::build(probe_rows)?;
    let mut rows = Vec::new();
    for query in [MicroQuery::Sum, MicroQuery::Join] {
        for &(device, label) in &[(false, "CPU"), (true, "GPU")] {
            for &with_hetex in &[true, false] {
                let series = format!(
                    "1 {label} {}",
                    if with_hetex { "with HetExchange" } else { "without HetExchange" }
                );
                for &gb in sizes_gb {
                    let mut config =
                        if device { EngineConfig::gpu_only(1) } else { EngineConfig::cpu_only(1) };
                    config.hetexchange_enabled = with_hetex;
                    let time = workload.run(query, config, gb * 1e9)?;
                    rows.push(QueryTimeRow {
                        query: format!("{} {gb} GB", query.label()),
                        system: series.clone(),
                        seconds: Some(time),
                        note: None,
                    });
                }
            }
        }
    }
    print_matrix("Figure 8: microbenchmark size-up at DOP=1 (seconds)", &rows);
    Ok(Figure { title: "Figure 8".into(), rows })
}

// ------------------------------------------------------------------ Table 1

/// Table 1: the device-provider interface, and how each provider specializes
/// the same pipeline blueprint (Figure 3 / Listing 1).
pub fn table1() -> String {
    let methods = [
        ("allocStateVar", "get/releaseBuffer", "#threadsInWorker"),
        ("freeStateVar", "malloc/free", "threadIdInWorker"),
        ("storeStateVar", "convertToMachineCode", "loadMachineCode"),
        ("loadStateVar", "workerScopedAtomic<T, Op>", ""),
    ];
    let mut out = String::new();
    out.push_str("== Table 1: functions overloaded in device providers, per device ==\n");
    for (a, b, c) in methods {
        out.push_str(&format!("{a:<16}{b:<28}{c}\n"));
    }

    let cpu = CpuProvider::new(MemoryNodeId::new(0));
    let gpu = GpuProvider::new(Arc::new(standalone_gpu()));
    out.push_str(&format!(
        "\nCPU provider: #threadsInWorker = {}, threadIdInWorker(lane 7) = {}\n",
        cpu.threads_in_worker(),
        cpu.thread_id_in_worker(7)
    ));
    out.push_str(&format!(
        "GPU provider: #threadsInWorker = {}, threadIdInWorker(lane 7) = {}\n",
        gpu.threads_in_worker(),
        gpu.thread_id_in_worker(7)
    ));

    // The same blueprint, specialized per device (Figure 3).
    let pipeline = hetex_jit::CompiledPipeline::new(
        hetex_common::PipelineId::new(9),
        hetex_topology::DeviceKind::Gpu,
        2,
        vec![hetex_jit::Step::Filter { predicate: hetex_jit::Expr::col(0).gt_lit(42) }],
        hetex_jit::TerminalStep::Reduce {
            aggs: vec![hetex_jit::AggSpec::sum(hetex_jit::Expr::col(1))],
            slot: hetex_jit::StateSlot(0),
        },
    )
    .expect("valid pipeline");
    out.push_str("\n-- CPU specialization of the running example --\n");
    out.push_str(&cpu.convert_to_machine_code(&pipeline));
    out.push_str("\n-- GPU specialization of the running example --\n");
    out.push_str(&gpu.convert_to_machine_code(&pipeline));
    println!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SF: f64 = 0.002;

    #[test]
    fn figure4_shapes_match_the_paper() {
        let fig = figure4(TEST_SF).unwrap();
        // 13 queries x 4 systems.
        assert_eq!(fig.rows.len(), 13 * 4);
        // With GPU-resident working sets, GPUs beat CPUs (Q1.1) and Proteus
        // GPU is at least as fast as DBMS G.
        let gpu = fig.seconds("Q1.1", "Proteus GPUs").unwrap();
        let cpu = fig.seconds("Q1.1", "Proteus CPUs").unwrap();
        let dbms_g = fig.seconds("Q1.1", "DBMS G").unwrap();
        let dbms_c = fig.seconds("Q1.1", "DBMS C").unwrap();
        assert!(gpu < cpu, "GPU {gpu} should beat CPU {cpu} at SF100");
        assert!(gpu <= dbms_g, "Proteus GPU {gpu} should not lose to DBMS G {dbms_g}");
        // The two CPU systems land in the same ballpark (the paper shows them
        // within ~1.5x of each other on the single-join flight).
        assert!(
            cpu <= dbms_c * 1.6,
            "Proteus CPU {cpu} should be competitive with DBMS C {dbms_c}"
        );
        assert!(
            dbms_c <= cpu * 1.6,
            "DBMS C {dbms_c} should be competitive with Proteus CPU {cpu}"
        );
        // DBMS G cannot run Q2.2.
        assert!(fig.seconds("Q2.2", "DBMS G").is_none());
        assert!(fig.seconds("Q2.2", "Proteus GPUs").is_some());
    }

    #[test]
    fn figure5_hybrid_wins_and_q1_is_cpu_friendly() {
        let fig = figure5(TEST_SF).unwrap();
        assert_eq!(fig.rows.len(), 13 * 5);
        for query in ["Q1.1", "Q2.1", "Q3.1", "Q4.1", "Q4.3"] {
            let hybrid = fig.seconds(query, "Proteus Hybrid").unwrap();
            let cpu = fig.seconds(query, "Proteus CPUs").unwrap();
            if let Some(gpu) = fig.seconds(query, "Proteus GPUs") {
                assert!(
                    hybrid <= gpu * 1.05,
                    "{query}: hybrid {hybrid} should not lose to GPU-only {gpu}"
                );
            }
            assert!(
                hybrid <= cpu * 1.05,
                "{query}: hybrid {hybrid} should not lose to CPU-only {cpu}"
            );
        }
        // PCIe-bound GPUs lose to CPUs on the single-join flight (§6.2).
        let cpu = fig.seconds("Q1.1", "Proteus CPUs").unwrap();
        let gpu = fig.seconds("Q1.1", "Proteus GPUs").unwrap();
        assert!(cpu < gpu, "Q1.1 at SF1000: CPU {cpu} should beat PCIe-bound GPU {gpu}");
        // DBMS G fails Q2.2 and Q4.3 at SF1000.
        assert!(fig.seconds("Q2.2", "DBMS G").is_none());
        assert!(fig.seconds("Q4.3", "DBMS G").is_none());
        assert!(fig.seconds("Q4.3", "Proteus Hybrid").is_some());
    }

    #[test]
    fn figure6_scales_with_cores_and_gpus() {
        let fig = figure6(TEST_SF, &[1, 8]).unwrap();
        let one = fig.seconds("group 1 @ 1 cores", "No GPUs").unwrap();
        let eight = fig.seconds("group 1 @ 8 cores", "No GPUs").unwrap();
        assert!((one - 1.0).abs() < 0.2, "1 core is the baseline, got {one}");
        assert!(eight > 3.0, "8 cores should speed group 1 up >3x, got {eight}");
        let with_gpus = fig.seconds("group 2 @ 8 cores", "2 GPUs").unwrap();
        let without = fig.seconds("group 2 @ 8 cores", "No GPUs").unwrap();
        assert!(
            with_gpus > without,
            "adding GPUs should increase group 2 speed-up ({with_gpus} vs {without})"
        );
    }

    #[test]
    fn figure7_sum_saturates_and_join_loves_gpus() {
        let fig = figure7(30_000, &[1, 16, 24]).unwrap();
        let s16 = fig.seconds("sum @ 16 cores", "0 GPUs").unwrap();
        let s24 = fig.seconds("sum @ 24 cores", "0 GPUs").unwrap();
        assert!(s16 > 8.0, "sum should scale well to 16 cores, got {s16}");
        assert!(s24 < s16 * 1.3, "sum saturates past 16 cores ({s16} -> {s24})");
        let join_gpu = fig.seconds("join @ 1 cores", "2 GPUs").unwrap();
        let join_cpu = fig.seconds("join @ 1 cores", "0 GPUs").unwrap();
        assert!(
            join_gpu > 3.0 * join_cpu,
            "two GPUs should dominate the join microbenchmark ({join_gpu} vs {join_cpu})"
        );
        // The dashed no-HetExchange baselines exist.
        assert!(fig.seconds("sum w/o HetExchange 1 CPU", "baseline").is_some());
        assert!(fig.seconds("join w/o HetExchange 1 GPU", "baseline").is_some());
    }

    #[test]
    fn figure8_overhead_shrinks_with_input_size() {
        let fig = figure8(20_000, &[0.125, 8.0]).unwrap();
        let with_small = fig.seconds("sum 0.125 GB", "1 CPU with HetExchange").unwrap();
        let without_small = fig.seconds("sum 0.125 GB", "1 CPU without HetExchange").unwrap();
        let with_big = fig.seconds("sum 8 GB", "1 CPU with HetExchange").unwrap();
        let without_big = fig.seconds("sum 8 GB", "1 CPU without HetExchange").unwrap();
        let small_ratio = with_small / without_small;
        let big_ratio = with_big / without_big;
        assert!(small_ratio > big_ratio, "overhead must be relatively larger for small inputs");
        assert!(big_ratio < 1.15, "overhead is amortized for large inputs, got {big_ratio}");
    }

    #[test]
    fn table1_lists_the_provider_surface() {
        let text = table1();
        assert!(text.contains("allocStateVar"));
        assert!(text.contains("workerScopedAtomic"));
        assert!(text.contains("neighborhood_reduce"));
        assert!(text.contains("single atomic per block"));
    }
}
