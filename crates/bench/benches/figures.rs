//! Criterion smoke pass over the figure harnesses.
//!
//! `cargo bench` runs each figure at a reduced physical scale and sweep so the
//! whole suite completes quickly; the full sweeps used for EXPERIMENTS.md are
//! produced by the `fig4` … `fig8` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use hetex_bench::figures;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("figure4_ssb_sf100", |b| b.iter(|| figures::figure4(0.002).unwrap()));
    group.bench_function("figure5_ssb_sf1000", |b| b.iter(|| figures::figure5(0.002).unwrap()));
    group.bench_function("figure6_scalability", |b| {
        b.iter(|| figures::figure6(0.002, &[1, 8, 24]).unwrap())
    });
    group.bench_function("figure7_microbench_scaleup", |b| {
        b.iter(|| figures::figure7(30_000, &[1, 8, 24]).unwrap())
    });
    group.bench_function("figure8_microbench_sizeup", |b| {
        b.iter(|| figures::figure8(20_000, &[0.125, 1.0, 16.0]).unwrap())
    });
    group.bench_function("table1_device_providers", |b| b.iter(figures::table1));
    group.finish();
}

criterion_group!(figures_group, bench_figures);
criterion_main!(figures_group);
