//! Criterion micro-benchmarks of the HetExchange building blocks.
//!
//! These measure the *wall-clock* performance of the reproduction's own
//! components (routing throughput, pack/unpack, hash join pipelines, DMA
//! scheduling, the simulated GPU), complementing the figure harnesses, which
//! report *simulated* times on the modeled server.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hetex_common::{Block, BlockHandle, BlockId, BlockMeta, ColumnData, MemoryNodeId, PipelineId};
use hetex_core::pack::{Packer, Unpacker};
use hetex_core::plan::RouterPolicy;
use hetex_core::router::{ConsumerSlot, Router};
use hetex_gpu_sim::device::standalone_gpu;
use hetex_gpu_sim::LaunchConfig;
use hetex_jit::{AggSpec, CompiledPipeline, ExecCtx, Expr, SharedState, Step, TerminalStep};
use hetex_topology::{Affinity, DeviceId, DeviceKind, DmaEngine, ServerTopology, SimTime};
use std::sync::Arc;

fn block_of(rows: usize) -> BlockHandle {
    let a: Vec<i64> = (0..rows as i64).map(|i| i % 1000).collect();
    let b: Vec<i64> = (0..rows as i64).collect();
    let block = Block::new(vec![ColumnData::Int64(a), ColumnData::Int64(b)], rows).unwrap();
    BlockHandle::new(block, BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0)))
}

fn bench_router(c: &mut Criterion) {
    let slots: Vec<ConsumerSlot> = (0..26)
        .map(|i| ConsumerSlot {
            kind: DeviceKind::CpuCore,
            affinity: Affinity::cpu(DeviceId::new(i)),
        })
        .collect();
    let router = Router::new(RouterPolicy::LeastLoaded, &slots).unwrap();
    let meta = BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0));
    let loads: Vec<u64> = (0..26).map(|i| (i as u64) * 1000).collect();
    let mut group = c.benchmark_group("router");
    group.throughput(Throughput::Elements(1));
    group.bench_function("least_loaded_route", |b| {
        b.iter(|| router.route(std::hint::black_box(&meta), std::hint::black_box(&loads)))
    });
    group.finish();
}

fn bench_pack_unpack(c: &mut Criterion) {
    let rows: Vec<Vec<i64>> = (0..10_000).map(|i| vec![i, i * 2, i * 3]).collect();
    let mut group = c.benchmark_group("pack");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("pack_10k_tuples", |b| {
        b.iter_batched(
            || rows.clone(),
            |rows| {
                let mut packer = Packer::new(1024, MemoryNodeId::new(0));
                let mut blocks = Vec::new();
                for row in rows {
                    if let Some(b) = packer.push(row).unwrap() {
                        blocks.push(b);
                    }
                }
                blocks.extend(packer.flush().unwrap());
                blocks
            },
            BatchSize::SmallInput,
        )
    });
    let handle = block_of(10_000);
    group.bench_function("unpack_10k_tuples", |b| {
        b.iter(|| Unpacker::rows(std::hint::black_box(&handle)).map(|r| r[0]).sum::<i64>())
    });
    group.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let mut state = SharedState::new();
    let ht = state.add_hash_table(1);
    for k in 0..1_000 {
        state.hash_table(ht).unwrap().insert(k, vec![k * 10]);
    }
    let acc = state.add_accumulators(&[AggSpec::sum(Expr::col(2)), AggSpec::count()]);

    let cpu_pipeline = CompiledPipeline::new(
        PipelineId::new(1),
        DeviceKind::CpuCore,
        2,
        vec![
            Step::Filter { predicate: Expr::col(0).gt_lit(10) },
            Step::HashJoinProbe { key: Expr::col(0), slot: ht, payload_width: 1 },
        ],
        TerminalStep::Reduce {
            aggs: vec![AggSpec::sum(Expr::col(2)), AggSpec::count()],
            slot: acc,
        },
    )
    .unwrap();
    let gpu_pipeline = CompiledPipeline::new(
        PipelineId::new(2),
        DeviceKind::Gpu,
        2,
        cpu_pipeline.steps().to_vec(),
        cpu_pipeline.terminal().clone(),
    )
    .unwrap();

    let handle = block_of(64 * 1024);
    let mut group = c.benchmark_group("compiled_pipeline");
    group.throughput(Throughput::Elements(handle.rows() as u64));
    group.bench_function("cpu_filter_probe_reduce_64k", |b| {
        let mut ctx = ExecCtx::cpu(MemoryNodeId::new(0), 1024);
        b.iter(|| cpu_pipeline.process_block(&handle, &state, &mut ctx).unwrap())
    });
    group.bench_function("gpu_filter_probe_reduce_64k", |b| {
        let gpu = Arc::new(standalone_gpu());
        let mut ctx = ExecCtx::gpu(gpu, 1024);
        ctx.launch_config = LaunchConfig::new(16, 128);
        b.iter(|| gpu_pipeline.process_block(&handle, &state, &mut ctx).unwrap())
    });
    group.finish();
}

fn bench_dma(c: &mut Criterion) {
    let topology = ServerTopology::paper_server();
    let dma = DmaEngine::new(topology);
    let mut group = c.benchmark_group("dma");
    group.bench_function("schedule_pcie_transfer", |b| {
        b.iter(|| {
            dma.schedule(
                std::hint::black_box(1 << 20) as f64,
                MemoryNodeId::new(0),
                MemoryNodeId::new(2),
                SimTime::ZERO,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_gpu_sim(c: &mut Criterion) {
    let gpu = standalone_gpu();
    let data: Vec<i64> = (0..256 * 1024).collect();
    let mut group = c.benchmark_group("gpu_sim");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("grid_stride_sum_256k", |b| {
        b.iter(|| {
            let acc = hetex_gpu_sim::DeviceAtomicI64::new(0);
            gpu.launch(LaunchConfig::new(16, 128), |t| {
                let mut local = 0;
                for i in t.grid_stride(data.len()) {
                    local += data[i];
                }
                acc.fetch_add(local);
            });
            acc.load()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_router,
    bench_pack_unpack,
    bench_pipelines,
    bench_dma,
    bench_gpu_sim
);
criterion_main!(benches);
