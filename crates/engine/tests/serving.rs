//! Engine-reuse and multi-query serving invariants.
//!
//! * The topology micro-probe runs exactly once per engine: every query —
//!   including every degraded-restart attempt — reuses the construction-time
//!   [`CalibratedConstants`] by `Arc` (pointer identity, not just value
//!   equality: `probe()` allocates fresh constants per call, so a shared
//!   pointer proves the probe never re-ran).
//! * Concurrent `Proteus::execute` calls from many threads are as good as
//!   serial ones: byte-identical rows, zero staging leaks, and — with
//!   work-stealing disabled, where execution is wall-clock independent —
//!   bit-identical simulated times (each query runs on private clocks, so
//!   co-runners cannot corrupt each other's accounting).
//! * The [`QueryServer`] session layer: admission never exceeds the
//!   per-node byte budget, rows are byte-identical to single-query runs,
//!   the fair timeline's latencies dominate each query's isolated time, and
//!   the makespan never exceeds the serial back-to-back baseline.

use hetex_common::{
    ColumnData, DataType, EngineConfig, HetError, Priority, ServeConfig, StealPolicy,
};
use hetex_engine::{Proteus, QueryServer};
use hetex_jit::{AggSpec, Expr};
use hetex_storage::TableBuilder;
use hetex_topology::{ServerTopology, SimTime};
use std::sync::Arc;

fn engine_with_table(rows: usize) -> Proteus {
    engine_on(ServerTopology::paper_server(), rows)
}

fn engine_on(topology: Arc<ServerTopology>, rows: usize) -> Proteus {
    let engine = Proteus::new(topology);
    let nodes = engine.topology().cpu_memory_nodes();
    let table = TableBuilder::new("t")
        .column(
            "a",
            DataType::Int32,
            ColumnData::Int32((0..rows as i32).map(|i| i % 1000).collect()),
        )
        .column("b", DataType::Int64, ColumnData::Int64((0..rows as i64).map(|i| i * 2).collect()))
        .build(&nodes, 8192)
        .unwrap();
    engine.register_table(table);
    engine
}

fn sum_where_plan(threshold: i64) -> hetex_core::RelNode {
    hetex_core::RelNode::scan("t", &["a", "b"])
        .filter(Expr::col(0).gt_lit(threshold))
        .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum_b"])
}

#[test]
fn micro_probe_runs_once_per_engine() {
    let engine = engine_with_table(50_000);
    let reference = Arc::clone(engine.probed_constants());
    for config in [EngineConfig::cpu_only(4), EngineConfig::hybrid(4, 2), EngineConfig::gpu_only(2)]
    {
        for _ in 0..3 {
            let outcome = engine.session().execute(&sum_where_plan(42), &config).unwrap();
            let probed = outcome
                .stats
                .probed_constants
                .as_ref()
                .expect("pipelined runs report probed constants");
            assert!(
                Arc::ptr_eq(probed, &reference),
                "query re-probed the topology instead of reusing the engine's constants"
            );
        }
    }
}

#[test]
fn degraded_restarts_reuse_the_engine_probe() {
    use hetex_topology::FaultPlan;
    let topology = ServerTopology::paper_server();
    let gpus = topology.gpus();
    let faulted = topology
        .with_fault_plan(
            FaultPlan::new()
                .abort_device(gpus[0], SimTime::ZERO)
                .abort_device(gpus[1], SimTime::ZERO),
        )
        .unwrap();
    let engine = engine_on(faulted, 50_000);
    let reference = Arc::clone(engine.probed_constants());
    let outcome =
        engine.session().execute(&sum_where_plan(42), &EngineConfig::gpu_only(2)).unwrap();
    assert!(outcome.stats.degraded_restarts >= 1, "the dead GPUs must force restarts");
    let probed = outcome.stats.probed_constants.as_ref().unwrap();
    assert!(Arc::ptr_eq(probed, &reference), "a degraded-restart attempt re-probed the topology");
}

#[test]
fn concurrent_executes_match_serial_bit_for_bit() {
    // Steal disabled: execution is wall-clock independent, so even the
    // simulated times must be bit-identical between serial and concurrent
    // runs — the private-clock guarantee.
    let engine = Arc::new(engine_with_table(100_000));
    let configs: Vec<EngineConfig> = (0..4)
        .map(|i| {
            let mut c = match i % 2 {
                0 => EngineConfig::cpu_only(4),
                _ => EngineConfig::hybrid(4, 2),
            };
            c.steal_policy = StealPolicy::Disabled;
            c
        })
        .collect();
    let serial: Vec<_> = configs
        .iter()
        .enumerate()
        .map(|(i, c)| engine.session().execute(&sum_where_plan(i as i64 * 100), c).unwrap())
        .collect();

    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    engine.session().execute(&sum_where_plan(i as i64 * 100), c).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(s.rows, c.rows, "query {i}: concurrent rows differ from serial");
        assert_eq!(
            s.sim_time, c.sim_time,
            "query {i}: co-runners corrupted the simulated accounting"
        );
        assert_eq!(c.stats.staging_leaked_bytes, 0, "query {i}: leaked staging bytes");
        assert_eq!(s.stats.bytes_transferred, c.stats.bytes_transferred, "query {i}");
    }
}

#[test]
fn concurrent_executes_with_stealing_keep_rows_exact() {
    // With adaptive stealing the time accounting legitimately depends on
    // load order, but the rows never may.
    let engine = Arc::new(engine_with_table(100_000));
    let config = EngineConfig::hybrid(6, 2);
    let expected = engine.session().execute(&sum_where_plan(42), &config).unwrap().rows;
    let rows: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let config = config.clone();
                scope.spawn(move || engine.session().execute(&sum_where_plan(42), &config).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for outcome in rows {
        assert_eq!(outcome.rows, expected);
        assert_eq!(outcome.stats.staging_leaked_bytes, 0);
    }
}

#[test]
fn query_server_serves_batches_with_exact_rows_and_bounded_admission() {
    let engine = Arc::new(engine_with_table(100_000));
    let mut config = EngineConfig::cpu_only(4);
    config.steal_policy = StealPolicy::Disabled;
    let footprint = config.est_serve_footprint_bytes();
    // A budget for two queries at a time: the batch of four must overlap in
    // pairs, never beyond.
    let serve = ServeConfig::serving().with_workers(4).with_admission_bytes(Some(2 * footprint));

    let expected: Vec<Vec<Vec<i64>>> = (0..4)
        .map(|i| engine.session().execute(&sum_where_plan(i * 100), &config).unwrap().rows)
        .collect();

    let mut server = QueryServer::new(Arc::clone(&engine), serve).unwrap();
    let priorities = [Priority::Low, Priority::Normal, Priority::High, Priority::Normal];
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            server
                .session()
                .priority(priorities[i])
                .submit(sum_where_plan(i as i64 * 100), config.clone())
                .unwrap()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait().unwrap();
        assert_eq!(outcome.rows, expected[i], "served query {i} rows differ from single-query");
        assert_eq!(outcome.stats.staging_leaked_bytes, 0);
    }
    let report = server.shutdown().unwrap();
    assert_eq!(report.sessions.len(), 4);
    assert_eq!(report.admission_budget, 2 * footprint);
    for (node, peak) in &report.admission_peaks {
        assert!(
            *peak <= report.admission_budget,
            "admission peak {peak} on {node} exceeds the budget"
        );
        assert!(*peak >= footprint, "at least one query was admitted on {node}");
    }
    // The fair timeline's invariants: latency dominates the isolated time
    // (co-runners never accelerate a query), the batch never beats serial,
    // and serving overlaps at least two queries (makespan < serial).
    for s in &report.sessions {
        assert!(s.finished_at >= s.admitted_at);
        assert!(s.latency() >= s.isolated, "query {} served faster than its isolated time", s.seq);
    }
    assert!(report.makespan <= report.serial);
    assert!(
        report.makespan < report.serial,
        "four capacity-sharing queries must overlap somewhere"
    );
    assert!(report.speedup() >= 1.0);
    // High priority is admitted no later than any normal/low co-runner.
    let high = report.sessions.iter().find(|s| s.priority == Priority::High).unwrap();
    for s in &report.sessions {
        assert!(high.admitted_at <= s.admitted_at, "a lower class bypassed high priority");
    }
}

#[test]
fn query_server_requires_serving_enabled_and_fitting_footprints() {
    let engine = Arc::new(engine_with_table(1_000));
    let err = QueryServer::new(Arc::clone(&engine), ServeConfig::disabled()).unwrap_err();
    assert_eq!(err.category(), "config");

    let serve = ServeConfig::serving().with_admission_bytes(Some(1024));
    let mut server = QueryServer::new(Arc::clone(&engine), serve).unwrap();
    let config = EngineConfig::cpu_only(2);
    assert!(config.est_serve_footprint_bytes() > 1024);
    let err = server.session().submit(sum_where_plan(42), config).unwrap_err();
    assert_eq!(err.category(), "config");
    assert!(matches!(err, HetError::Config(_)));
    let report = server.shutdown().unwrap();
    assert!(report.sessions.is_empty());
    assert_eq!(report.makespan, SimTime::ZERO);
}

#[test]
fn shared_observer_learns_across_served_queries() {
    // The server threads one SlowdownObserver through every query; after a
    // batch it holds an EWMA for the device slots the batch used.
    let engine = Arc::new(engine_with_table(50_000));
    let serve = ServeConfig::serving().with_workers(2);
    let mut server = QueryServer::new(Arc::clone(&engine), serve).unwrap();
    let observer = Arc::clone(server.observer());
    let tickets: Vec<_> = (0..3)
        .map(|_| server.session().submit(sum_where_plan(42), EngineConfig::cpu_only(4)).unwrap())
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    server.shutdown().unwrap();
    let snapshot = observer.snapshot();
    assert_eq!(snapshot.len(), engine.topology().devices().len());
    assert!(snapshot.iter().all(|&s| s.is_finite() && s > 0.0));
}
