//! Chaos invariants of the fault-tolerance ladder: random queries under
//! random injected fault schedules must either produce byte-identical rows
//! (with zero leaked staging bytes and bounded simulated time) or fail with
//! a clean, structured error — never wrong rows, never a hang, never a
//! leaked lease.
//!
//! The case count and seed come from the environment so CI can randomize
//! while every failure stays reproducible:
//!
//! * `HETEX_CHAOS_SEED`  — base seed (decimal or 0x-hex; default fixed)
//! * `HETEX_CHAOS_CASES` — number of random cases (default 12)
//!
//! A failing case prints its own derived seed; re-running with
//! `HETEX_CHAOS_SEED=<that seed> HETEX_CHAOS_CASES=1` replays exactly it.

use hetex_common::{ColumnData, DataType, EngineConfig, StealPolicy};
use hetex_engine::Proteus;
use hetex_jit::{AggSpec, Expr};
use hetex_storage::TableBuilder;
use hetex_topology::{DeviceId, FaultPlan, ServerTopology, SimTime};
use std::sync::Arc;

/// Splitmix64: tiny, seedable, good enough to scatter fault schedules.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    match std::env::var(key) {
        Ok(v) => {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| v.parse())
                .unwrap_or_else(|_| panic!("{key} must be a u64, got {v:?}"))
        }
        Err(_) => default,
    }
}

#[test]
fn random_fault_schedules_never_corrupt_rows_or_leak() {
    let base_seed = env_u64("HETEX_CHAOS_SEED", 0xC0FF_EE00_5EED);
    let cases = env_u64("HETEX_CHAOS_CASES", 12);
    println!("chaos: base seed {base_seed:#x}, {cases} cases");
    for case in 0..cases {
        let case_seed = Rng(base_seed ^ case.wrapping_mul(0xA5A5_A5A5)).next();
        run_case(case, case_seed);
    }
}

fn run_case(case: u64, seed: u64) {
    let mut rng = Rng(seed);
    let topology = ServerTopology::paper_server();
    let gpus = topology.gpus();
    let cores = topology.cpu_cores();

    // Random engine configuration.
    let mut config = match rng.below(3) {
        0 => EngineConfig::cpu_only(1 + rng.below(4) as usize),
        1 => EngineConfig::gpu_only(1 + rng.below(2) as usize),
        _ => EngineConfig::hybrid(1 + rng.below(8) as usize, 1 + rng.below(2) as usize),
    };
    config.block_capacity = [1024, 2048, 4096][rng.below(3) as usize];
    if rng.chance(0.4) {
        config.steal_policy = StealPolicy::Disabled;
    }
    let governed = rng.chance(0.5);
    if governed {
        config.staging_bytes = Some(config.min_staging_bytes() * (2 + rng.below(6)));
    }

    // Random fault schedule: 1-3 faults, biased toward the GPUs (the likely
    // workers). Device *busy* clocks for these small runs only reach on the
    // order of 100µs, so onsets are drawn from [0, 150µs) to actually land
    // mid-stream (including 0 = dead on arrival).
    let mut plan = FaultPlan::new();
    let mut wedges = 0u32;
    for _ in 0..1 + rng.below(3) {
        let device: DeviceId = if rng.chance(0.6) {
            gpus[rng.below(gpus.len() as u64) as usize]
        } else {
            cores[rng.below(cores.len() as u64) as usize]
        };
        let onset = SimTime::from_nanos(rng.below(50_000));
        match rng.below(4) {
            0 => plan = plan.abort_device(device, onset),
            1 => {
                // GPU busy clocks only reach a few µs at the default scale,
                // so a window starting later than that would never open:
                // transient windows cover the whole run (delayed window
                // starts are exercised by the topology unit tests and the
                // fault_ab bench).
                let p = 0.1 + 0.5 * ((rng.next() >> 11) as f64 / (1u64 << 53) as f64);
                plan = plan.transient_window(
                    device,
                    SimTime::ZERO,
                    SimTime::from_millis(10_000),
                    p,
                    seed,
                );
            }
            // Wedges cost real watchdog wall time; cap them per case.
            2 if wedges == 0 => {
                wedges += 1;
                plan = plan.wedge_worker(device, onset);
            }
            _ => {
                if governed {
                    let nodes = topology.cpu_memory_nodes();
                    let node = nodes[rng.below(nodes.len() as u64) as usize];
                    let bytes = config.staging_bytes.unwrap_or(0) / 2;
                    plan = plan.arena_burst(node, bytes, onset, SimTime::from_millis(2));
                } else {
                    plan = plan.abort_device(device, onset);
                }
            }
        }
    }

    let rows = 10_000 + rng.below(5) as usize * 10_000;
    let join = rng.chance(0.5);
    let faulted = topology.with_fault_plan(plan.clone()).expect("valid fault plan");
    let engine = Proteus::new(Arc::clone(&faulted));
    let nodes = faulted.cpu_memory_nodes();
    let fact = TableBuilder::new("fact")
        .column(
            "key",
            DataType::Int32,
            ColumnData::Int32((0..rows as i32).map(|i| i % 100).collect()),
        )
        .column("value", DataType::Int64, ColumnData::Int64((0..rows as i64).collect()))
        .build(&nodes, config.block_capacity)
        .expect("build fact");
    engine.register_table(fact);
    let rel = if join {
        let dim = TableBuilder::new("dim")
            .column("k", DataType::Int32, ColumnData::Int32((0..100).collect()))
            .column("attr", DataType::Int32, ColumnData::Int32((0..100).map(|i| i % 7).collect()))
            .build(&nodes, config.block_capacity)
            .expect("build dim");
        engine.register_table(dim);
        // SELECT SUM(value), COUNT(*) FROM fact JOIN dim ON key = k WHERE attr < 3
        let dim_plan =
            hetex_core::RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(3));
        hetex_core::RelNode::scan("fact", &["key", "value"])
            .hash_join(dim_plan, 0, 0, &[1])
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
    } else {
        hetex_core::RelNode::scan("fact", &["key", "value"])
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
    };
    let expected = if join {
        let (mut sum, mut cnt) = (0i64, 0i64);
        for i in 0..rows as i64 {
            if (i % 100) % 7 < 3 {
                sum += i;
                cnt += 1;
            }
        }
        vec![vec![sum, cnt]]
    } else {
        vec![vec![(0..rows as i64).sum(), rows as i64]]
    };

    let label = format!(
        "case {case} (seed {seed:#x}): target {:?} dop {}+{} cap {} governed {governed} \
         join {join} rows {rows} plan {plan:?}",
        config.target, config.cpu_dop, config.gpu_dop, config.block_capacity
    );
    match engine.session().execute(&rel, &config) {
        Ok(outcome) => {
            assert_eq!(outcome.rows, expected, "wrong rows under faults — {label}");
            assert_eq!(outcome.stats.staging_leaked_bytes, 0, "leaked staging bytes — {label}");
            assert!(
                outcome.sim_time < SimTime::from_millis(600_000),
                "unbounded simulated time {} — {label}",
                outcome.sim_time
            );
            // Per-attempt accounting: one entry per attempt (restarts + the
            // final success), the last entry is the reported sim time, and
            // the total is their sum.
            let attempts = &outcome.stats.attempt_sim_times;
            assert_eq!(
                attempts.len(),
                outcome.stats.degraded_restarts + 1,
                "attempt count disagrees with restarts — {label}"
            );
            assert_eq!(
                attempts.last().copied(),
                Some(outcome.sim_time),
                "last attempt time is not the reported sim time — {label}"
            );
            let sum = attempts.iter().fold(SimTime::ZERO, |acc, t| acc.add_nanos(t.as_nanos()));
            assert_eq!(
                outcome.stats.total_sim_time(),
                sum,
                "total_sim_time is not the attempt sum — {label}"
            );
            assert!(
                outcome.stats.total_sim_time() >= outcome.sim_time,
                "total below final-attempt time — {label}"
            );
        }
        Err(e) => {
            // A clean structured failure is acceptable; silent corruption or
            // an unstructured panic is not. `execution` covers degraded
            // exhaustion, `memory` a burst-starved staging arena.
            let allowed = ["device-lost", "wedged", "execution", "memory"];
            assert!(
                allowed.contains(&e.category()),
                "unexpected error category {:?} ({e}) — {label}",
                e.category()
            );
        }
    }
}

#[test]
fn failed_attempts_record_their_burned_time() {
    // Both GPUs abort mid-stream (onset past the first blocks), so the GPU
    // stage dies with no surviving sibling and forces a degraded restart
    // after the attempt has burned real simulated time.
    // That burned time must be captured from the failing executor — never
    // silently accounted as zero — so `total_sim_time` exceeds the final
    // attempt's `sim_time` by exactly the recorded burn.
    let topology = ServerTopology::paper_server();
    let gpus = topology.gpus();
    let faulted = topology
        .with_fault_plan(
            FaultPlan::new()
                .abort_device(gpus[0], SimTime::from_nanos(3_000))
                .abort_device(gpus[1], SimTime::from_nanos(3_000)),
        )
        .expect("valid fault plan");
    let engine = Proteus::new(Arc::clone(&faulted));
    let nodes = faulted.cpu_memory_nodes();
    let rows = 200_000usize;
    let table = TableBuilder::new("fact")
        .column("key", DataType::Int32, ColumnData::Int32((0..rows as i32).collect()))
        .column("value", DataType::Int64, ColumnData::Int64((0..rows as i64).collect()))
        .build(&nodes, 1024)
        .expect("build fact");
    engine.register_table(table);
    let rel = hetex_core::RelNode::scan("fact", &["key", "value"])
        .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum_v"]);
    let mut config = EngineConfig::gpu_only(2);
    config.block_capacity = 1024;
    let outcome = engine.session().execute(&rel, &config).expect("degraded restart succeeds");
    assert_eq!(outcome.rows, vec![vec![(0..rows as i64).sum::<i64>()]]);
    assert!(outcome.stats.degraded_restarts >= 1, "the mid-stream abort must force a restart");
    let attempts = &outcome.stats.attempt_sim_times;
    assert_eq!(attempts.len(), outcome.stats.degraded_restarts + 1);
    assert!(
        attempts[..attempts.len() - 1].iter().any(|t| *t > SimTime::ZERO),
        "a mid-stream device loss burned simulated time, but every failed attempt \
         recorded zero — the burn was dropped, not captured: {attempts:?}"
    );
    assert!(
        outcome.stats.total_sim_time() > outcome.sim_time,
        "total time must pay for the burned attempt"
    );
}
