//! The thin deprecated shims stay behaviourally identical to the session
//! API that replaced them (DESIGN.md §11): `Proteus::execute` /
//! `execute_observed` and `QueryServer::submit` / `submit_with_priority`
//! delegate to the same internal entry points the [`QuerySession`] builder
//! uses, so callers that have not migrated yet keep byte-identical results
//! and the same serving semantics. This suite is the only place the shims
//! are still exercised — everything else in the workspace migrated.

#![allow(deprecated)]

use hetex_common::{ColumnData, DataType, EngineConfig, Priority, ServeConfig};
use hetex_core::SlowdownObserver;
use hetex_engine::{Proteus, QueryServer};
use hetex_jit::{AggSpec, Expr};
use hetex_storage::TableBuilder;
use hetex_topology::ServerTopology;
use std::sync::Arc;

fn engine_with_table(rows: usize) -> Proteus {
    let engine = Proteus::new(ServerTopology::paper_server());
    let nodes = engine.topology().cpu_memory_nodes();
    let table = TableBuilder::new("t")
        .column(
            "a",
            DataType::Int32,
            ColumnData::Int32((0..rows as i32).map(|i| i % 1000).collect()),
        )
        .column("b", DataType::Int64, ColumnData::Int64((0..rows as i64).map(|i| i * 2).collect()))
        .build(&nodes, 8192)
        .unwrap();
    engine.register_table(table);
    engine
}

fn sum_where_plan(threshold: i64) -> hetex_core::RelNode {
    hetex_core::RelNode::scan("t", &["a", "b"])
        .filter(Expr::col(0).gt_lit(threshold))
        .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum_b"])
}

#[test]
fn execute_shim_matches_session_execute() {
    let engine = engine_with_table(50_000);
    let config = EngineConfig::hybrid(4, 2);
    let plan = sum_where_plan(42);
    let shim = engine.execute(&plan, &config).unwrap();
    let session = engine.session().execute(&plan, &config).unwrap();
    assert_eq!(shim.rows, session.rows, "the execute shim changed the rows");
    assert_eq!(shim.stats.stages, session.stats.stages, "the execute shim changed the plan");
}

#[test]
fn execute_observed_shim_feeds_the_given_observer() {
    let engine = engine_with_table(50_000);
    let config = EngineConfig::cpu_only(4);
    let plan = sum_where_plan(42);
    let observer = Arc::new(SlowdownObserver::new(engine.topology().devices().len()));
    let shim = engine.execute_observed(&plan, &config, Some(Arc::clone(&observer))).unwrap();
    let session = engine.session().observe(Arc::clone(&observer)).execute(&plan, &config).unwrap();
    assert_eq!(shim.rows, session.rows, "the execute_observed shim changed the rows");
    // Both calls fed the same shared observer: a healthy paper server reads
    // exactly nominal on every observed slot.
    assert!((shim.stats.max_observed_slowdown() - 1.0).abs() < 1e-9);
}

#[test]
fn submit_shims_match_session_submit() {
    let engine = Arc::new(engine_with_table(50_000));
    let config = EngineConfig::cpu_only(4);
    let plan = sum_where_plan(42);
    let baseline = engine.session().execute(&plan, &config).unwrap();

    let mut server = QueryServer::new(Arc::clone(&engine), ServeConfig::serving()).unwrap();
    let plain = server.submit(plan.clone(), config.clone()).unwrap();
    let prioritized =
        server.submit_with_priority(plan.clone(), config.clone(), Priority::High).unwrap();
    let session = server.session().priority(Priority::High).submit(plan, config).unwrap();
    for (label, ticket) in
        [("submit", plain), ("submit_with_priority", prioritized), ("session", session)]
    {
        let outcome = ticket.wait().unwrap();
        assert_eq!(outcome.rows, baseline.rows, "{label} changed the rows");
    }
    server.shutdown().unwrap();
}
