//! A naive, single-threaded reference executor.
//!
//! Used only for validation: it evaluates a [`RelNode`] plan directly against
//! the catalog, materializing intermediate results row by row with no
//! parallelism, no blocks and no cost model. Integration tests compare every
//! engine configuration (CPU-only / GPU-only / hybrid) and both baseline
//! engines against this executor's output.

use hetex_common::{HetError, Result};
use hetex_core::RelNode;
use hetex_jit::ir::AggFunc;
use hetex_jit::{AggSpec, Expr};
use hetex_storage::Catalog;
use std::collections::HashMap;

/// Evaluate `plan` against `catalog`, returning fully materialized rows.
/// Group-by results are sorted by key (the same order the engine reports).
pub fn reference_execute(plan: &RelNode, catalog: &Catalog) -> Result<Vec<Vec<i64>>> {
    match plan {
        RelNode::Scan { table, projection } => {
            let table = catalog.get(table)?;
            let mut columns = Vec::new();
            for name in projection {
                columns.push(table.column(name)?);
            }
            let rows = table.rows();
            let mut out = Vec::with_capacity(rows);
            for r in 0..rows {
                out.push(columns.iter().map(|c| c.get_i64(r).unwrap_or(0)).collect());
            }
            Ok(out)
        }
        RelNode::Filter { input, predicate } => {
            let rows = reference_execute(input, catalog)?;
            Ok(rows.into_iter().filter(|r| predicate.eval_bool(r)).collect())
        }
        RelNode::Project { input, exprs, .. } => {
            let rows = reference_execute(input, catalog)?;
            Ok(rows.into_iter().map(|r| exprs.iter().map(|e| e.eval(&r)).collect()).collect())
        }
        RelNode::HashJoin { build, probe, build_key, probe_key, payload } => {
            let build_rows = reference_execute(build, catalog)?;
            let probe_rows = reference_execute(probe, catalog)?;
            let mut table: HashMap<i64, Vec<Vec<i64>>> = HashMap::new();
            for row in build_rows {
                let key = *row.get(*build_key).ok_or_else(|| {
                    HetError::Plan(format!("build key column {build_key} out of range"))
                })?;
                let payload_row: Vec<i64> = payload.iter().map(|&p| row[p]).collect();
                table.entry(key).or_default().push(payload_row);
            }
            let mut out = Vec::new();
            for row in probe_rows {
                let key = *row.get(*probe_key).ok_or_else(|| {
                    HetError::Plan(format!("probe key column {probe_key} out of range"))
                })?;
                if let Some(matches) = table.get(&key) {
                    for m in matches {
                        let mut joined = row.clone();
                        joined.extend_from_slice(m);
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        RelNode::Reduce { input, aggs, .. } => {
            let rows = reference_execute(input, catalog)?;
            Ok(vec![aggregate(&rows, aggs)])
        }
        RelNode::GroupBy { input, keys, aggs, .. } => {
            let rows = reference_execute(input, catalog)?;
            let mut groups: HashMap<Vec<i64>, Vec<Vec<i64>>> = HashMap::new();
            for row in rows {
                let key: Vec<i64> = keys.iter().map(|&k| row[k]).collect();
                groups.entry(key).or_default().push(row);
            }
            let mut out: Vec<Vec<i64>> = groups
                .into_iter()
                .map(|(key, rows)| {
                    let mut row = key;
                    row.extend(aggregate(&rows, aggs));
                    row
                })
                .collect();
            out.sort();
            Ok(out)
        }
    }
}

fn aggregate(rows: &[Vec<i64>], aggs: &[AggSpec]) -> Vec<i64> {
    aggs.iter()
        .map(|agg| {
            let mut acc = agg.func.identity();
            for row in rows {
                let value = match agg.func {
                    AggFunc::Count => 1,
                    _ => agg.expr.eval(row),
                };
                acc = agg.func.accumulate(acc, value);
            }
            acc
        })
        .collect()
}

/// Convenience: the sum query of the paper's running example, as a plan.
pub fn running_example_plan(
    table: &str,
    filter_col: &str,
    sum_col: &str,
    threshold: i64,
) -> RelNode {
    RelNode::scan(table, &[filter_col, sum_col])
        .filter(Expr::col(0).gt_lit(threshold))
        .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{ColumnData, DataType, MemoryNodeId};
    use hetex_storage::TableBuilder;

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let nodes = vec![MemoryNodeId::new(0)];
        catalog.register(
            TableBuilder::new("fact")
                .column("k", DataType::Int32, ColumnData::Int32(vec![1, 2, 3, 2, 1, 9]))
                .column("v", DataType::Int64, ColumnData::Int64(vec![10, 20, 30, 40, 50, 60]))
                .build(&nodes, 4)
                .unwrap(),
        );
        catalog.register(
            TableBuilder::new("dim")
                .column("id", DataType::Int32, ColumnData::Int32(vec![1, 2, 3]))
                .column("tag", DataType::Int32, ColumnData::Int32(vec![100, 200, 300]))
                .build(&nodes, 4)
                .unwrap(),
        );
        catalog
    }

    #[test]
    fn scan_filter_reduce() {
        let plan = running_example_plan("fact", "k", "v", 1);
        let rows = reference_execute(&plan, &catalog()).unwrap();
        // k > 1 rows: (2,20),(3,30),(2,40),(9,60) -> 150
        assert_eq!(rows, vec![vec![150]]);
    }

    #[test]
    fn join_and_group_by() {
        let dim = RelNode::scan("dim", &["id", "tag"]);
        let plan = RelNode::scan("fact", &["k", "v"]).hash_join(dim, 0, 0, &[1]).group_by(
            &[2],
            vec![AggSpec::sum(Expr::col(1)), AggSpec::count()],
            &["tag", "s", "c"],
        );
        let rows = reference_execute(&plan, &catalog()).unwrap();
        // tag 100: k=1 rows v=10,50 -> 60/2 ; tag 200: v=20,40 -> 60/2 ; tag 300: v=30 -> 30/1
        assert_eq!(rows, vec![vec![100, 60, 2], vec![200, 60, 2], vec![300, 30, 1]]);
    }

    #[test]
    fn projection_and_min_max() {
        let plan = RelNode::Project {
            input: Box::new(RelNode::scan("fact", &["k", "v"])),
            exprs: vec![Expr::col(1).mul(Expr::lit(2))],
            names: vec!["v2".into()],
        }
        .reduce(vec![AggSpec::min(Expr::col(0)), AggSpec::max(Expr::col(0))], &["min", "max"]);
        let rows = reference_execute(&plan, &catalog()).unwrap();
        assert_eq!(rows, vec![vec![20, 120]]);
    }

    #[test]
    fn bad_column_index_errors() {
        let dim = RelNode::scan("dim", &["id"]);
        let plan = RelNode::scan("fact", &["k"]).hash_join(dim, 5, 0, &[0]);
        assert!(reference_execute(&plan, &catalog()).is_err());
        assert!(reference_execute(&RelNode::scan("missing", &["x"]), &catalog()).is_err());
    }
}
