//! The unified query-session API.
//!
//! [`QuerySession`] is the single entry point for running a query, whatever
//! the host: opened on a bare engine ([`Proteus::session`]) it executes
//! one-shot, opened on a server ([`QueryServer::session`]) it can also submit
//! for admission-controlled serving. The builder carries the per-query knobs
//! that used to be separate entry points:
//!
//! * [`QuerySession::priority`] — the admission class (serving only; replaces
//!   `submit_with_priority`),
//! * [`QuerySession::observe`] — a shared slowdown observer (replaces
//!   `execute_observed`),
//! * [`QuerySession::reuse_feedback`] — a shared [`FeedbackCache`] for plan
//!   re-optimization, overriding the host's own (the engine-lifetime cache
//!   for one-shot sessions, the server-lifetime cache for served ones).
//!
//! Defaults match the host exactly: a plain `engine.session().execute(..)`
//! is bit-identical to the old `engine.execute(..)`, and a server session
//! inherits the server's shared observer and feedback cache.

use crate::engine::{Proteus, QueryOutcome};
use crate::server::{QueryServer, QueryTicket};
use hetex_common::{EngineConfig, HetError, Priority, Result};
use hetex_core::{FeedbackCache, RelNode, SlowdownObserver};
use std::sync::Arc;

/// What a session runs against.
enum Host<'a> {
    Engine(&'a Proteus),
    Server(&'a mut QueryServer),
}

/// One query's submission context: host, priority class, and the shared
/// state (observer, feedback cache) the query participates in.
pub struct QuerySession<'a> {
    host: Host<'a>,
    priority: Priority,
    observer: Option<Arc<SlowdownObserver>>,
    feedback: Option<Arc<FeedbackCache>>,
}

impl std::fmt::Debug for QuerySession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySession")
            .field(
                "host",
                match self.host {
                    Host::Engine(_) => &"engine",
                    Host::Server(_) => &"server",
                },
            )
            .field("priority", &self.priority)
            .field("observer", &self.observer.is_some())
            .field("feedback", &self.feedback.is_some())
            .finish()
    }
}

impl<'a> QuerySession<'a> {
    pub(crate) fn on_engine(engine: &'a Proteus) -> Self {
        Self {
            host: Host::Engine(engine),
            priority: Priority::Normal,
            observer: None,
            feedback: None,
        }
    }

    pub(crate) fn on_server(server: &'a mut QueryServer) -> Self {
        Self {
            host: Host::Server(server),
            priority: Priority::Normal,
            observer: None,
            feedback: None,
        }
    }

    /// Admission priority class for [`Self::submit`] (ignored by
    /// [`Self::execute`], which never queues).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Share `observer` with this query: straggler EWMAs it learned from
    /// earlier queries steer this one's routing, and what this query observes
    /// flows back. A server session defaults to the server's own observer;
    /// an engine session defaults to a fresh one per query.
    pub fn observe(mut self, observer: Arc<SlowdownObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Plan-feedback cache for re-optimization (`EngineConfig::reopt`),
    /// overriding the host's: useful to share measurements across engines, or
    /// to isolate a query from the host's history with a fresh cache.
    pub fn reuse_feedback(mut self, feedback: Arc<FeedbackCache>) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Execute `plan` now, on the caller's thread, and return its outcome.
    pub fn execute(self, plan: &RelNode, config: &EngineConfig) -> Result<QueryOutcome> {
        match self.host {
            Host::Engine(engine) => engine.execute_with(plan, config, self.observer, self.feedback),
            Host::Server(server) => {
                let observer = self.observer.unwrap_or_else(|| Arc::clone(server.observer()));
                let feedback = self.feedback.unwrap_or_else(|| Arc::clone(server.feedback_cache()));
                server.engine().execute_with(plan, config, Some(observer), Some(feedback))
            }
        }
    }

    /// Submit `plan` for admission-controlled serving and return a ticket.
    /// Requires a server host ([`QueryServer::session`]); an engine session
    /// has no admission queue to submit to.
    pub fn submit(self, plan: RelNode, config: EngineConfig) -> Result<QueryTicket> {
        match self.host {
            Host::Engine(_) => Err(HetError::Config(
                "QuerySession::submit requires a server host; \
                 open the session with QueryServer::session() (or use .execute())"
                    .into(),
            )),
            Host::Server(server) => {
                server.submit_session(plan, config, self.priority, self.observer, self.feedback)
            }
        }
    }
}
