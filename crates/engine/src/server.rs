//! Multi-query serving: admission control and fair scheduling over shared
//! arenas.
//!
//! [`QueryServer`] wraps one [`Proteus`] engine behind a session API: queries
//! are submitted with a [`Priority`], **admitted** against per-node staging
//! byte budgets, and executed concurrently over a shared worker pool. The
//! pieces:
//!
//! * **Admission tokens.** The server owns a [`BlockManagerSet`] sized at
//!   [`ServeConfig::effective_admission_bytes`] per memory node; the existing
//!   [`BlockLease`] machinery *is* the admission token. A query starts only
//!   when its estimated peak staging footprint
//!   ([`EngineConfig::est_serve_footprint_bytes`]) fits on every node; the
//!   leases are held for the query's whole run and released when it finishes,
//!   waking the queue. Admission order is strict priority with FIFO inside
//!   each class and **no bypass** — a class-mate behind a too-big head waits
//!   with it, which keeps admission deterministic and starvation-free.
//! * **Shared calibration.** The topology micro-probe ran once, at the
//!   engine's construction; every served query reuses its
//!   [`CalibratedConstants`] by `Arc`. One server-lifetime
//!   [`SlowdownObserver`] is threaded through every execution, so straggler
//!   EWMAs learned by one query inform the routing of the next.
//! * **Fair timeline.** Rows are computed functionally (and are exactly the
//!   single-query rows — each query runs on private simulated clocks), while
//!   the *served* latencies come from the deterministic fluid replay of
//!   [`hetex_core::FairTimeline`]: each finished query contributes a
//!   [`ServeSession`] (measured isolated demand, per-kind busy time,
//!   priority, footprint), and [`QueryServer::shutdown`] resolves the batch
//!   into per-query admission/finish instants, the makespan, and the
//!   admission peaks — bit-reproducible regardless of how the worker threads
//!   interleaved on the wall clock.

use crate::engine::{Proteus, QueryOutcome};
use crate::session::QuerySession;
use hetex_common::{EngineConfig, HetError, MemoryNodeId, Priority, Result, ServeConfig};
use hetex_core::{CostModel, FeedbackCache, RelNode, ServeSession, SlowdownObserver};
use hetex_storage::{BlockLease, BlockManagerSet, ExhaustionPolicy};
use hetex_topology::{DeviceKind, SimTime};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A handle to one submitted query; resolves to its [`QueryOutcome`].
pub struct QueryTicket {
    /// Submission index (the order [`ServeReport::sessions`] reports in).
    seq: usize,
    slot: Arc<TicketSlot>,
}

struct TicketSlot {
    result: Mutex<Option<Result<QueryOutcome>>>,
    done: Condvar,
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket").field("seq", &self.seq).finish_non_exhaustive()
    }
}

impl QueryTicket {
    /// The query's submission index.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Block until the query finishes and take its outcome.
    pub fn wait(self) -> Result<QueryOutcome> {
        let mut result = self.slot.result.lock().expect("ticket lock poisoned");
        loop {
            if let Some(outcome) = result.take() {
                return outcome;
            }
            result = self.slot.done.wait(result).expect("ticket lock poisoned");
        }
    }
}

/// One query waiting for admission.
struct Pending {
    seq: usize,
    priority: Priority,
    plan: RelNode,
    config: EngineConfig,
    footprint: u64,
    slot: Arc<TicketSlot>,
    /// Session-level overrides of the server-lifetime shared state; `None`
    /// means "use the server's".
    observer: Option<Arc<SlowdownObserver>>,
    feedback: Option<Arc<FeedbackCache>>,
}

/// Queue state behind the server's mutex.
struct Queue {
    /// Waiting queries, kept sorted by (priority rank, submission seq):
    /// strict priority, FIFO within a class, head-only admission.
    waiting: VecDeque<Pending>,
    /// Completed session specs, indexed by submission seq (`None` until the
    /// query finishes, and permanently `None` for failed queries).
    sessions: Vec<Option<ServeSession>>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Woken on submit, on lease release, and on shutdown.
    admit: Condvar,
}

/// One served query's resolved place on the fair timeline.
#[derive(Debug, Clone, Copy)]
pub struct ServedQuery {
    /// Submission index.
    pub seq: usize,
    /// Priority class the query was served under.
    pub priority: Priority,
    /// Measured isolated simulated time (the query's demand).
    pub isolated: SimTime,
    /// Virtual time the admission token was granted.
    pub admitted_at: SimTime,
    /// Virtual time the query completed.
    pub finished_at: SimTime,
}

impl ServedQuery {
    /// Served latency: submission (virtual time zero) to finish.
    pub fn latency(&self) -> SimTime {
        self.finished_at
    }
}

/// What a serving run resolved to, returned by [`QueryServer::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Every *successful* query's schedule, in submission order.
    pub sessions: Vec<ServedQuery>,
    /// Virtual completion time of the whole batch.
    pub makespan: SimTime,
    /// Sum of the isolated times — the serial back-to-back baseline.
    pub serial: SimTime,
    /// Peak admission bytes ever held, per node (from the real lease
    /// arenas, not the replay — the two must agree on the budget bound).
    pub admission_peaks: Vec<(MemoryNodeId, u64)>,
    /// The per-node admission budget the peaks are bounded by.
    pub admission_budget: u64,
}

impl ServeReport {
    /// Aggregate speedup of serving over running the batch serially.
    pub fn speedup(&self) -> f64 {
        if self.makespan == SimTime::ZERO {
            return 1.0;
        }
        self.serial.as_secs_f64() / self.makespan.as_secs_f64()
    }

    /// The `q`-quantile (0..=1) of the served latencies, by nearest rank.
    pub fn latency_quantile(&self, q: f64) -> SimTime {
        let mut latencies: Vec<SimTime> = self.sessions.iter().map(|s| s.latency()).collect();
        if latencies.is_empty() {
            return SimTime::ZERO;
        }
        latencies.sort();
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    }
}

/// The multi-query session layer over one engine.
pub struct QueryServer {
    engine: Arc<Proteus>,
    serve: ServeConfig,
    /// Server-lifetime straggler observer, shared by every query.
    observer: Arc<SlowdownObserver>,
    /// Server-lifetime plan-feedback cache: measurements one served query
    /// records re-optimize the same plan's next submission, across the whole
    /// worker pool.
    feedback: Arc<FeedbackCache>,
    /// Admission arenas: one per memory node, each sized at the budget.
    admission: Arc<BlockManagerSet>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    submitted: usize,
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("serve", &self.serve)
            .field("submitted", &self.submitted)
            .finish_non_exhaustive()
    }
}

impl QueryServer {
    /// Start a server over `engine` with `serve` as the admission/fairness
    /// policy. Fails unless serving is enabled — the default-off toggle is
    /// what keeps every non-serving path bit-identical.
    pub fn new(engine: Arc<Proteus>, serve: ServeConfig) -> Result<Self> {
        if !serve.enabled {
            return Err(HetError::Config(
                "QueryServer requires ServeConfig::serving(); \
                 the default config keeps serving off"
                    .into(),
            ));
        }
        if serve.workers == 0 {
            return Err(HetError::Config("serving requires at least one worker".into()));
        }
        let nodes: Vec<MemoryNodeId> =
            engine.topology().memory_nodes().iter().map(|m| m.id).collect();
        let admission = Arc::new(BlockManagerSet::new(&nodes, serve.effective_admission_bytes()));
        let observer = Arc::new(SlowdownObserver::new(engine.topology().devices().len()));
        let feedback = Arc::new(FeedbackCache::new());
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                waiting: VecDeque::new(),
                sessions: Vec::new(),
                shutdown: false,
            }),
            admit: Condvar::new(),
        });
        let workers = (0..serve.workers)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let observer = Arc::clone(&observer);
                let feedback = Arc::clone(&feedback);
                let admission = Arc::clone(&admission);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    worker_loop(&engine, &observer, &feedback, &admission, &shared)
                })
            })
            .collect();
        Ok(Self { engine, serve, observer, feedback, admission, shared, workers, submitted: 0 })
    }

    /// The server-lifetime slowdown observer every query shares.
    pub fn observer(&self) -> &Arc<SlowdownObserver> {
        &self.observer
    }

    /// The server-lifetime plan-feedback cache every query shares.
    pub fn feedback_cache(&self) -> &Arc<FeedbackCache> {
        &self.feedback
    }

    /// The engine this server serves over.
    pub fn engine(&self) -> &Proteus {
        &self.engine
    }

    /// Open a [`QuerySession`] bound to this server: `.submit(..)` queues for
    /// admission, `.execute(..)` runs inline but still shares the server's
    /// observer and feedback cache.
    pub fn session(&mut self) -> QuerySession<'_> {
        QuerySession::on_server(self)
    }

    /// Submit a query at [`Priority::Normal`].
    #[deprecated(note = "use `QueryServer::session().submit(plan, config)`")]
    pub fn submit(&mut self, plan: RelNode, config: EngineConfig) -> Result<QueryTicket> {
        self.submit_session(plan, config, Priority::Normal, None, None)
    }

    /// Submit a query for admission at `priority`.
    #[deprecated(note = "use `QueryServer::session().priority(p).submit(plan, config)`")]
    pub fn submit_with_priority(
        &mut self,
        plan: RelNode,
        config: EngineConfig,
        priority: Priority,
    ) -> Result<QueryTicket> {
        self.submit_session(plan, config, priority, None, None)
    }

    /// Submit a query for admission at `priority`, with optional
    /// session-level overrides of the shared observer and feedback cache.
    /// Returns a ticket the caller can [`QueryTicket::wait`] on; the query
    /// runs as soon as its staging footprint fits the per-node admission
    /// budget and a worker is free.
    pub(crate) fn submit_session(
        &mut self,
        plan: RelNode,
        config: EngineConfig,
        priority: Priority,
        observer: Option<Arc<SlowdownObserver>>,
        feedback: Option<Arc<FeedbackCache>>,
    ) -> Result<QueryTicket> {
        config.validate()?;
        let footprint = config.est_serve_footprint_bytes();
        let budget = self.serve.effective_admission_bytes();
        if footprint > budget {
            return Err(HetError::Config(format!(
                "query footprint ({footprint} bytes) exceeds the per-node admission \
                 budget ({budget} bytes): it can never be admitted"
            )));
        }
        let seq = self.submitted;
        self.submitted += 1;
        let slot = Arc::new(TicketSlot { result: Mutex::new(None), done: Condvar::new() });
        let pending = Pending {
            seq,
            priority,
            plan,
            config,
            footprint,
            slot: Arc::clone(&slot),
            observer,
            feedback,
        };
        {
            let mut queue = self.shared.queue.lock().expect("server queue poisoned");
            if queue.shutdown {
                return Err(HetError::Config("QueryServer is shut down".into()));
            }
            queue.sessions.push(None);
            // Strict priority, FIFO within a class: insert before the first
            // strictly-lower-priority entry. Seqs are monotone, so equal
            // ranks stay in submission order.
            let pos = queue
                .waiting
                .iter()
                .position(|p| p.priority.rank() > priority.rank())
                .unwrap_or(queue.waiting.len());
            queue.waiting.insert(pos, pending);
        }
        self.shared.admit.notify_all();
        Ok(QueryTicket { seq, slot })
    }

    /// Drain the queue, stop the workers, and resolve the batch's fair
    /// timeline. Every submitted query runs to completion first (tickets
    /// already handed out stay valid — `wait` them before or after).
    pub fn shutdown(mut self) -> Result<ServeReport> {
        {
            let mut queue = self.shared.queue.lock().expect("server queue poisoned");
            queue.shutdown = true;
        }
        self.shared.admit.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("serving worker panicked");
        }
        let queue = self.shared.queue.lock().expect("server queue poisoned");
        debug_assert!(queue.waiting.is_empty(), "shutdown drains the queue");
        debug_assert_eq!(
            self.admission.leased_bytes_total(),
            0,
            "every admission token is released at query end"
        );

        // Replay only the successful sessions, in submission order.
        let ordered: Vec<(usize, ServeSession)> = queue
            .sessions
            .iter()
            .enumerate()
            .filter_map(|(seq, s)| s.clone().map(|s| (seq, s)))
            .collect();
        let specs: Vec<ServeSession> = ordered.iter().map(|(_, s)| s.clone()).collect();
        let topology = self.engine.topology();
        let capacities = vec![topology.cpu_cores().len() as f64, topology.gpus().len() as f64];
        let budget = self.serve.effective_admission_bytes();
        let timeline = hetex_core::FairTimeline::new(
            capacities,
            budget,
            self.serve.workers,
            CostModel::default(),
        );
        let schedule = timeline.replay(&specs)?;
        assert!(
            schedule.peak_admitted_bytes <= budget,
            "fair-timeline admission exceeded the budget"
        );
        let admission_peaks = self.admission.peaks();
        for (node, peak) in &admission_peaks {
            assert!(*peak <= budget, "admission peak on {node} exceeded the budget");
        }
        let sessions: Vec<ServedQuery> = ordered
            .iter()
            .zip(&schedule.sessions)
            .map(|((seq, spec), slot)| ServedQuery {
                seq: *seq,
                priority: spec.priority,
                isolated: spec.isolated,
                admitted_at: slot.admitted_at,
                finished_at: slot.finished_at,
            })
            .collect();
        let serial =
            specs.iter().fold(SimTime::ZERO, |acc, s| acc.add_nanos(s.isolated.as_nanos()));
        Ok(ServeReport {
            sessions,
            makespan: schedule.makespan,
            serial,
            admission_peaks,
            admission_budget: budget,
        })
    }
}

/// Per-kind busy nanoseconds in the fair timeline's slot order
/// (`[CpuCore, Gpu]` — the capacities `shutdown` builds).
fn busy_by_kind(outcome: &QueryOutcome) -> Vec<u64> {
    [DeviceKind::CpuCore, DeviceKind::Gpu]
        .iter()
        .map(|kind| outcome.stats.per_kind.get(kind).map_or(0, |s| s.busy_ns))
        .collect()
}

/// One serving worker: admit from the head, execute, record, release.
fn worker_loop(
    engine: &Proteus,
    observer: &Arc<SlowdownObserver>,
    feedback: &Arc<FeedbackCache>,
    admission: &BlockManagerSet,
    shared: &Shared,
) {
    loop {
        let (job, leases) = {
            let mut queue = shared.queue.lock().expect("server queue poisoned");
            loop {
                if let Some(head) = queue.waiting.front() {
                    // Head-only admission: all acquisitions against the
                    // admission arenas happen here, under the queue lock, so
                    // an available-bytes check on every node is race-free.
                    let fits = engine.topology().memory_nodes().iter().all(|m| {
                        admission
                            .manager(m.id)
                            .is_ok_and(|mgr| mgr.available_bytes() >= head.footprint)
                    });
                    if fits {
                        let job = queue.waiting.pop_front().expect("head exists");
                        let label = format!("serve:q{}", job.seq);
                        let leases: Vec<BlockLease> = engine
                            .topology()
                            .memory_nodes()
                            .iter()
                            .map(|m| {
                                admission
                                    .manager(m.id)
                                    .expect("admission arena per node")
                                    .acquire_local_labeled(
                                        job.footprint,
                                        ExhaustionPolicy::Error,
                                        &label,
                                    )
                                    .expect("checked available bytes under the queue lock")
                            })
                            .collect();
                        break (job, leases);
                    }
                } else if queue.shutdown {
                    return;
                }
                queue = shared.admit.wait(queue).expect("server queue poisoned");
            }
        };

        let job_observer = job.observer.clone().unwrap_or_else(|| Arc::clone(observer));
        let job_feedback = job.feedback.clone().unwrap_or_else(|| Arc::clone(feedback));
        let result =
            engine.execute_with(&job.plan, &job.config, Some(job_observer), Some(job_feedback));
        {
            let mut queue = shared.queue.lock().expect("server queue poisoned");
            if let Ok(outcome) = &result {
                queue.sessions[job.seq] = Some(ServeSession {
                    isolated: outcome.sim_time,
                    busy_ns: busy_by_kind(outcome),
                    priority: job.priority,
                    footprint_bytes: job.footprint,
                });
            }
        }
        *job.slot.result.lock().expect("ticket lock poisoned") = Some(result);
        job.slot.done.notify_all();
        // Release the admission tokens and wake waiters for the freed bytes.
        drop(leases);
        shared.admit.notify_all();
    }
}
